#include "statsdb/exec.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "obs/runtime_stats.h"
#include "statsdb/database.h"
#include "statsdb/parallel_exec.h"
#include "statsdb/plan.h"
#include "statsdb/planner.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ff {
namespace statsdb {
namespace {

using IterPtr = std::unique_ptr<BatchIterator>;

/// ANDs a predicate result (dense, aligned to the full chunk) into a
/// per-row keep mask, with WHERE semantics (NULL does not pass). Matches
/// how the reference engine consumes Expr::Eval results.
void ApplyBoolMask(const ColumnVector& v, size_t n,
                   std::vector<uint8_t>* keep) {
  for (size_t k = 0; k < n; ++k) {
    if (!(*keep)[k]) continue;
    bool pass;
    if (v.vals != nullptr) {
      const Value& x = v.vals[k];
      pass = !x.is_null() && x.bool_value();
    } else if (v.type == DataType::kBool) {
      pass = !v.IsNull(k) && v.b8[k] != 0;
    } else {
      pass = false;  // all-NULL result
    }
    if (!pass) (*keep)[k] = 0;
  }
}

/// Selection-aligned variant: marks surviving positions of `sel` (length
/// n) in `sel_keep`.
void ApplyBoolMaskSel(const ColumnVector& v, size_t n,
                      std::vector<uint8_t>* sel_keep) {
  for (size_t k = 0; k < n; ++k) {
    if (!(*sel_keep)[k]) continue;
    bool pass;
    if (v.vals != nullptr) {
      const Value& x = v.vals[k];
      pass = !x.is_null() && x.bool_value();
    } else if (v.type == DataType::kBool) {
      pass = !v.IsNull(k) && v.b8[k] != 0;
    } else {
      pass = false;
    }
    if (!pass) (*sel_keep)[k] = 0;
  }
}

util::Status CheckBoolPredicate(const ExprPtr& pred, const Schema& schema) {
  FF_ASSIGN_OR_RETURN(DataType t, pred->ResultType(schema));
  if (t != DataType::kBool && t != DataType::kNull) {
    return util::Status::InvalidArgument(
        "WHERE predicate must be boolean: " + pred->ToString());
  }
  return util::Status::OK();
}

// ------------------------------------------------------------------ scan

/// True when a zone map proves no row of the chunk can satisfy some
/// conjunct (so the whole chunk is skipped).
bool ChunkPruned(const ScanSetup& s, size_t chunk, size_t span) {
  for (const auto& [col, sp] : s.zone_preds) {
    const ColumnStore::ColumnData& cd = s.store->column(col);
    if (chunk >= cd.zones.size()) continue;
    const ZoneMap& z = cd.zones[chunk];
    // `col op NULL` is NULL for every row; an all-NULL chunk likewise.
    if (sp.literal.is_null() || z.null_count >= span) return true;
    if (z.min_v.is_null() || z.max_v.is_null()) continue;
    const Value& lit = sp.literal;
    switch (sp.op) {
      case BinaryOp::kEq:
        if (lit.Compare(z.min_v) < 0 || lit.Compare(z.max_v) > 0) {
          return true;
        }
        break;
      case BinaryOp::kNe:
        if (z.min_v.Compare(lit) == 0 && z.max_v.Compare(lit) == 0) {
          return true;
        }
        break;
      case BinaryOp::kLt:
        if (z.min_v.Compare(lit) >= 0) return true;
        break;
      case BinaryOp::kLe:
        if (z.min_v.Compare(lit) > 0) return true;
        break;
      case BinaryOp::kGt:
        if (z.max_v.Compare(lit) <= 0) return true;
        break;
      case BinaryOp::kGe:
        if (z.max_v.Compare(lit) < 0) return true;
        break;
      default:
        break;
    }
  }
  return false;
}

class ScanIterator : public BatchIterator {
 public:
  ScanIterator(const ScanNode& node, const Database& db,
               obs::OperatorProfile* prof = nullptr)
      : node_(&node), db_(&db), prof_(prof) {}
  /// Chunk-restricted scan reusing a shared coordinator-built setup
  /// (parallel morsels). `chunks` is an ascending subsequence of
  /// SurveyScanChunks(*setup).
  ScanIterator(const ScanSetup* setup, std::vector<size_t> chunks,
               obs::OperatorProfile* prof = nullptr)
      : setup_(setup), chunks_(std::move(chunks)), restricted_(true),
        prof_(prof) {}

  util::Status Init() {
    if (setup_ == nullptr) {
      FF_ASSIGN_OR_RETURN(own_setup_, PrepareScan(*node_, *db_));
      setup_ = &own_setup_;
    }
    return util::Status::OK();
  }

  const Schema& schema() const override { return setup_->table->schema(); }

  util::StatusOr<const Batch*> Next() override {
    const Schema& schema = setup_->table->schema();
    size_t num_rows = setup_->store->num_rows();
    for (;;) {
      size_t chunk;
      if (restricted_) {
        if (chunk_pos_ == chunks_.size()) break;
        chunk = chunks_[chunk_pos_++];
      } else {
        if (chunk_ * kChunkRows >= num_rows) break;
        chunk = chunk_++;
      }
      size_t lo = chunk * kChunkRows;
      size_t hi = std::min(lo + kChunkRows, num_rows);
      size_t span = hi - lo;

      // Index access path: collect this chunk's matching rows first so
      // chunks without matches are skipped outright. A restricted scan
      // may have skipped chunks, so first drop matches below `lo`.
      std::vector<uint32_t> sel0;
      if (setup_->use_index) {
        const std::vector<size_t>& ir = setup_->index_rows;
        while (index_pos_ < ir.size() && ir[index_pos_] < lo) ++index_pos_;
        while (index_pos_ < ir.size() && ir[index_pos_] < hi) {
          sel0.push_back(static_cast<uint32_t>(ir[index_pos_] - lo));
          ++index_pos_;
        }
        if (sel0.empty()) continue;
        if constexpr (obs::kProfilingCompiledIn) {
          if (prof_ != nullptr) prof_->index_rows += sel0.size();
        }
      }

      if (ChunkPruned(*setup_, chunk, span)) {
        if constexpr (obs::kProfilingCompiledIn) {
          if (prof_ != nullptr) ++prof_->chunks_pruned;
        }
        continue;
      }
      if constexpr (obs::kProfilingCompiledIn) {
        if (prof_ != nullptr) ++prof_->chunks_scanned;
      }

      // Zero-copy chunk views.
      out_ = Batch();
      out_.num_rows = span;
      out_.cols.reserve(schema.num_columns());
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        const ColumnStore::ColumnData& cd = setup_->store->column(c);
        ColumnVector v;
        v.type = cd.type;
        v.length = span;
        switch (cd.type) {
          case DataType::kBool:
            v.b8 = cd.bools.data() + lo;
            break;
          case DataType::kInt64:
            v.i64 = cd.ints.data() + lo;
            break;
          case DataType::kDouble:
            v.f64 = cd.doubles.data() + lo;
            break;
          case DataType::kString:
            v.codes = cd.codes.data() + lo;
            v.dict = &cd.dict;
            break;
          case DataType::kNull:
            break;
        }
        // kChunkRows is a multiple of 64, so chunks start word-aligned.
        if (cd.null_count > 0) v.null_words = cd.null_words.data() + lo / 64;
        out_.cols.push_back(std::move(v));
      }

      if (setup_->use_index) {
        // Evaluate conjuncts over the index-selected rows only.
        std::vector<uint32_t> sel = std::move(sel0);
        for (const auto& c : setup_->conjuncts) {
          if (sel.empty()) break;
          FF_ASSIGN_OR_RETURN(
              ColumnVector v,
              EvalBatch(*c, out_, schema, sel.data(), sel.size()));
          std::vector<uint8_t> keep(sel.size(), 1);
          ApplyBoolMaskSel(v, sel.size(), &keep);
          std::vector<uint32_t> refined;
          refined.reserve(sel.size());
          for (size_t k = 0; k < sel.size(); ++k) {
            if (keep[k]) refined.push_back(sel[k]);
          }
          sel = std::move(refined);
        }
        if (sel.empty()) continue;
        out_.has_sel = true;
        out_.sel = std::move(sel);
        return &out_;
      }

      if (setup_->conjuncts.empty()) return &out_;

      // Each conjunct is evaluated over every row of the chunk (matching
      // the reference engine, whose AND evaluates both sides always);
      // the masks are then intersected.
      std::vector<uint8_t> keep(span, 1);
      for (const auto& c : setup_->conjuncts) {
        FF_ASSIGN_OR_RETURN(ColumnVector v,
                            EvalBatch(*c, out_, schema, nullptr, span));
        ApplyBoolMask(v, span, &keep);
      }
      std::vector<uint32_t> sel;
      for (size_t k = 0; k < span; ++k) {
        if (keep[k]) sel.push_back(static_cast<uint32_t>(k));
      }
      if (sel.empty()) continue;
      if (sel.size() < span) {
        out_.has_sel = true;
        out_.sel = std::move(sel);
      }
      return &out_;
    }
    return nullptr;
  }

 private:
  const ScanNode* node_ = nullptr;   // unrestricted mode only
  const Database* db_ = nullptr;     // unrestricted mode only
  ScanSetup own_setup_;              // unrestricted mode only
  const ScanSetup* setup_ = nullptr;
  std::vector<size_t> chunks_;       // restricted mode only
  bool restricted_ = false;
  size_t chunk_pos_ = 0;             // cursor into chunks_
  size_t index_pos_ = 0;
  size_t chunk_ = 0;
  obs::OperatorProfile* prof_ = nullptr;
  Batch out_;
};

// ---------------------------------------------------------------- filter

class FilterIterator : public BatchIterator {
 public:
  FilterIterator(const FilterNode& node, IterPtr input)
      : node_(node), input_(std::move(input)) {}

  util::Status Init() {
    return CheckBoolPredicate(node_.predicate, input_->schema());
  }

  const Schema& schema() const override { return input_->schema(); }

  util::StatusOr<const Batch*> Next() override {
    for (;;) {
      FF_ASSIGN_OR_RETURN(const Batch* in, input_->Next());
      if (in == nullptr) return nullptr;
      size_t n = in->ActiveRows();
      const uint32_t* sel = in->has_sel ? in->sel.data() : nullptr;
      FF_ASSIGN_OR_RETURN(
          ColumnVector v,
          EvalBatch(*node_.predicate, *in, input_->schema(), sel, n));
      std::vector<uint8_t> keep(n, 1);
      ApplyBoolMaskSel(v, n, &keep);
      std::vector<uint32_t> refined;
      for (size_t k = 0; k < n; ++k) {
        if (keep[k]) refined.push_back(static_cast<uint32_t>(in->RowAt(k)));
      }
      if (refined.empty()) continue;
      out_ = Batch::ViewOf(*in);
      out_.has_sel = true;
      out_.sel = std::move(refined);
      return &out_;
    }
  }

 private:
  const FilterNode& node_;
  IterPtr input_;
  Batch out_;
};

// --------------------------------------------------------------- project

class ProjectIterator : public BatchIterator {
 public:
  ProjectIterator(const ProjectNode& node, IterPtr input)
      : node_(node), input_(std::move(input)) {}

  util::Status Init() {
    const Schema& in = input_->schema();
    std::vector<Column> cols;
    for (const auto& item : node_.items) {
      FF_ASSIGN_OR_RETURN(DataType t, item.expr->ResultType(in));
      std::string name =
          item.alias.empty() ? item.expr->ToString() : item.alias;
      cols.push_back(
          Column{name, t == DataType::kNull ? DataType::kString : t});
    }
    out_schema_ = Schema(std::move(cols));
    return util::Status::OK();
  }

  const Schema& schema() const override { return out_schema_; }

  util::StatusOr<const Batch*> Next() override {
    for (;;) {
      FF_ASSIGN_OR_RETURN(const Batch* in, input_->Next());
      if (in == nullptr) return nullptr;
      size_t n = in->ActiveRows();
      if (n == 0) continue;
      const uint32_t* sel = in->has_sel ? in->sel.data() : nullptr;
      out_ = Batch();
      out_.num_rows = n;
      out_.cols.reserve(node_.items.size());
      for (const auto& item : node_.items) {
        // Bare columns with no selection come back as zero-copy views.
        FF_ASSIGN_OR_RETURN(
            ColumnVector v,
            EvalBatch(*item.expr, *in, input_->schema(), sel, n));
        out_.cols.push_back(std::move(v));
      }
      return &out_;
    }
  }

 private:
  const ProjectNode& node_;
  IterPtr input_;
  Schema out_schema_;
  Batch out_;
};

// ------------------------------------------------------------- aggregate

class AggregateIterator : public BatchIterator {
 public:
  AggregateIterator(const AggregateNode& node, IterPtr input)
      : node_(node), input_(std::move(input)) {}

  util::Status Init() {
    FF_ASSIGN_OR_RETURN(
        out_schema_,
        AggOutputSchema(input_->schema(), node_.group_by, node_.aggs,
                        &key_cols_));
    return util::Status::OK();
  }

  const Schema& schema() const override { return out_schema_; }

  util::StatusOr<const Batch*> Next() override {
    if (done_) return nullptr;
    done_ = true;

    struct Group {
      Row key;
      std::vector<AggState> states;
    };
    std::unordered_map<Row, size_t, RowHash, RowEq> group_index;
    std::vector<Group> groups;
    const Schema& in_schema = input_->schema();

    for (;;) {
      FF_ASSIGN_OR_RETURN(const Batch* in, input_->Next());
      if (in == nullptr) break;
      size_t n = in->ActiveRows();
      const uint32_t* sel = in->has_sel ? in->sel.data() : nullptr;

      // One vectorized evaluation per aggregate per batch.
      std::vector<ColumnVector> argv(node_.aggs.size());
      for (size_t a = 0; a < node_.aggs.size(); ++a) {
        if (node_.aggs[a].func == AggFunc::kCountStar) continue;
        FF_ASSIGN_OR_RETURN(
            argv[a],
            EvalBatch(*node_.aggs[a].arg, *in, in_schema, sel, n));
      }

      Row key;
      for (size_t k = 0; k < n; ++k) {
        size_t r = in->RowAt(k);
        key.clear();
        for (size_t i : key_cols_) key.push_back(in->CellValue(r, i));
        auto [it, inserted] = group_index.try_emplace(key, groups.size());
        if (inserted) groups.push_back(Group{key, NewAggStates(node_.aggs)});
        Group& g = groups[it->second];
        for (size_t a = 0; a < node_.aggs.size(); ++a) {
          AggState& st = g.states[a];
          if (node_.aggs[a].func == AggFunc::kCountStar) {
            ++st.count;
            continue;
          }
          const ColumnVector& v = argv[a];
          if (v.vals != nullptr) {
            st.Add(v.vals[k]);
          } else if (v.IsNull(k)) {
            // NULL contributes nothing.
          } else if (v.type == DataType::kInt64) {
            st.AddInt64(v.i64[k]);
          } else if (v.type == DataType::kDouble) {
            st.AddDouble(v.f64[k]);
          } else {
            st.Add(v.GetValue(k));
          }
        }
      }
    }

    if (groups.empty() && key_cols_.empty()) {
      groups.push_back(Group{{}, NewAggStates(node_.aggs)});
    }
    if (groups.empty()) return nullptr;

    out_ = Batch();
    out_.row_mode = true;
    out_.num_rows = groups.size();
    out_.own_rows.reserve(groups.size());
    for (const auto& g : groups) {
      out_.own_rows.push_back(
          FinalizeAggRow(g.key, g.states, node_.aggs, out_schema_));
    }
    return &out_;
  }

 private:
  const AggregateNode& node_;
  IterPtr input_;
  Schema out_schema_;
  std::vector<size_t> key_cols_;
  bool done_ = false;
  Batch out_;
};

// ------------------------------------------------------------------ sort

class SortIterator : public BatchIterator {
 public:
  SortIterator(const SortNode& node, IterPtr input)
      : node_(node), input_(std::move(input)) {}

  util::Status Init() {
    for (const auto& k : node_.keys) {
      FF_ASSIGN_OR_RETURN(size_t i, input_->schema().IndexOf(k.column));
      cols_.push_back(i);
    }
    return util::Status::OK();
  }

  const Schema& schema() const override { return input_->schema(); }

  util::StatusOr<const Batch*> Next() override {
    if (done_) return nullptr;
    done_ = true;
    size_t width = input_->schema().num_columns();

    // Strict weak order: sort keys, then arrival order (which makes the
    // heap-based top-k reproduce std::stable_sort's output exactly).
    struct Entry {
      Row row;
      size_t seq;
    };
    auto before = [this](const Entry& a, const Entry& b) {
      for (size_t k = 0; k < cols_.size(); ++k) {
        int c = a.row[cols_[k]].Compare(b.row[cols_[k]]);
        if (c != 0) return node_.keys[k].ascending ? c < 0 : c > 0;
      }
      return a.seq < b.seq;
    };

    std::vector<Row> rows;
    if (node_.limit_hint == 0) {
      for (;;) {
        FF_ASSIGN_OR_RETURN(const Batch* in, input_->Next());
        if (in == nullptr) break;
        for (size_t k = 0; k < in->ActiveRows(); ++k) {
          rows.push_back(in->MaterializeRow(in->RowAt(k), width));
        }
      }
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const Row& a, const Row& b) {
                         for (size_t k = 0; k < cols_.size(); ++k) {
                           int c = a[cols_[k]].Compare(b[cols_[k]]);
                           if (c != 0) {
                             return node_.keys[k].ascending ? c < 0 : c > 0;
                           }
                         }
                         return false;
                       });
    } else {
      // Top-k: keep the k first rows of the sorted order in a max-heap
      // (the heap's top is the worst retained row).
      std::priority_queue<Entry, std::vector<Entry>, decltype(before)> heap(
          before);
      size_t seq = 0;
      for (;;) {
        FF_ASSIGN_OR_RETURN(const Batch* in, input_->Next());
        if (in == nullptr) break;
        for (size_t k = 0; k < in->ActiveRows(); ++k) {
          heap.push(
              Entry{in->MaterializeRow(in->RowAt(k), width), seq++});
          if (heap.size() > node_.limit_hint) heap.pop();
        }
      }
      rows.resize(heap.size());
      for (size_t i = heap.size(); i-- > 0;) {
        rows[i] = std::move(const_cast<Entry&>(heap.top()).row);
        heap.pop();
      }
    }

    if (rows.empty()) return nullptr;
    out_ = Batch();
    out_.row_mode = true;
    out_.num_rows = rows.size();
    out_.own_rows = std::move(rows);
    return &out_;
  }

 private:
  const SortNode& node_;
  IterPtr input_;
  std::vector<size_t> cols_;
  bool done_ = false;
  Batch out_;
};

// -------------------------------------------------------------- distinct

class DistinctIterator : public BatchIterator {
 public:
  explicit DistinctIterator(IterPtr input) : input_(std::move(input)) {}

  util::Status Init() { return util::Status::OK(); }

  const Schema& schema() const override { return input_->schema(); }

  util::StatusOr<const Batch*> Next() override {
    size_t width = input_->schema().num_columns();
    for (;;) {
      FF_ASSIGN_OR_RETURN(const Batch* in, input_->Next());
      if (in == nullptr) return nullptr;
      out_ = Batch();
      out_.row_mode = true;

      // Single dictionary-encoded column: distinct codes are distinct
      // strings, so dedup is an array lookup instead of a row-hash probe.
      if (width == 1 && in->columnar() && in->cols[0].vals == nullptr &&
          in->cols[0].type == DataType::kString) {
        const ColumnVector& v = in->cols[0];
        for (size_t k = 0; k < in->ActiveRows(); ++k) {
          size_t r = in->RowAt(k);
          if (v.IsNull(r)) {
            if (!seen_null_) {
              seen_null_ = true;
              out_.own_rows.push_back(Row{Value::Null()});
            }
            continue;
          }
          uint32_t code = v.codes[r];
          if (code >= seen_codes_.size()) seen_codes_.resize(code + 1, 0);
          if (!seen_codes_[code]) {
            seen_codes_[code] = 1;
            out_.own_rows.push_back(Row{Value::String(v.dict->at(code))});
          }
        }
      } else {
        for (size_t k = 0; k < in->ActiveRows(); ++k) {
          Row row = in->MaterializeRow(in->RowAt(k), width);
          if (seen_.insert(row).second) out_.own_rows.push_back(std::move(row));
        }
      }

      if (out_.own_rows.empty()) continue;
      out_.num_rows = out_.own_rows.size();
      return &out_;
    }
  }

 private:
  IterPtr input_;
  std::unordered_set<Row, RowHash, RowEq> seen_;
  std::vector<uint8_t> seen_codes_;
  bool seen_null_ = false;
  Batch out_;
};

// ------------------------------------------------------------- hash join

class HashJoinIterator : public BatchIterator {
 public:
  HashJoinIterator(const HashJoinNode& node, IterPtr left, IterPtr right)
      : node_(node), left_(std::move(left)), right_(std::move(right)) {}

  util::Status Init() {
    FF_ASSIGN_OR_RETURN(lc_, left_->schema().IndexOf(node_.left_col));
    FF_ASSIGN_OR_RETURN(rc_, right_->schema().IndexOf(node_.right_col));
    out_schema_ = JoinOutputSchema(left_->schema(), right_->schema());
    return util::Status::OK();
  }

  const Schema& schema() const override { return out_schema_; }

  util::StatusOr<const Batch*> Next() override {
    if (!built_) {
      built_ = true;
      size_t rwidth = right_->schema().num_columns();
      for (;;) {
        FF_ASSIGN_OR_RETURN(const Batch* in, right_->Next());
        if (in == nullptr) break;
        for (size_t k = 0; k < in->ActiveRows(); ++k) {
          Row row = in->MaterializeRow(in->RowAt(k), rwidth);
          if (!row[rc_].is_null()) {  // NULL never joins
            build_[row[rc_]].push_back(right_rows_.size());
          }
          right_rows_.push_back(std::move(row));
        }
      }
    }
    size_t lwidth = left_->schema().num_columns();
    for (;;) {
      FF_ASSIGN_OR_RETURN(const Batch* in, left_->Next());
      if (in == nullptr) return nullptr;
      out_ = Batch();
      out_.row_mode = true;
      for (size_t k = 0; k < in->ActiveRows(); ++k) {
        Row lrow = in->MaterializeRow(in->RowAt(k), lwidth);
        if (lrow[lc_].is_null()) continue;
        auto it = build_.find(lrow[lc_]);
        if (it == build_.end()) continue;
        for (size_t ri : it->second) {
          Row joined = lrow;
          const Row& rrow = right_rows_[ri];
          joined.insert(joined.end(), rrow.begin(), rrow.end());
          out_.own_rows.push_back(std::move(joined));
        }
      }
      if (out_.own_rows.empty()) continue;
      out_.num_rows = out_.own_rows.size();
      return &out_;
    }
  }

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) == 0;
    }
  };

  const HashJoinNode& node_;
  IterPtr left_;
  IterPtr right_;
  size_t lc_ = 0, rc_ = 0;
  Schema out_schema_;
  bool built_ = false;
  std::vector<Row> right_rows_;
  std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq> build_;
  Batch out_;
};

// ----------------------------------------------------------------- limit

class LimitIterator : public BatchIterator {
 public:
  LimitIterator(const LimitNode& node, IterPtr input)
      : node_(node), input_(std::move(input)) {}

  util::Status Init() { return util::Status::OK(); }

  const Schema& schema() const override { return input_->schema(); }

  util::StatusOr<const Batch*> Next() override {
    // Early exit: once the quota is met the input is never pulled again.
    while (emitted_ < node_.limit) {
      FF_ASSIGN_OR_RETURN(const Batch* in, input_->Next());
      if (in == nullptr) return nullptr;
      std::vector<uint32_t> sel;
      for (size_t k = 0; k < in->ActiveRows(); ++k) {
        if (skipped_ < node_.offset) {
          ++skipped_;
          continue;
        }
        if (emitted_ == node_.limit) break;
        sel.push_back(static_cast<uint32_t>(in->RowAt(k)));
        ++emitted_;
      }
      if (sel.empty()) continue;
      out_ = Batch::ViewOf(*in);
      out_.has_sel = true;
      out_.sel = std::move(sel);
      return &out_;
    }
    return nullptr;
  }

 private:
  const LimitNode& node_;
  IterPtr input_;
  size_t skipped_ = 0;
  size_t emitted_ = 0;
  Batch out_;
};

// ---------------------------------------------------------- materialized

class MaterializedIterator : public BatchIterator {
 public:
  explicit MaterializedIterator(const MaterializedNode& node) : node_(node) {}

  util::Status Init() { return util::Status::OK(); }

  const Schema& schema() const override { return node_.schema; }

  util::StatusOr<const Batch*> Next() override {
    if (done_ || node_.rows->empty()) return nullptr;
    done_ = true;
    out_ = Batch();
    out_.row_mode = true;
    out_.num_rows = node_.rows->size();
    out_.ext_rows = node_.rows.get();  // zero-copy borrow
    return &out_;
  }

 private:
  const MaterializedNode& node_;
  bool done_ = false;
  Batch out_;
};

template <typename T, typename... Args>
util::StatusOr<IterPtr> MakeIter(Args&&... args) {
  auto it = std::make_unique<T>(std::forward<Args>(args)...);
  FF_RETURN_IF_ERROR(it->Init());
  return IterPtr(std::move(it));
}

// ------------------------------------------------------------- profiling

/// Pass-through decorator that times Next() and counts emitted
/// batches/rows into an OperatorProfile. Wall time includes the
/// children's Next() calls (the profile renderer subtracts them via
/// SelfNs); the batch itself is forwarded untouched, so profiled and
/// unprofiled executions produce identical results.
class ProfiledIterator : public BatchIterator {
 public:
  ProfiledIterator(IterPtr inner, obs::OperatorProfile* prof)
      : inner_(std::move(inner)), prof_(prof) {}

  const Schema& schema() const override { return inner_->schema(); }

  util::StatusOr<const Batch*> Next() override {
    const int64_t t0 = obs::RuntimeNowNs();
    util::StatusOr<const Batch*> result = inner_->Next();
    prof_->wall_ns += static_cast<uint64_t>(obs::RuntimeNowNs() - t0);
    if (result.ok() && *result != nullptr) {
      ++prof_->batches;
      prof_->rows_out += (*result)->ActiveRows();
    }
    return result;
  }

 private:
  IterPtr inner_;
  obs::OperatorProfile* prof_;
};

/// Labels `prof` for `plan` and — when profiling is compiled in — wraps
/// the iterator in a ProfiledIterator. With FF_PROFILING=OFF the label
/// is still set (EXPLAIN ANALYZE renders the bare tree) but the stream
/// is returned untouched: zero overhead beyond plan construction.
util::StatusOr<IterPtr> WrapProfiled(util::StatusOr<IterPtr> it,
                                     const PlanNode& plan,
                                     obs::OperatorProfile* prof) {
  if (!it.ok() || prof == nullptr) return it;
  prof->name = NodeLabel(plan);
  if (plan.kind() == PlanKind::kScan) prof->is_scan = true;
  if constexpr (obs::kProfilingCompiledIn) {
    return IterPtr(std::make_unique<ProfiledIterator>(std::move(*it), prof));
  }
  return it;
}

}  // namespace

util::StatusOr<ScanSetup> PrepareScan(const ScanNode& node,
                                      const Database& db) {
  ScanSetup s;
  FF_ASSIGN_OR_RETURN(s.table, db.table(node.table));
  s.store = &s.table->store();  // zone maps current, bitmaps padded
  if (node.predicate != nullptr) {
    FF_RETURN_IF_ERROR(CheckBoolPredicate(node.predicate, s.table->schema()));
    SplitConjuncts(node.predicate, &s.conjuncts);
    for (const auto& c : s.conjuncts) {
      auto sp = MatchSimplePredicate(*c);
      if (!sp.has_value()) continue;
      auto idx = s.table->schema().IndexOf(sp->column);
      if (!idx.ok()) continue;
      // Pruning compares the literal against zone min/max; only sound
      // when that comparison cannot itself be a runtime type error.
      DataType ct = s.table->schema().column(*idx).type;
      DataType lt = sp->literal.type();
      bool comparable =
          lt == DataType::kNull || ct == lt ||
          ((ct == DataType::kInt64 || ct == DataType::kDouble) &&
           (lt == DataType::kInt64 || lt == DataType::kDouble));
      if (comparable) s.zone_preds.emplace_back(*idx, *sp);
    }
  }
  if (!node.index_column.empty()) {
    FF_ASSIGN_OR_RETURN(s.index_rows,
                        s.table->Lookup(node.index_column, node.index_value));
    s.use_index = true;
  }
  return s;
}

std::vector<size_t> SurveyScanChunks(const ScanSetup& setup) {
  std::vector<size_t> out;
  size_t num_rows = setup.store->num_rows();
  size_t pos = 0;  // cursor into index_rows (ascending)
  for (size_t chunk = 0; chunk * kChunkRows < num_rows; ++chunk) {
    size_t lo = chunk * kChunkRows;
    size_t hi = std::min(lo + kChunkRows, num_rows);
    if (setup.use_index) {
      bool any = pos < setup.index_rows.size() && setup.index_rows[pos] < hi;
      while (pos < setup.index_rows.size() && setup.index_rows[pos] < hi) {
        ++pos;
      }
      if (!any) continue;
    }
    if (ChunkPruned(setup, chunk, hi - lo)) continue;
    out.push_back(chunk);
  }
  return out;
}

util::StatusOr<IterPtr> BuildChainIterator(const PlanNode& plan,
                                           const ScanSetup* setup,
                                           std::vector<size_t> chunks,
                                           obs::OperatorProfile* prof) {
  switch (plan.kind()) {
    case PlanKind::kScan:
      return WrapProfiled(MakeIter<ScanIterator>(setup, std::move(chunks),
                                                 prof),
                          plan, prof);
    case PlanKind::kFilter: {
      const auto& n = static_cast<const FilterNode&>(plan);
      obs::OperatorProfile* cp = prof == nullptr ? nullptr : prof->AddChild();
      FF_ASSIGN_OR_RETURN(
          IterPtr in,
          BuildChainIterator(*n.input, setup, std::move(chunks), cp));
      return WrapProfiled(MakeIter<FilterIterator>(n, std::move(in)), plan,
                          prof);
    }
    case PlanKind::kProject: {
      const auto& n = static_cast<const ProjectNode&>(plan);
      obs::OperatorProfile* cp = prof == nullptr ? nullptr : prof->AddChild();
      FF_ASSIGN_OR_RETURN(
          IterPtr in,
          BuildChainIterator(*n.input, setup, std::move(chunks), cp));
      return WrapProfiled(MakeIter<ProjectIterator>(n, std::move(in)), plan,
                          prof);
    }
    default:
      return util::Status::Internal("BuildChainIterator: not a scan chain: " +
                                    plan.ToString());
  }
}

util::StatusOr<IterPtr> BuildIterator(const PlanNode& plan, const Database& db,
                                      obs::OperatorProfile* prof) {
  // One profile child per plan input, created lazily per case (leaves
  // get none).
  auto child = [prof]() {
    return prof == nullptr ? nullptr : prof->AddChild();
  };
  switch (plan.kind()) {
    case PlanKind::kScan:
      return WrapProfiled(
          MakeIter<ScanIterator>(static_cast<const ScanNode&>(plan), db, prof),
          plan, prof);
    case PlanKind::kFilter: {
      const auto& n = static_cast<const FilterNode&>(plan);
      FF_ASSIGN_OR_RETURN(IterPtr in, BuildIterator(*n.input, db, child()));
      return WrapProfiled(MakeIter<FilterIterator>(n, std::move(in)), plan,
                          prof);
    }
    case PlanKind::kProject: {
      const auto& n = static_cast<const ProjectNode&>(plan);
      FF_ASSIGN_OR_RETURN(IterPtr in, BuildIterator(*n.input, db, child()));
      return WrapProfiled(MakeIter<ProjectIterator>(n, std::move(in)), plan,
                          prof);
    }
    case PlanKind::kAggregate: {
      const auto& n = static_cast<const AggregateNode&>(plan);
      FF_ASSIGN_OR_RETURN(IterPtr in, BuildIterator(*n.input, db, child()));
      return WrapProfiled(MakeIter<AggregateIterator>(n, std::move(in)), plan,
                          prof);
    }
    case PlanKind::kSort: {
      const auto& n = static_cast<const SortNode&>(plan);
      FF_ASSIGN_OR_RETURN(IterPtr in, BuildIterator(*n.input, db, child()));
      return WrapProfiled(MakeIter<SortIterator>(n, std::move(in)), plan,
                          prof);
    }
    case PlanKind::kLimit: {
      const auto& n = static_cast<const LimitNode&>(plan);
      FF_ASSIGN_OR_RETURN(IterPtr in, BuildIterator(*n.input, db, child()));
      return WrapProfiled(MakeIter<LimitIterator>(n, std::move(in)), plan,
                          prof);
    }
    case PlanKind::kDistinct: {
      const auto& n = static_cast<const DistinctNode&>(plan);
      FF_ASSIGN_OR_RETURN(IterPtr in, BuildIterator(*n.input, db, child()));
      return WrapProfiled(MakeIter<DistinctIterator>(std::move(in)), plan,
                          prof);
    }
    case PlanKind::kHashJoin: {
      const auto& n = static_cast<const HashJoinNode&>(plan);
      // Two children: [0] = left (probe), [1] = right (build), matching
      // the parallel rewriter's traversal order.
      obs::OperatorProfile* cl = child();
      obs::OperatorProfile* cr = child();
      FF_ASSIGN_OR_RETURN(IterPtr l, BuildIterator(*n.left, db, cl));
      FF_ASSIGN_OR_RETURN(IterPtr r, BuildIterator(*n.right, db, cr));
      return WrapProfiled(
          MakeIter<HashJoinIterator>(n, std::move(l), std::move(r)), plan,
          prof);
    }
    case PlanKind::kMaterialized:
      return WrapProfiled(MakeIter<MaterializedIterator>(
                              static_cast<const MaterializedNode&>(plan)),
                          plan, prof);
  }
  return util::Status::Internal("unhandled plan kind");
}

util::StatusOr<ResultSet> ExecuteColumnar(const PlanNode& plan,
                                          const Database& db) {
  FF_ASSIGN_OR_RETURN(IterPtr it, BuildIterator(plan, db));
  ResultSet rs{it->schema(), {}};
  size_t width = rs.schema.num_columns();
  for (;;) {
    FF_ASSIGN_OR_RETURN(const Batch* batch, it->Next());
    if (batch == nullptr) break;
    for (size_t k = 0; k < batch->ActiveRows(); ++k) {
      rs.rows.push_back(batch->MaterializeRow(batch->RowAt(k), width));
    }
  }
  return rs;
}

util::StatusOr<ResultSet> ExecuteColumnarProfiled(const PlanNode& plan,
                                                  const Database& db,
                                                  obs::QueryProfile* profile) {
  profile->root = std::make_unique<obs::OperatorProfile>();
  int64_t t0 = 0;
  if constexpr (obs::kProfilingCompiledIn) t0 = obs::RuntimeNowNs();
  FF_ASSIGN_OR_RETURN(IterPtr it,
                      BuildIterator(plan, db, profile->root.get()));
  ResultSet rs{it->schema(), {}};
  size_t width = rs.schema.num_columns();
  for (;;) {
    FF_ASSIGN_OR_RETURN(const Batch* batch, it->Next());
    if (batch == nullptr) break;
    for (size_t k = 0; k < batch->ActiveRows(); ++k) {
      rs.rows.push_back(batch->MaterializeRow(batch->RowAt(k), width));
    }
  }
  if constexpr (obs::kProfilingCompiledIn) {
    profile->total_ns = static_cast<uint64_t>(obs::RuntimeNowNs() - t0);
  }
  return rs;
}

std::string NodeLabel(const PlanNode& plan) {
  switch (plan.kind()) {
    case PlanKind::kScan:
    case PlanKind::kMaterialized:
      return plan.ToString();  // leaves: ToString has no nested input
    case PlanKind::kFilter:
      return "Filter(" +
             static_cast<const FilterNode&>(plan).predicate->ToString() + ")";
    case PlanKind::kProject: {
      const auto& n = static_cast<const ProjectNode&>(plan);
      std::vector<std::string> parts;
      for (const auto& item : n.items) {
        parts.push_back(item.expr->ToString() +
                        (item.alias.empty() ? "" : " AS " + item.alias));
      }
      return "Project([" + util::Join(parts, ", ") + "])";
    }
    case PlanKind::kAggregate: {
      const auto& n = static_cast<const AggregateNode&>(plan);
      std::vector<std::string> parts;
      for (const auto& a : n.aggs) {
        parts.push_back(std::string(AggFuncName(a.func)) +
                        (a.arg ? "(" + a.arg->ToString() + ")" : ""));
      }
      return "Aggregate(by=[" + util::Join(n.group_by, ", ") + "], aggs=[" +
             util::Join(parts, ", ") + "])";
    }
    case PlanKind::kSort: {
      const auto& n = static_cast<const SortNode&>(plan);
      std::vector<std::string> parts;
      for (const auto& k : n.keys) {
        parts.push_back(k.column + (k.ascending ? " ASC" : " DESC"));
      }
      std::string out = "Sort([" + util::Join(parts, ", ") + "]";
      if (n.limit_hint > 0) out += util::StrFormat(", top=%zu", n.limit_hint);
      return out + ")";
    }
    case PlanKind::kLimit: {
      const auto& n = static_cast<const LimitNode&>(plan);
      return util::StrFormat("Limit(%zu, offset=%zu)", n.limit, n.offset);
    }
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kHashJoin: {
      const auto& n = static_cast<const HashJoinNode&>(plan);
      return "HashJoin(" + n.left_col + " = " + n.right_col + ")";
    }
  }
  return "<unknown>";
}

namespace {

void ExplainWalk(const PlanNode& plan, int depth,
                 std::vector<std::string>* out) {
  out->push_back(std::string(static_cast<size_t>(depth) * 2, ' ') +
                 NodeLabel(plan));
  switch (plan.kind()) {
    case PlanKind::kFilter:
      ExplainWalk(*static_cast<const FilterNode&>(plan).input, depth + 1, out);
      break;
    case PlanKind::kProject:
      ExplainWalk(*static_cast<const ProjectNode&>(plan).input, depth + 1,
                  out);
      break;
    case PlanKind::kAggregate:
      ExplainWalk(*static_cast<const AggregateNode&>(plan).input, depth + 1,
                  out);
      break;
    case PlanKind::kSort:
      ExplainWalk(*static_cast<const SortNode&>(plan).input, depth + 1, out);
      break;
    case PlanKind::kLimit:
      ExplainWalk(*static_cast<const LimitNode&>(plan).input, depth + 1, out);
      break;
    case PlanKind::kDistinct:
      ExplainWalk(*static_cast<const DistinctNode&>(plan).input, depth + 1,
                  out);
      break;
    case PlanKind::kHashJoin: {
      const auto& n = static_cast<const HashJoinNode&>(plan);
      ExplainWalk(*n.left, depth + 1, out);
      ExplainWalk(*n.right, depth + 1, out);
      break;
    }
    case PlanKind::kScan:
    case PlanKind::kMaterialized:
      break;
  }
}

}  // namespace

std::vector<std::string> ExplainPlanLines(const PlanNode& plan) {
  std::vector<std::string> lines;
  ExplainWalk(plan, 0, &lines);
  return lines;
}

util::StatusOr<ResultSet> ExecutePlan(const PlanPtr& plan,
                                      const Database& db) {
  PlanPtr optimized = OptimizePlan(plan, db);
  // Consults the result cache when the database's cache config enables
  // it, then dispatches to the morsel-parallel executor when the
  // parallel config (and the hardware) allow it; byte-identical results
  // in every combination, with a zero-overhead serial path otherwise.
  return ExecuteOptimized(optimized, db);
}

}  // namespace statsdb
}  // namespace ff
