#include "statsdb/column_store.h"

#include <algorithm>

#include "util/logging.h"

namespace ff {
namespace statsdb {

uint32_t Dictionary::Intern(std::string_view s) {
  auto it = map_.find(s);
  if (it != map_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  map_.emplace(std::string_view(strings_.back()), code);
  return code;
}

std::optional<uint32_t> Dictionary::Find(std::string_view s) const {
  auto it = map_.find(s);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

ColumnStore::ColumnStore(const Schema* schema) : schema_(schema) {
  cols_.resize(schema_->num_columns());
  for (size_t i = 0; i < cols_.size(); ++i) {
    cols_[i].type = schema_->column(i).type;
  }
}

void ColumnStore::Reserve(size_t rows) {
  for (auto& c : cols_) {
    switch (c.type) {
      case DataType::kBool:
        c.bools.reserve(rows);
        break;
      case DataType::kInt64:
        c.ints.reserve(rows);
        break;
      case DataType::kDouble:
        c.doubles.reserve(rows);
        break;
      case DataType::kString:
        c.codes.reserve(rows);
        break;
      case DataType::kNull:
        break;
    }
    c.null_words.reserve((rows >> 6) + 1);
  }
}

void ColumnStore::SetNullBit(ColumnData* c, size_t row) {
  size_t word = row >> 6;
  if (word >= c->null_words.size()) c->null_words.resize(word + 1, 0);
  c->null_words[word] |= uint64_t{1} << (row & 63);
  ++c->null_count;
}

void ColumnStore::AppendToZone(size_t col, const Value& v) {
  ColumnData& c = cols_[col];
  size_t chunk = num_rows_ / kChunkRows;
  if (chunk >= c.zones.size()) c.zones.resize(chunk + 1);
  ZoneMap& z = c.zones[chunk];
  if (v.is_null()) {
    ++z.null_count;
    return;
  }
  if (z.min_v.is_null() || v.Compare(z.min_v) < 0) z.min_v = v;
  if (z.max_v.is_null() || v.Compare(z.max_v) > 0) z.max_v = v;
}

void ColumnStore::AppendNull(size_t col) {
  ColumnData& c = cols_[col];
  size_t row_index =
      c.type == DataType::kBool
          ? c.bools.size()
          : c.type == DataType::kInt64
                ? c.ints.size()
                : c.type == DataType::kDouble ? c.doubles.size()
                                              : c.codes.size();
  SetNullBit(&c, row_index);
  switch (c.type) {
    case DataType::kBool:
      c.bools.push_back(0);
      break;
    case DataType::kInt64:
      c.ints.push_back(0);
      break;
    case DataType::kDouble:
      c.doubles.push_back(0.0);
      break;
    case DataType::kString:
      c.codes.push_back(0);
      break;
    case DataType::kNull:
      break;
  }
  size_t chunk = row_index / kChunkRows;
  if (chunk >= c.zones.size()) c.zones.resize(chunk + 1);
  ++c.zones[chunk].null_count;
}

void ColumnStore::AppendInt64(size_t col, int64_t v) {
  ColumnData& c = cols_[col];
  if (c.type == DataType::kDouble) {
    AppendDouble(col, static_cast<double>(v));
    return;
  }
  FF_DCHECK(c.type == DataType::kInt64);
  size_t chunk = c.ints.size() / kChunkRows;
  c.ints.push_back(v);
  if (chunk >= c.zones.size()) c.zones.resize(chunk + 1);
  ZoneMap& z = c.zones[chunk];
  if (z.min_v.is_null() || v < z.min_v.int64_value()) {
    z.min_v = Value::Int64(v);
  }
  if (z.max_v.is_null() || v > z.max_v.int64_value()) {
    z.max_v = Value::Int64(v);
  }
}

void ColumnStore::AppendDouble(size_t col, double v) {
  ColumnData& c = cols_[col];
  FF_DCHECK(c.type == DataType::kDouble);
  size_t chunk = c.doubles.size() / kChunkRows;
  c.doubles.push_back(v);
  if (chunk >= c.zones.size()) c.zones.resize(chunk + 1);
  ZoneMap& z = c.zones[chunk];
  if (z.min_v.is_null() || v < z.min_v.double_value()) {
    z.min_v = Value::Double(v);
  }
  if (z.max_v.is_null() || v > z.max_v.double_value()) {
    z.max_v = Value::Double(v);
  }
}

void ColumnStore::AppendBool(size_t col, bool v) {
  ColumnData& c = cols_[col];
  FF_DCHECK(c.type == DataType::kBool);
  size_t chunk = c.bools.size() / kChunkRows;
  c.bools.push_back(v ? 1 : 0);
  if (chunk >= c.zones.size()) c.zones.resize(chunk + 1);
  ZoneMap& z = c.zones[chunk];
  Value vv = Value::Bool(v);
  if (z.min_v.is_null() || vv.Compare(z.min_v) < 0) z.min_v = vv;
  if (z.max_v.is_null() || vv.Compare(z.max_v) > 0) z.max_v = vv;
}

void ColumnStore::AppendString(size_t col, std::string_view v) {
  ColumnData& c = cols_[col];
  FF_DCHECK(c.type == DataType::kString);
  size_t chunk = c.codes.size() / kChunkRows;
  c.codes.push_back(c.dict.Intern(v));
  if (chunk >= c.zones.size()) c.zones.resize(chunk + 1);
  ZoneMap& z = c.zones[chunk];
  if (z.min_v.is_null() || v < z.min_v.string_value()) {
    z.min_v = Value::String(std::string(v));
  }
  if (z.max_v.is_null() || v > z.max_v.string_value()) {
    z.max_v = Value::String(std::string(v));
  }
}

void ColumnStore::AppendCell(size_t col, const Value& v) {
  if (v.is_null()) {
    AppendNull(col);
    return;
  }
  switch (v.type()) {
    case DataType::kBool:
      AppendBool(col, v.bool_value());
      break;
    case DataType::kInt64:
      AppendInt64(col, v.int64_value());
      break;
    case DataType::kDouble:
      AppendDouble(col, v.double_value());
      break;
    case DataType::kString:
      AppendString(col, v.string_value());
      break;
    case DataType::kNull:
      AppendNull(col);
      break;
  }
}

void ColumnStore::EndRow() {
  ++num_rows_;
#ifndef NDEBUG
  for (const auto& c : cols_) {
    size_t len = c.type == DataType::kBool
                     ? c.bools.size()
                     : c.type == DataType::kInt64
                           ? c.ints.size()
                           : c.type == DataType::kDouble ? c.doubles.size()
                                                         : c.codes.size();
    FF_DCHECK(len == num_rows_) << "ragged bulk append";
  }
#endif
}

void ColumnStore::Append(const Row& row) {
  FF_DCHECK(row.size() == cols_.size());
  for (size_t i = 0; i < row.size(); ++i) AppendCell(i, row[i]);
  ++num_rows_;
}

void ColumnStore::Set(size_t row, size_t col, const Value& v) {
  ColumnData& c = cols_[col];
  bool was_null = c.IsNull(row);
  if (was_null && !v.is_null()) {
    c.null_words[row >> 6] &= ~(uint64_t{1} << (row & 63));
    --c.null_count;
  } else if (!was_null && v.is_null()) {
    SetNullBit(&c, row);
  }
  switch (c.type) {
    case DataType::kBool:
      c.bools[row] = !v.is_null() && v.bool_value() ? 1 : 0;
      break;
    case DataType::kInt64:
      c.ints[row] = v.is_null() ? 0 : v.int64_value();
      break;
    case DataType::kDouble:
      c.doubles[row] = v.is_null() ? 0.0 : v.double_value();
      break;
    case DataType::kString:
      c.codes[row] = v.is_null() ? 0 : c.dict.Intern(v.string_value());
      break;
    case DataType::kNull:
      break;
  }
  size_t chunk = row / kChunkRows;
  if (chunk < c.zones.size()) c.zones[chunk].dirty = true;
  zones_dirty_ = true;
}

Value ColumnStore::GetValue(size_t row, size_t col) const {
  const ColumnData& c = cols_[col];
  if (c.null_count > 0 && c.IsNull(row)) return Value::Null();
  switch (c.type) {
    case DataType::kBool:
      return Value::Bool(c.bools[row] != 0);
    case DataType::kInt64:
      return Value::Int64(c.ints[row]);
    case DataType::kDouble:
      return Value::Double(c.doubles[row]);
    case DataType::kString:
      return Value::String(c.dict.at(c.codes[row]));
    case DataType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

void ColumnStore::EnsureZones() const {
  if (!zones_dirty_) return;
  auto* self = const_cast<ColumnStore*>(this);
  for (size_t col = 0; col < cols_.size(); ++col) {
    ColumnData& c = self->cols_[col];
    for (size_t chunk = 0; chunk < c.zones.size(); ++chunk) {
      if (!c.zones[chunk].dirty) continue;
      ZoneMap z;
      size_t lo = chunk * kChunkRows;
      size_t hi = std::min(lo + kChunkRows, num_rows_);
      for (size_t row = lo; row < hi; ++row) {
        Value v = GetValue(row, col);
        if (v.is_null()) {
          ++z.null_count;
          continue;
        }
        if (z.min_v.is_null() || v.Compare(z.min_v) < 0) z.min_v = v;
        if (z.max_v.is_null() || v.Compare(z.max_v) > 0) z.max_v = v;
      }
      c.zones[chunk] = std::move(z);
    }
  }
  self->zones_dirty_ = false;
}

void ColumnStore::EnsureScanReady() const {
  EnsureZones();
  auto* self = const_cast<ColumnStore*>(this);
  size_t words = (num_rows_ + 63) / 64;
  for (auto& c : self->cols_) {
    if (c.null_count > 0 && c.null_words.size() < words) {
      c.null_words.resize(words, 0);
    }
  }
}

void ColumnStore::Rebuild(const std::vector<Row>& rows) {
  for (auto& c : cols_) {
    DataType t = c.type;
    c = ColumnData();
    c.type = t;
  }
  num_rows_ = 0;
  zones_dirty_ = false;
  Reserve(rows.size());
  for (const auto& row : rows) Append(row);
}

}  // namespace statsdb
}  // namespace ff
