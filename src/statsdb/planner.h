// Plan rewrites applied before vectorized execution (exec.h):
//
//  * Predicate pushdown: WHERE conjuncts migrate below Sort, Distinct,
//    pass-through Projects, group-by keys of Aggregates, and the matching
//    side of a HashJoin, merging into the ScanNode where they drive
//    zone-map chunk pruning. Conjuncts never cross a Limit.
//  * Index selection: an equality conjunct on a hash-indexed column
//    annotates the scan with an index lookup (the conjunct stays in the
//    scan predicate as a residual check).
//  * Top-k: Limit over Sort (possibly through Projects) gives the sort a
//    limit hint, so the executor keeps a bounded heap instead of sorting
//    everything.
//
// Rewrites preserve the reference engine's observable results; analysis
// failures (unknown tables/columns, type errors) leave the affected
// subtree untouched so the error surfaces at execution exactly as the
// unoptimized plan would report it.

#ifndef FF_STATSDB_PLANNER_H_
#define FF_STATSDB_PLANNER_H_

#include "statsdb/query.h"

namespace ff {
namespace statsdb {

class Database;

/// Returns the optimized plan (possibly `plan` itself). Never fails.
PlanPtr OptimizePlan(const PlanPtr& plan, const Database& db);

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_PLANNER_H_
