// CSV import/export for statsdb tables (the interchange format the bench
// harnesses and the log-data loader use).

#ifndef FF_STATSDB_CSV_IO_H_
#define FF_STATSDB_CSV_IO_H_

#include <string>

#include "statsdb/database.h"

namespace ff {
namespace statsdb {

/// Serializes a table to CSV with a header row; NULLs render empty.
std::string TableToCsv(const Table& table);

/// Creates table `name` in `db` from CSV text. Column types are taken
/// from `schema`, whose column names must match the CSV header
/// (case-insensitive, same order).
util::StatusOr<Table*> TableFromCsv(Database* db, const std::string& name,
                                    const Schema& schema,
                                    const std::string& csv_text);

/// Appends CSV rows into an existing table; header must match its schema.
util::Status AppendCsv(Table* table, const std::string& csv_text);

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_CSV_IO_H_
