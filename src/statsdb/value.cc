#include "statsdb/value.h"

#include <cmath>
#include <functional>

#include "util/logging.h"
#include "util/strings.h"

namespace ff {
namespace statsdb {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

util::StatusOr<DataType> ParseDataType(const std::string& name) {
  std::string u = util::ToUpper(name);
  if (u == "INT" || u == "INTEGER" || u == "BIGINT" || u == "INT64") {
    return DataType::kInt64;
  }
  if (u == "DOUBLE" || u == "REAL" || u == "FLOAT") return DataType::kDouble;
  if (u == "TEXT" || u == "STRING" || u == "VARCHAR") {
    return DataType::kString;
  }
  if (u == "BOOL" || u == "BOOLEAN") return DataType::kBool;
  return util::Status::ParseError("unknown type name: " + name);
}

DataType Value::type() const {
  switch (v_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
  }
  return DataType::kNull;
}

bool Value::bool_value() const {
  FF_CHECK(type() == DataType::kBool) << "not a bool: " << ToString();
  return std::get<bool>(v_);
}

int64_t Value::int64_value() const {
  FF_CHECK(type() == DataType::kInt64) << "not an int64: " << ToString();
  return std::get<int64_t>(v_);
}

double Value::double_value() const {
  FF_CHECK(type() == DataType::kDouble) << "not a double: " << ToString();
  return std::get<double>(v_);
}

const std::string& Value::string_value() const {
  FF_CHECK(type() == DataType::kString) << "not a string: " << ToString();
  return std::get<std::string>(v_);
}

util::StatusOr<double> Value::AsDouble() const {
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(int64_value());
    case DataType::kDouble:
      return double_value();
    default:
      return util::Status::InvalidArgument(
          std::string("not numeric: ") + DataTypeName(type()));
  }
}

namespace {
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;
    case DataType::kString:
      return 3;
  }
  return 4;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case DataType::kNull:
      return 0;
    case DataType::kBool: {
      bool a = bool_value(), b = other.bool_value();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case DataType::kInt64:
    case DataType::kDouble: {
      // Both numeric (possibly mixed int/double).
      if (type() == DataType::kInt64 &&
          other.type() == DataType::kInt64) {
        int64_t a = int64_value(), b = other.int64_value();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      double a = *AsDouble();
      double b = *other.AsDouble();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case DataType::kString: {
      const std::string& a = string_value();
      const std::string& b = other.string_value();
      int c = a.compare(b);
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "";
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(int64_value());
    case DataType::kDouble:
      return util::StrFormat("%.10g", double_value());
    case DataType::kString:
      return string_value();
  }
  return "";
}

util::StatusOr<Value> Value::Parse(const std::string& text, DataType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool: {
      if (util::EqualsIgnoreCase(text, "true") || text == "1") {
        return Value::Bool(true);
      }
      if (util::EqualsIgnoreCase(text, "false") || text == "0") {
        return Value::Bool(false);
      }
      return util::Status::ParseError("not a bool: " + text);
    }
    case DataType::kInt64: {
      FF_ASSIGN_OR_RETURN(int64_t v, util::ParseInt64(text));
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      FF_ASSIGN_OR_RETURN(double v, util::ParseDouble(text));
      return Value::Double(v);
    }
    case DataType::kString:
      return Value::String(text);
  }
  return util::Status::Internal("unhandled type");
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9b5a1f3d;
    case DataType::kBool:
      return bool_value() ? 0x1 : 0x2;
    case DataType::kInt64: {
      // Hash integers through double when exactly representable so that
      // 3 and 3.0 land in one bucket, consistent with Compare().
      double d = static_cast<double>(int64_value());
      if (static_cast<int64_t>(d) == int64_value()) {
        return std::hash<double>()(d);
      }
      return std::hash<int64_t>()(int64_value());
    }
    case DataType::kDouble:
      return std::hash<double>()(double_value());
    case DataType::kString:
      return std::hash<std::string>()(string_value());
  }
  return 0;
}

}  // namespace statsdb
}  // namespace ff
