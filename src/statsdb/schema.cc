#include "statsdb/schema.h"

#include "util/logging.h"
#include "util/strings.h"

namespace ff {
namespace statsdb {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

util::StatusOr<Schema> Schema::Create(std::vector<Column> columns) {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name.empty()) {
      return util::Status::InvalidArgument("empty column name");
    }
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (util::EqualsIgnoreCase(columns[i].name, columns[j].name)) {
        return util::Status::InvalidArgument("duplicate column name: " +
                                             columns[i].name);
      }
    }
  }
  return Schema(std::move(columns));
}

util::StatusOr<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (util::EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return util::Status::NotFound("column " + name);
}

bool Schema::Has(const std::string& name) const {
  return IndexOf(name).ok();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    parts.push_back(c.name + ":" + DataTypeName(c.type));
  }
  return util::Join(parts, ", ");
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

util::Status ValidateRow(const Schema& schema, const Row& row) {
  if (row.size() != schema.num_columns()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "row width %zu != schema width %zu", row.size(),
        schema.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    DataType want = schema.column(i).type;
    DataType got = row[i].type();
    if (got == want) continue;
    if (want == DataType::kDouble && got == DataType::kInt64) continue;
    return util::Status::InvalidArgument(util::StrFormat(
        "column %s expects %s, got %s", schema.column(i).name.c_str(),
        DataTypeName(want), DataTypeName(got)));
  }
  return util::Status::OK();
}

}  // namespace statsdb
}  // namespace ff
