// Columnar storage for statsdb tables: each column lives in a contiguous
// typed vector (strings are dictionary-encoded as uint32 codes) with a
// packed null bitmap. Logical chunks of kChunkRows rows carry zone maps
// (min/max value, null count) that let scans skip chunks a predicate can
// never match. This is the execution-optimized representation behind
// Table; the row-view accessors materialize from it lazily.

#ifndef FF_STATSDB_COLUMN_STORE_H_
#define FF_STATSDB_COLUMN_STORE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "statsdb/schema.h"

namespace ff {
namespace statsdb {

/// Rows per logical chunk (one zone map per column per chunk).
inline constexpr size_t kChunkRows = 4096;

/// Append-only interning dictionary for one string column. Codes are
/// assigned in first-seen order and stay stable for the table's lifetime
/// (deletes rebuild the store but may keep stale entries; codes present
/// in the column always resolve).
class Dictionary {
 public:
  /// Returns the code for `s`, interning it when new.
  uint32_t Intern(std::string_view s);
  /// Code for `s` when already interned.
  std::optional<uint32_t> Find(std::string_view s) const;
  const std::string& at(uint32_t code) const { return strings_[code]; }
  size_t size() const { return strings_.size(); }

 private:
  std::deque<std::string> strings_;  // deque: stable references
  std::unordered_map<std::string_view, uint32_t> map_;
};

/// Per-chunk, per-column statistics. min/max ignore NULLs; when
/// null_count == row span the chunk holds no values for this column.
struct ZoneMap {
  Value min_v;
  Value max_v;
  size_t null_count = 0;
  bool dirty = false;  // set by point updates; recomputed before scans
};

/// The typed column vectors of one table. Row order matches the logical
/// table order; all columns have equal length.
class ColumnStore {
 public:
  struct ColumnData {
    DataType type = DataType::kNull;
    std::vector<uint8_t> bools;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::vector<uint32_t> codes;  // indexes into dict
    Dictionary dict;
    std::vector<uint64_t> null_words;  // packed bitmap, bit set => NULL
    std::vector<ZoneMap> zones;        // one per chunk
    size_t null_count = 0;

    bool IsNull(size_t row) const {
      // null_words grows on demand; rows past its end are non-null.
      size_t w = row >> 6;
      return w < null_words.size() && ((null_words[w] >> (row & 63)) & 1);
    }
  };

  explicit ColumnStore(const Schema* schema);

  size_t num_rows() const { return num_rows_; }
  size_t num_chunks() const {
    return (num_rows_ + kChunkRows - 1) / kChunkRows;
  }
  const ColumnData& column(size_t i) const { return cols_[i]; }

  /// Appends one validated, widened row (row width == schema width).
  void Append(const Row& row);

  /// Typed appends for the bulk ingest path; callers emit one full row of
  /// cells in schema order. The caller is responsible for type agreement
  /// (checked with FF_DCHECK); int64 cells widen into double columns.
  void AppendCell(size_t col, const Value& v);
  void AppendNull(size_t col);
  void AppendInt64(size_t col, int64_t v);
  void AppendDouble(size_t col, double v);
  void AppendBool(size_t col, bool v);
  void AppendString(size_t col, std::string_view v);
  /// Commits the row appended cell-by-cell (FF_DCHECKs column lengths).
  void EndRow();

  /// Point update; marks the containing chunk's zone maps dirty.
  void Set(size_t row, size_t col, const Value& v);

  /// Value view of one cell (strings decoded through the dictionary).
  Value GetValue(size_t row, size_t col) const;

  /// Recomputes any zone maps invalidated by Set().
  void EnsureZones() const;
  /// Prepares the store for zero-copy scans: refreshes zone maps and pads
  /// each nullable column's bitmap to cover every row, so chunk views may
  /// slice `null_words` at any word offset.
  void EnsureScanReady() const;
  /// Zone map for (chunk, col); caller must EnsureZones() first.
  const ZoneMap& zone(size_t chunk, size_t col) const {
    return cols_[col].zones[chunk];
  }

  /// Drops all rows and re-appends `rows` (used after deletions).
  /// Dictionaries are rebuilt, so codes may change.
  void Rebuild(const std::vector<Row>& rows);

  void Reserve(size_t rows);

 private:
  void AppendToZone(size_t col, const Value& v);
  void SetNullBit(ColumnData* c, size_t row);

  const Schema* schema_;  // owned by the Table
  std::vector<ColumnData> cols_;
  size_t num_rows_ = 0;
  mutable bool zones_dirty_ = false;
};

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_COLUMN_STORE_H_
