// Vectorized executor: plan nodes stream column batches (batch.h) instead
// of materializing whole ResultSets. Scans slice ColumnStore chunks into
// zero-copy batches (pruning chunks via zone maps and serving equality
// predicates from hash indexes), filters refine selection vectors, and
// pipeline breakers (aggregate, sort, join, distinct) emit row-mode
// batches. Results match the row-at-a-time reference engine
// (PlanNode::Execute) row for row; plans coming from Query/SQL run here
// after the planner pass (planner.h).

#ifndef FF_STATSDB_EXEC_H_
#define FF_STATSDB_EXEC_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/runtime_stats.h"
#include "statsdb/batch.h"
#include "statsdb/query.h"

namespace ff {
namespace statsdb {

class ColumnStore;
class Database;
class ScanNode;
class Table;

/// Pull-based batch stream. Next() returns nullptr at end of stream; the
/// returned batch stays valid until the next call.
class BatchIterator {
 public:
  virtual ~BatchIterator() = default;
  virtual const Schema& schema() const = 0;
  virtual util::StatusOr<const Batch*> Next() = 0;
};

/// Builds the iterator tree for `plan`. The plan must outlive the
/// iterator. When `prof` is non-null a matching obs::OperatorProfile
/// tree is grown under it (one child per plan input, labels always set)
/// and — with FF_PROFILING compiled in — every iterator is wrapped to
/// time Next() and count batches/rows; `prof` must outlive the iterator.
util::StatusOr<std::unique_ptr<BatchIterator>> BuildIterator(
    const PlanNode& plan, const Database& db,
    obs::OperatorProfile* prof = nullptr);

/// Coordinator-side scan preparation, shared across morsels by the
/// parallel executor (parallel_exec.h). Building one performs all the
/// lazily-mutating and allocation-heavy work a scan needs — table
/// lookup, zone-map refresh (table->store()), predicate analysis, the
/// hash-index Lookup — exactly once; afterwards the setup is immutable
/// and safe to read from any number of threads.
struct ScanSetup {
  const Table* table = nullptr;
  const ColumnStore* store = nullptr;
  std::vector<ExprPtr> conjuncts;
  std::vector<std::pair<size_t, SimplePredicate>> zone_preds;
  bool use_index = false;
  std::vector<size_t> index_rows;  // ascending row ids, index path only
};

util::StatusOr<ScanSetup> PrepareScan(const ScanNode& node,
                                      const Database& db);

/// Chunk indices (ascending) that survive zone-map pruning and — on the
/// index path — contain at least one index match. The parallel executor
/// partitions this list into morsels; chunks absent from it are provably
/// empty for the scan.
std::vector<size_t> SurveyScanChunks(const ScanSetup& setup);

/// Builds the iterator tree for `plan`, which must be a chain of
/// Filter/Project nodes over one Scan leaf; the leaf is replaced by a
/// scan over `chunks` (an ascending subsequence of SurveyScanChunks)
/// reusing the shared `setup`. Both must outlive the iterator.
util::StatusOr<std::unique_ptr<BatchIterator>> BuildChainIterator(
    const PlanNode& plan, const ScanSetup* setup, std::vector<size_t> chunks,
    obs::OperatorProfile* prof = nullptr);

/// Runs `plan` through the vectorized engine as-is (no planner pass) and
/// materializes the result.
util::StatusOr<ResultSet> ExecuteColumnar(const PlanNode& plan,
                                          const Database& db);

/// ExecuteColumnar with per-operator profiling: fills profile->root (and
/// profile->total_ns) while producing the exact same rows — the profiled
/// iterators are pass-through observers. Serial engine only; the
/// parallel counterpart is ExecutePlanProfiled (parallel_exec.h).
util::StatusOr<ResultSet> ExecuteColumnarProfiled(const PlanNode& plan,
                                                  const Database& db,
                                                  obs::QueryProfile* profile);

/// Node-local operator label for EXPLAIN output and operator profiles:
/// the node's own parameters without its inputs (a Scan leaf keeps its
/// full self-contained ToString with pred=/prune=/index= annotations).
std::string NodeLabel(const PlanNode& plan);

/// Bare EXPLAIN: the optimized plan tree, one line per operator with
/// two-space indentation per depth. Does not execute anything.
std::vector<std::string> ExplainPlanLines(const PlanNode& plan);

/// Production entry point: optimizes `plan` (predicate pushdown, index
/// selection, top-k) and executes it through the vectorized engine.
util::StatusOr<ResultSet> ExecutePlan(const PlanPtr& plan,
                                      const Database& db);

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_EXEC_H_
