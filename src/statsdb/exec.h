// Vectorized executor: plan nodes stream column batches (batch.h) instead
// of materializing whole ResultSets. Scans slice ColumnStore chunks into
// zero-copy batches (pruning chunks via zone maps and serving equality
// predicates from hash indexes), filters refine selection vectors, and
// pipeline breakers (aggregate, sort, join, distinct) emit row-mode
// batches. Results match the row-at-a-time reference engine
// (PlanNode::Execute) row for row; plans coming from Query/SQL run here
// after the planner pass (planner.h).

#ifndef FF_STATSDB_EXEC_H_
#define FF_STATSDB_EXEC_H_

#include <memory>

#include "statsdb/batch.h"
#include "statsdb/query.h"

namespace ff {
namespace statsdb {

class Database;

/// Pull-based batch stream. Next() returns nullptr at end of stream; the
/// returned batch stays valid until the next call.
class BatchIterator {
 public:
  virtual ~BatchIterator() = default;
  virtual const Schema& schema() const = 0;
  virtual util::StatusOr<const Batch*> Next() = 0;
};

/// Builds the iterator tree for `plan`. The plan must outlive the
/// iterator.
util::StatusOr<std::unique_ptr<BatchIterator>> BuildIterator(
    const PlanNode& plan, const Database& db);

/// Runs `plan` through the vectorized engine as-is (no planner pass) and
/// materializes the result.
util::StatusOr<ResultSet> ExecuteColumnar(const PlanNode& plan,
                                          const Database& db);

/// Production entry point: optimizes `plan` (predicate pushdown, index
/// selection, top-k) and executes it through the vectorized engine.
util::StatusOr<ResultSet> ExecutePlan(const PlanPtr& plan,
                                      const Database& db);

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_EXEC_H_
