// Typed values for the statistics database. The paper stores one tuple per
// forecast-run execution in "a relational database with statistics
// extracted from forecast directories"; statsdb is that engine.

#ifndef FF_STATSDB_VALUE_H_
#define FF_STATSDB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/statusor.h"

namespace ff {
namespace statsdb {

/// Column/value types supported by the engine.
enum class DataType {
  kNull,    // only as the type of a NULL literal
  kBool,
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeName(DataType t);

/// Parses a type name ("INT", "INTEGER", "BIGINT", "DOUBLE", "REAL",
/// "FLOAT", "TEXT", "STRING", "VARCHAR", "BOOL", "BOOLEAN"),
/// case-insensitive.
util::StatusOr<DataType> ParseDataType(const std::string& name);

/// A single SQL value; monostate encodes NULL.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int64(int64_t i) { return Value(Rep(i)); }
  static Value Double(double d) { return Value(Rep(d)); }
  static Value String(std::string s) { return Value(Rep(std::move(s))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  DataType type() const;

  /// Typed accessors; the caller must check the type first (FF_CHECKed).
  bool bool_value() const;
  int64_t int64_value() const;
  double double_value() const;
  const std::string& string_value() const;

  /// Numeric view: int64 or double widened to double. Error for other
  /// types (including NULL).
  util::StatusOr<double> AsDouble() const;

  /// SQL-style three-valued comparison is handled in expr.cc; this is a
  /// *total* ordering used by ORDER BY and group keys: NULL < bool <
  /// numeric < string; numerics compare by value across int/double.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Rendering for CSV/result output; NULL renders as empty string.
  std::string ToString() const;

  /// Parses a string into the given type (used by CSV import). Empty
  /// string parses as NULL for any type.
  static util::StatusOr<Value> Parse(const std::string& text, DataType type);

  /// Hash consistent with Compare()==0 (int 3 and double 3.0 hash alike).
  size_t Hash() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double,
                           std::string>;
  explicit Value(Rep rep) : v_(std::move(rep)) {}
  Rep v_;
};

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_VALUE_H_
