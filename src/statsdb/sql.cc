#include "statsdb/sql.h"

#include <cctype>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "obs/runtime_stats.h"
#include "statsdb/cache.h"
#include "statsdb/database.h"
#include "statsdb/exec.h"
#include "statsdb/parallel_exec.h"
#include "statsdb/planner.h"
#include "util/strings.h"

namespace ff {
namespace statsdb {

namespace {

// ---------------------------------------------------------------- lexer --

enum class TokKind {
  kIdent,
  kInt,
  kDouble,
  kString,
  kSymbol,  // punctuation / operators
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;  // identifier (original case), symbol, or literal text
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : in_(input) {}

  util::StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespace();
      if (i_ >= in_.size()) {
        out.push_back(Token{TokKind::kEnd, "", i_});
        return out;
      }
      size_t start = i_;
      char c = in_[i_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t b = i_;
        while (i_ < in_.size() &&
               (std::isalnum(static_cast<unsigned char>(in_[i_])) ||
                in_[i_] == '_' || in_[i_] == '.')) {
          ++i_;
        }
        out.push_back(Token{TokKind::kIdent, in_.substr(b, i_ - b), start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && i_ + 1 < in_.size() &&
                  std::isdigit(static_cast<unsigned char>(in_[i_ + 1])))) {
        size_t b = i_;
        bool is_double = false;
        while (i_ < in_.size() &&
               (std::isdigit(static_cast<unsigned char>(in_[i_])) ||
                in_[i_] == '.' || in_[i_] == 'e' || in_[i_] == 'E' ||
                ((in_[i_] == '+' || in_[i_] == '-') && i_ > b &&
                 (in_[i_ - 1] == 'e' || in_[i_ - 1] == 'E')))) {
          if (in_[i_] == '.' || in_[i_] == 'e' || in_[i_] == 'E') {
            is_double = true;
          }
          ++i_;
        }
        out.push_back(Token{is_double ? TokKind::kDouble : TokKind::kInt,
                            in_.substr(b, i_ - b), start});
      } else if (c == '\'') {
        ++i_;
        std::string s;
        bool closed = false;
        while (i_ < in_.size()) {
          if (in_[i_] == '\'') {
            if (i_ + 1 < in_.size() && in_[i_ + 1] == '\'') {
              s += '\'';
              i_ += 2;
            } else {
              ++i_;
              closed = true;
              break;
            }
          } else {
            s += in_[i_++];
          }
        }
        if (!closed) {
          return util::Status::ParseError("unterminated string literal");
        }
        out.push_back(Token{TokKind::kString, s, start});
      } else {
        // Multi-char operators first.
        static const char* kTwo[] = {"<>", "<=", ">=", "!="};
        std::string sym(1, c);
        for (const char* t : kTwo) {
          if (in_.compare(i_, 2, t) == 0) {
            sym = t;
            break;
          }
        }
        static const std::string kSingles = "(),*=<>+-/%?";
        if (sym.size() == 1 && kSingles.find(c) == std::string::npos) {
          return util::Status::ParseError(
              util::StrFormat("unexpected character '%c' at %zu", c, i_));
        }
        i_ += sym.size();
        out.push_back(Token{TokKind::kSymbol, sym, start});
      }
    }
  }

 private:
  void SkipWhitespace() {
    while (i_ < in_.size()) {
      if (std::isspace(static_cast<unsigned char>(in_[i_]))) {
        ++i_;
      } else if (in_.compare(i_, 2, "--") == 0) {
        while (i_ < in_.size() && in_[i_] != '\n') ++i_;
      } else {
        break;
      }
    }
  }

  const std::string& in_;
  size_t i_ = 0;
};

// --------------------------------------------------------------- parser --

struct SelectItem {
  // Either a plain expression...
  ExprPtr expr;
  // ...or an aggregate call.
  std::optional<AggFunc> agg;
  ExprPtr agg_arg;  // null for COUNT(*)
  std::string alias;
  bool is_star = false;

  std::string DefaultName() const {
    if (!alias.empty()) return alias;
    if (agg) {
      if (*agg == AggFunc::kCountStar) return "count";
      return util::ToLower(AggFuncName(*agg)) + "_" + agg_arg->ToString();
    }
    return expr->ToString();
  }
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;  // empty => '*'
  std::string table;
  std::string join_table;  // empty when no join
  std::string join_left_col;
  std::string join_right_col;
  ExprPtr where;
  std::vector<std::string> group_by;
  ExprPtr having;
  std::vector<SortKey> order_by;
  std::optional<size_t> limit;
  size_t offset = 0;
};

struct CreateStmt {
  std::string table;
  std::vector<Column> columns;
};

struct InsertStmt {
  std::string table;
  std::vector<Row> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // null = all rows
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // null = all rows
};

class Parser {
 public:
  /// `params` collects one ParamSlot per `?` placeholder in statement
  /// order; null (the default, for direct SQL) makes `?` a parse error.
  explicit Parser(std::vector<Token> tokens,
                  std::vector<std::shared_ptr<ParamSlot>>* params = nullptr)
      : toks_(std::move(tokens)), params_(params) {}

  util::StatusOr<SelectStmt> ParseSelect() {
    FF_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStmt stmt;
    if (PeekKeyword("DISTINCT")) {
      Advance();
      stmt.distinct = true;
    }
    if (PeekSymbol("*")) {
      Advance();
    } else {
      while (true) {
        FF_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
        stmt.items.push_back(std::move(item));
        if (!PeekSymbol(",")) break;
        Advance();
      }
    }
    FF_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    FF_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    if (PeekKeyword("JOIN")) {
      Advance();
      FF_ASSIGN_OR_RETURN(stmt.join_table, ExpectIdent());
      FF_RETURN_IF_ERROR(ExpectKeyword("ON"));
      FF_ASSIGN_OR_RETURN(stmt.join_left_col, ExpectIdent());
      FF_RETURN_IF_ERROR(ExpectSymbol("="));
      FF_ASSIGN_OR_RETURN(stmt.join_right_col, ExpectIdent());
    }
    if (PeekKeyword("WHERE")) {
      Advance();
      FF_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      FF_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        FF_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        stmt.group_by.push_back(std::move(col));
        if (!PeekSymbol(",")) break;
        Advance();
      }
    }
    if (PeekKeyword("HAVING")) {
      Advance();
      FF_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (PeekKeyword("ORDER")) {
      Advance();
      FF_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        SortKey key;
        FF_ASSIGN_OR_RETURN(key.column, ExpectIdent());
        if (PeekKeyword("ASC")) {
          Advance();
        } else if (PeekKeyword("DESC")) {
          Advance();
          key.ascending = false;
        }
        stmt.order_by.push_back(std::move(key));
        if (!PeekSymbol(",")) break;
        Advance();
      }
    }
    if (PeekKeyword("LIMIT")) {
      Advance();
      FF_ASSIGN_OR_RETURN(int64_t n, ExpectInt());
      if (n < 0) return util::Status::ParseError("negative LIMIT");
      stmt.limit = static_cast<size_t>(n);
      if (PeekKeyword("OFFSET")) {
        Advance();
        FF_ASSIGN_OR_RETURN(int64_t off, ExpectInt());
        if (off < 0) return util::Status::ParseError("negative OFFSET");
        stmt.offset = static_cast<size_t>(off);
      }
    }
    FF_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }

  util::StatusOr<CreateStmt> ParseCreate() {
    FF_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    FF_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    CreateStmt stmt;
    FF_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    FF_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      Column col;
      FF_ASSIGN_OR_RETURN(col.name, ExpectIdent());
      FF_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent());
      FF_ASSIGN_OR_RETURN(col.type, ParseDataType(type_name));
      stmt.columns.push_back(std::move(col));
      if (PeekSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    FF_RETURN_IF_ERROR(ExpectSymbol(")"));
    FF_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }

  util::StatusOr<InsertStmt> ParseInsert() {
    FF_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    FF_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    FF_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    FF_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      FF_RETURN_IF_ERROR(ExpectSymbol("("));
      Row row;
      while (true) {
        FF_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        row.push_back(std::move(v));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      FF_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.rows.push_back(std::move(row));
      if (PeekSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    FF_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }

  util::StatusOr<UpdateStmt> ParseUpdate() {
    FF_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    UpdateStmt stmt;
    FF_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    FF_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      FF_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      FF_RETURN_IF_ERROR(ExpectSymbol("="));
      FF_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(value));
      if (!PeekSymbol(",")) break;
      Advance();
    }
    if (PeekKeyword("WHERE")) {
      Advance();
      FF_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    FF_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }

  util::StatusOr<DeleteStmt> ParseDelete() {
    FF_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    FF_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    FF_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    if (PeekKeyword("WHERE")) {
      Advance();
      FF_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    FF_RETURN_IF_ERROR(ExpectEnd());
    return stmt;
  }

  bool PeekKeyword(const std::string& kw) const {
    const Token& t = toks_[i_];
    return t.kind == TokKind::kIdent && util::EqualsIgnoreCase(t.text, kw);
  }

 private:
  const Token& Cur() const { return toks_[i_]; }
  void Advance() {
    if (i_ + 1 < toks_.size()) ++i_;
  }

  bool PeekSymbol(const std::string& sym) const {
    return Cur().kind == TokKind::kSymbol && Cur().text == sym;
  }

  util::Status ExpectKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) {
      return util::Status::ParseError("expected " + kw + " near '" +
                                      Cur().text + "'");
    }
    Advance();
    return util::Status::OK();
  }

  util::Status ExpectSymbol(const std::string& sym) {
    if (!PeekSymbol(sym)) {
      return util::Status::ParseError("expected '" + sym + "' near '" +
                                      Cur().text + "'");
    }
    Advance();
    return util::Status::OK();
  }

  util::StatusOr<std::string> ExpectIdent() {
    if (Cur().kind != TokKind::kIdent) {
      return util::Status::ParseError("expected identifier near '" +
                                      Cur().text + "'");
    }
    if (IsReserved(Cur().text)) {
      return util::Status::ParseError("unexpected keyword '" + Cur().text +
                                      "'");
    }
    std::string name = Cur().text;
    Advance();
    return name;
  }

  util::StatusOr<int64_t> ExpectInt() {
    if (Cur().kind != TokKind::kInt) {
      return util::Status::ParseError("expected integer near '" +
                                      Cur().text + "'");
    }
    FF_ASSIGN_OR_RETURN(int64_t v, util::ParseInt64(Cur().text));
    Advance();
    return v;
  }

  util::Status ExpectEnd() {
    if (Cur().kind != TokKind::kEnd) {
      return util::Status::ParseError("unexpected trailing input: '" +
                                      Cur().text + "'");
    }
    return util::Status::OK();
  }

  static bool IsReserved(const std::string& word) {
    static const char* kReserved[] = {
        "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",     "HAVING",
        "ORDER",  "LIMIT", "OFFSET", "JOIN",   "ON",     "AND",
        "OR",     "NOT",   "AS",     "ASC",    "DESC",   "DISTINCT",
        "INSERT", "INTO",  "VALUES", "CREATE", "TABLE",  "LIKE",
        "IS",     "NULL",  "TRUE",   "FALSE",  "UPDATE", "SET",
        "DELETE", "IN",    "BETWEEN"};
    for (const char* r : kReserved) {
      if (util::EqualsIgnoreCase(word, r)) return true;
    }
    return false;
  }

  static std::optional<AggFunc> AggFromName(const std::string& name) {
    if (util::EqualsIgnoreCase(name, "COUNT")) return AggFunc::kCount;
    if (util::EqualsIgnoreCase(name, "SUM")) return AggFunc::kSum;
    if (util::EqualsIgnoreCase(name, "AVG")) return AggFunc::kAvg;
    if (util::EqualsIgnoreCase(name, "MIN")) return AggFunc::kMin;
    if (util::EqualsIgnoreCase(name, "MAX")) return AggFunc::kMax;
    if (util::EqualsIgnoreCase(name, "P95")) return AggFunc::kP95;
    return std::nullopt;
  }

  util::StatusOr<Value> ParseLiteralValue() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokKind::kInt: {
        FF_ASSIGN_OR_RETURN(int64_t v, util::ParseInt64(t.text));
        Advance();
        return Value::Int64(v);
      }
      case TokKind::kDouble: {
        FF_ASSIGN_OR_RETURN(double v, util::ParseDouble(t.text));
        Advance();
        return Value::Double(v);
      }
      case TokKind::kString: {
        std::string s = t.text;
        Advance();
        return Value::String(std::move(s));
      }
      case TokKind::kIdent: {
        if (util::EqualsIgnoreCase(t.text, "NULL")) {
          Advance();
          return Value::Null();
        }
        if (util::EqualsIgnoreCase(t.text, "TRUE")) {
          Advance();
          return Value::Bool(true);
        }
        if (util::EqualsIgnoreCase(t.text, "FALSE")) {
          Advance();
          return Value::Bool(false);
        }
        return util::Status::ParseError("expected literal, got '" + t.text +
                                        "'");
      }
      case TokKind::kSymbol: {
        if (t.text == "-") {
          Advance();
          FF_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
          if (v.type() == DataType::kInt64) {
            return Value::Int64(-v.int64_value());
          }
          if (v.type() == DataType::kDouble) {
            return Value::Double(-v.double_value());
          }
          return util::Status::ParseError("cannot negate literal");
        }
        return util::Status::ParseError("expected literal, got '" + t.text +
                                        "'");
      }
      default:
        return util::Status::ParseError("expected literal");
    }
  }

  util::StatusOr<SelectItem> ParseSelectItem() {
    SelectItem item;
    // Aggregate call?
    if (Cur().kind == TokKind::kIdent && !IsReserved(Cur().text)) {
      auto agg = AggFromName(Cur().text);
      if (agg && i_ + 1 < toks_.size() &&
          toks_[i_ + 1].kind == TokKind::kSymbol &&
          toks_[i_ + 1].text == "(") {
        Advance();  // function name
        Advance();  // '('
        if (*agg == AggFunc::kCount && PeekSymbol("*")) {
          Advance();
          item.agg = AggFunc::kCountStar;
        } else {
          FF_ASSIGN_OR_RETURN(item.agg_arg, ParseExpr());
          item.agg = agg;
        }
        FF_RETURN_IF_ERROR(ExpectSymbol(")"));
        if (PeekKeyword("AS")) {
          Advance();
          FF_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
        }
        return item;
      }
    }
    FF_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (PeekKeyword("AS")) {
      Advance();
      FF_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
    }
    return item;
  }

  // Precedence-climbing expression parser.
  util::StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  util::StatusOr<ExprPtr> ParseOr() {
    FF_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      FF_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  util::StatusOr<ExprPtr> ParseAnd() {
    FF_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      FF_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  util::StatusOr<ExprPtr> ParseNot() {
    if (PeekKeyword("NOT")) {
      Advance();
      FF_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Not(std::move(operand));
    }
    return ParseComparison();
  }

  util::StatusOr<ExprPtr> ParseComparison() {
    FF_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (Cur().kind == TokKind::kSymbol) {
      const std::string& s = Cur().text;
      BinaryOp op;
      bool matched = true;
      if (s == "=") {
        op = BinaryOp::kEq;
      } else if (s == "<>" || s == "!=") {
        op = BinaryOp::kNe;
      } else if (s == "<") {
        op = BinaryOp::kLt;
      } else if (s == "<=") {
        op = BinaryOp::kLe;
      } else if (s == ">") {
        op = BinaryOp::kGt;
      } else if (s == ">=") {
        op = BinaryOp::kGe;
      } else {
        matched = false;
      }
      if (matched) {
        Advance();
        FF_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Binary(op, std::move(lhs), std::move(rhs));
      }
    }
    if (PeekKeyword("LIKE")) {
      Advance();
      FF_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return Like(std::move(lhs), std::move(rhs));
    }
    // [NOT] IN (...) / [NOT] BETWEEN lo AND hi.
    bool negated_membership = false;
    if (PeekKeyword("NOT") && i_ + 1 < toks_.size() &&
        toks_[i_ + 1].kind == TokKind::kIdent &&
        (util::EqualsIgnoreCase(toks_[i_ + 1].text, "IN") ||
         util::EqualsIgnoreCase(toks_[i_ + 1].text, "BETWEEN"))) {
      Advance();
      negated_membership = true;
    }
    if (PeekKeyword("IN")) {
      Advance();
      FF_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<ExprPtr> candidates;
      while (true) {
        FF_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        candidates.push_back(std::move(e));
        if (!PeekSymbol(",")) break;
        Advance();
      }
      FF_RETURN_IF_ERROR(ExpectSymbol(")"));
      ExprPtr membership = In(lhs, std::move(candidates));
      return negated_membership ? Not(std::move(membership)) : membership;
    }
    if (PeekKeyword("BETWEEN")) {
      Advance();
      FF_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      FF_RETURN_IF_ERROR(ExpectKeyword("AND"));
      FF_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr membership = Between(lhs, std::move(lo), std::move(hi));
      return negated_membership ? Not(std::move(membership)) : membership;
    }
    if (negated_membership) {
      return util::Status::ParseError("expected IN or BETWEEN after NOT");
    }
    if (PeekKeyword("IS")) {
      Advance();
      bool negated = false;
      if (PeekKeyword("NOT")) {
        Advance();
        negated = true;
      }
      if (!PeekKeyword("NULL")) {
        return util::Status::ParseError("expected NULL after IS");
      }
      Advance();
      return negated ? IsNotNull(std::move(lhs)) : IsNull(std::move(lhs));
    }
    return lhs;
  }

  util::StatusOr<ExprPtr> ParseAdditive() {
    FF_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Cur().kind == TokKind::kSymbol &&
           (Cur().text == "+" || Cur().text == "-")) {
      BinaryOp op = Cur().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      FF_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  util::StatusOr<ExprPtr> ParseMultiplicative() {
    FF_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Cur().kind == TokKind::kSymbol &&
           (Cur().text == "*" || Cur().text == "/" || Cur().text == "%")) {
      BinaryOp op = Cur().text == "*"
                        ? BinaryOp::kMul
                        : (Cur().text == "/" ? BinaryOp::kDiv
                                             : BinaryOp::kMod);
      Advance();
      FF_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  util::StatusOr<ExprPtr> ParseUnary() {
    if (Cur().kind == TokKind::kSymbol && Cur().text == "-") {
      Advance();
      FF_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Unary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  util::StatusOr<ExprPtr> ParsePrimary() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokKind::kInt: {
        FF_ASSIGN_OR_RETURN(int64_t v, util::ParseInt64(t.text));
        Advance();
        return LitInt(v);
      }
      case TokKind::kDouble: {
        FF_ASSIGN_OR_RETURN(double v, util::ParseDouble(t.text));
        Advance();
        return LitDouble(v);
      }
      case TokKind::kString: {
        std::string s = t.text;
        Advance();
        return LitString(std::move(s));
      }
      case TokKind::kIdent: {
        if (util::EqualsIgnoreCase(t.text, "NULL")) {
          Advance();
          return LitNull();
        }
        if (util::EqualsIgnoreCase(t.text, "TRUE")) {
          Advance();
          return LitBool(true);
        }
        if (util::EqualsIgnoreCase(t.text, "FALSE")) {
          Advance();
          return LitBool(false);
        }
        if (IsReserved(t.text)) {
          return util::Status::ParseError("unexpected keyword '" + t.text +
                                          "'");
        }
        std::string name = t.text;
        Advance();
        return Col(std::move(name));
      }
      case TokKind::kSymbol: {
        if (t.text == "(") {
          Advance();
          FF_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          FF_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
        if (t.text == "?") {
          if (params_ == nullptr) {
            return util::Status::ParseError(
                "'?' placeholders are only valid in prepared statements "
                "(Database::Prepare)");
          }
          Advance();
          auto slot = std::make_shared<ParamSlot>();
          size_t index = params_->size();
          params_->push_back(slot);
          return Param(index, slot);
        }
        return util::Status::ParseError("unexpected symbol '" + t.text +
                                        "'");
      }
      default:
        return util::Status::ParseError("unexpected end of input");
    }
  }

  std::vector<Token> toks_;
  size_t i_ = 0;
  std::vector<std::shared_ptr<ParamSlot>>* params_ = nullptr;
};

// --------------------------------------------------------------- binder --

util::StatusOr<PlanPtr> BuildSelectPlan(const SelectStmt& stmt) {
  PlanPtr plan = MakeScan(stmt.table);
  if (!stmt.join_table.empty()) {
    plan = MakeHashJoin(plan, MakeScan(stmt.join_table), stmt.join_left_col,
                        stmt.join_right_col);
  }
  if (stmt.where) plan = MakeFilter(plan, stmt.where);

  bool has_agg = false;
  for (const auto& item : stmt.items) {
    if (item.agg) has_agg = true;
  }

  if (has_agg || !stmt.group_by.empty()) {
    // Every non-aggregate select item must be a group-by column reference.
    std::vector<AggSpec> aggs;
    std::vector<ProjectItem> final_projection;
    for (const auto& item : stmt.items) {
      if (item.agg) {
        std::string name = item.DefaultName();
        aggs.push_back(AggSpec{*item.agg, item.agg_arg, name});
        final_projection.push_back(ProjectItem{Col(name), name});
      } else {
        std::string col_name = item.expr->ToString();
        bool in_group = false;
        for (const auto& g : stmt.group_by) {
          if (util::EqualsIgnoreCase(g, col_name)) in_group = true;
        }
        if (!in_group) {
          return util::Status::InvalidArgument(
              "select item '" + col_name +
              "' must be an aggregate or appear in GROUP BY");
        }
        std::string name = item.alias.empty() ? col_name : item.alias;
        final_projection.push_back(ProjectItem{Col(col_name), name});
      }
    }
    if (stmt.items.empty()) {
      return util::Status::InvalidArgument(
          "SELECT * cannot be combined with GROUP BY");
    }
    plan = MakeAggregate(plan, stmt.group_by, std::move(aggs));
    if (stmt.having) plan = MakeFilter(plan, stmt.having);
    // Sort before the final projection when sort keys may reference
    // group-by columns that the projection renames; project first and sort
    // on output names otherwise. We project first: HAVING and ORDER BY in
    // this subset refer to output column names.
    plan = MakeProject(plan, std::move(final_projection));
  } else if (!stmt.items.empty()) {
    if (stmt.having) {
      return util::Status::InvalidArgument("HAVING requires GROUP BY");
    }
    std::vector<ProjectItem> items;
    std::vector<std::string> visible;
    for (const auto& item : stmt.items) {
      std::string name = item.DefaultName();
      visible.push_back(name);
      items.push_back(ProjectItem{item.expr, name});
    }
    // ORDER BY may reference base-table columns the projection drops;
    // carry them as hidden columns through the sort, then strip them.
    bool hidden = false;
    if (!stmt.distinct) {
      for (const auto& key : stmt.order_by) {
        bool in_output = false;
        for (const auto& name : visible) {
          if (util::EqualsIgnoreCase(name, key.column)) in_output = true;
        }
        if (!in_output) {
          items.push_back(ProjectItem{Col(key.column), key.column});
          hidden = true;
        }
      }
    }
    plan = MakeProject(plan, std::move(items));
    if (!stmt.order_by.empty()) {
      plan = MakeSort(plan, stmt.order_by);
    }
    if (hidden) {
      std::vector<ProjectItem> strip;
      for (const auto& name : visible) {
        strip.push_back(ProjectItem{Col(name), name});
      }
      plan = MakeProject(plan, std::move(strip));
    }
    if (stmt.distinct) plan = MakeDistinct(plan);
    if (stmt.limit) plan = MakeLimit(plan, *stmt.limit, stmt.offset);
    return plan;
  } else if (stmt.having) {
    return util::Status::InvalidArgument("HAVING requires GROUP BY");
  }

  if (stmt.distinct) plan = MakeDistinct(plan);
  if (!stmt.order_by.empty()) plan = MakeSort(plan, stmt.order_by);
  if (stmt.limit) plan = MakeLimit(plan, *stmt.limit, stmt.offset);
  return plan;
}

/// Renders plan/profile lines as a single-column result set so EXPLAIN
/// output flows through every existing ResultSet consumer (CSV dumps,
/// tests, the statsdb bridge) unchanged.
ResultSet PlanLinesResult(const std::vector<std::string>& lines) {
  ResultSet rs;
  rs.schema = Schema({Column{"plan", DataType::kString}});
  rs.rows.reserve(lines.size());
  for (const std::string& line : lines) {
    rs.rows.push_back(Row{Value::String(line)});
  }
  return rs;
}

/// Normalized statement identity for the plan tier: the token stream —
/// whitespace and comments are already gone, and the caller strips any
/// EXPLAIN [ANALYZE] prefix first, so `SELECT x FROM t`, `select x FROM
/// t  -- note`, and the SELECT inside an EXPLAIN share one plan entry.
/// Identifier case is preserved (table names are case-sensitive);
/// differently-cased keywords therefore key separate entries, which
/// costs a duplicate plan, never a wrong one.
QueryCache::Key TokensKey(const std::vector<Token>& toks) {
  DualFingerprint fp;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kEnd) break;
    fp.U8(static_cast<uint8_t>(t.kind)).Str(t.text);
  }
  return QueryCache::Key{fp.fp(), fp.check()};
}

}  // namespace

util::StatusOr<ResultSet> ExecuteSql(Database* db,
                                     const std::string& statement) {
  Lexer lexer(statement);
  FF_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Tokenize());
  if (toks.empty() || toks[0].kind == TokKind::kEnd) {
    return util::Status::ParseError("empty statement");
  }
  // EXPLAIN [ANALYZE] prefixes are stripped before the parser is built;
  // the remaining tokens must form a plain SELECT.
  bool explain = false;
  bool analyze = false;
  if (toks[0].kind == TokKind::kIdent &&
      util::EqualsIgnoreCase(toks[0].text, "EXPLAIN")) {
    explain = true;
    size_t strip = 1;
    if (toks.size() > 1 && toks[1].kind == TokKind::kIdent &&
        util::EqualsIgnoreCase(toks[1].text, "ANALYZE")) {
      analyze = true;
      strip = 2;
    }
    toks.erase(toks.begin(), toks.begin() + strip);
    if (toks.empty() || toks[0].kind == TokKind::kEnd) {
      return util::Status::ParseError("EXPLAIN requires a SELECT statement");
    }
  }
  bool is_select = toks[0].kind == TokKind::kIdent &&
                   util::EqualsIgnoreCase(toks[0].text, "SELECT");
  if (explain && !is_select) {
    return util::Status::ParseError("EXPLAIN supports only SELECT");
  }
  if (is_select) {
    // Plan tier: the token-stream fingerprint is computed before the
    // parser consumes the tokens, and a hit skips parse + plan + optimize
    // entirely. EXPLAIN variants share the entry with the plain SELECT
    // (the prefix was stripped above).
    QueryCache& qc = db->cache();
    const bool plan_cache_on = qc.config().mode != CacheConfig::Mode::kOff;
    QueryCache::Key key;
    PlanPtr optimized;
    if (plan_cache_on) {
      key = TokensKey(toks);
      optimized = qc.GetPlan(key, *db);
    } else {
      qc.RecordPlanBypass();
    }
    if (!optimized) {
      Parser parser(std::move(toks));
      FF_ASSIGN_OR_RETURN(SelectStmt stmt, parser.ParseSelect());
      FF_ASSIGN_OR_RETURN(PlanPtr plan, BuildSelectPlan(stmt));
      optimized = OptimizePlan(plan, *db);
      if (plan_cache_on) qc.PutPlan(key, *db, optimized);
    }
    if (explain && !analyze) {
      // Bare EXPLAIN: optimized plan tree, nothing executes.
      return PlanLinesResult(ExplainPlanLines(*optimized));
    }
    if (explain) {
      // EXPLAIN ANALYZE: run the statement (serial or parallel per the
      // database's config — results are byte-identical to the plain run
      // and are discarded) and render the annotated operator tree with
      // its cache=hit|miss|bypass header annotation.
      obs::QueryProfile profile;
      FF_RETURN_IF_ERROR(ExecuteOptimizedProfiled(optimized, *db,
                                                  db->parallel_config(),
                                                  &profile)
                             .status());
      return PlanLinesResult(profile.RenderLines());
    }
    return ExecuteOptimized(optimized, *db);
  }
  Parser parser(std::move(toks));
  if (parser.PeekKeyword("CREATE")) {
    FF_ASSIGN_OR_RETURN(CreateStmt stmt, parser.ParseCreate());
    FF_ASSIGN_OR_RETURN(Schema schema, Schema::Create(stmt.columns));
    FF_RETURN_IF_ERROR(db->CreateTable(stmt.table, schema).status());
    return ResultSet{Schema(), {}};
  }
  if (parser.PeekKeyword("INSERT")) {
    FF_ASSIGN_OR_RETURN(InsertStmt stmt, parser.ParseInsert());
    FF_ASSIGN_OR_RETURN(Table * t, db->table(stmt.table));
    for (const auto& row : stmt.rows) {
      FF_RETURN_IF_ERROR(t->Insert(row));
    }
    ResultSet rs;
    rs.schema = Schema({Column{"rows_inserted", DataType::kInt64}});
    rs.rows.push_back(
        Row{Value::Int64(static_cast<int64_t>(stmt.rows.size()))});
    return rs;
  }
  if (parser.PeekKeyword("UPDATE")) {
    FF_ASSIGN_OR_RETURN(UpdateStmt stmt, parser.ParseUpdate());
    FF_ASSIGN_OR_RETURN(Table * t, db->table(stmt.table));
    const Schema& schema = t->schema();
    // Resolve target columns up front.
    std::vector<size_t> target_cols;
    for (const auto& [col, expr] : stmt.assignments) {
      FF_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(col));
      target_cols.push_back(idx);
    }
    int64_t updated = 0;
    for (size_t i = 0; i < t->num_rows(); ++i) {
      if (stmt.where) {
        FF_ASSIGN_OR_RETURN(Value match, stmt.where->Eval(t->row(i),
                                                          schema));
        if (match.is_null() || !match.bool_value()) continue;
      }
      // Evaluate every assignment against the OLD row before writing.
      std::vector<Value> new_values;
      for (const auto& [col, expr] : stmt.assignments) {
        FF_ASSIGN_OR_RETURN(Value v, expr->Eval(t->row(i), schema));
        new_values.push_back(std::move(v));
      }
      for (size_t a = 0; a < target_cols.size(); ++a) {
        FF_RETURN_IF_ERROR(
            t->UpdateCell(i, target_cols[a], std::move(new_values[a])));
      }
      ++updated;
    }
    ResultSet rs;
    rs.schema = Schema({Column{"rows_updated", DataType::kInt64}});
    rs.rows.push_back(Row{Value::Int64(updated)});
    return rs;
  }
  if (parser.PeekKeyword("DELETE")) {
    FF_ASSIGN_OR_RETURN(DeleteStmt stmt, parser.ParseDelete());
    FF_ASSIGN_OR_RETURN(Table * t, db->table(stmt.table));
    const Schema& schema = t->schema();
    std::vector<size_t> victims;
    for (size_t i = 0; i < t->num_rows(); ++i) {
      if (stmt.where) {
        FF_ASSIGN_OR_RETURN(Value match, stmt.where->Eval(t->row(i),
                                                          schema));
        if (match.is_null() || !match.bool_value()) continue;
      }
      victims.push_back(i);
    }
    FF_RETURN_IF_ERROR(t->DeleteRows(victims));
    ResultSet rs;
    rs.schema = Schema({Column{"rows_deleted", DataType::kInt64}});
    rs.rows.push_back(
        Row{Value::Int64(static_cast<int64_t>(victims.size()))});
    return rs;
  }
  return util::Status::ParseError(
      "statement must start with SELECT, INSERT, UPDATE, DELETE, CREATE "
      "or EXPLAIN");
}

util::StatusOr<PreparedStatement> PrepareSql(Database* db,
                                             const std::string& statement) {
  if (db == nullptr) {
    return util::Status::InvalidArgument("null database");
  }
  Lexer lexer(statement);
  FF_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Tokenize());
  if (toks.empty() || toks[0].kind == TokKind::kEnd) {
    return util::Status::ParseError("empty statement");
  }
  if (!(toks[0].kind == TokKind::kIdent &&
        util::EqualsIgnoreCase(toks[0].text, "SELECT"))) {
    return util::Status::ParseError("Prepare supports only SELECT");
  }
  PreparedStatement ps;
  ps.db_ = db;
  ps.sql_ = statement;

  // A parameterless template is just a SELECT compiled early — let it
  // share the text-keyed plan tier with Database::Sql traffic.
  bool has_params = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kSymbol && t.text == "?") has_params = true;
  }
  QueryCache& qc = db->cache();
  const bool share_plan_tier =
      !has_params && qc.config().mode != CacheConfig::Mode::kOff;
  QueryCache::Key key;
  if (share_plan_tier) {
    key = TokensKey(toks);
    ps.plan_ = qc.GetPlan(key, *db);
    if (ps.plan_) return ps;
  }

  Parser parser(std::move(toks), &ps.slots_);
  FF_ASSIGN_OR_RETURN(SelectStmt stmt, parser.ParseSelect());
  FF_ASSIGN_OR_RETURN(PlanPtr plan, BuildSelectPlan(stmt));
  ps.plan_ = OptimizePlan(plan, *db);
  if (share_plan_tier) qc.PutPlan(key, *db, ps.plan_);
  return ps;
}

util::StatusOr<ResultSet> PreparedStatement::Execute(
    const std::vector<Value>& params) const {
  if (db_ == nullptr || plan_ == nullptr) {
    return util::Status::InvalidArgument("statement was not prepared");
  }
  if (params.size() != slots_.size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "statement has %zu parameter(s), got %zu", slots_.size(),
        params.size()));
  }
  // The slots are shared with the ParamExprs baked into plan_; binding
  // them is what makes the (otherwise immutable) plan see the values.
  for (size_t i = 0; i < slots_.size(); ++i) {
    slots_[i]->value = params[i];
    slots_[i]->bound = true;
  }
  return ExecuteOptimized(plan_, *db_);
}

util::StatusOr<PlanPtr> PlanSql(const std::string& statement) {
  Lexer lexer(statement);
  FF_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Tokenize());
  if (toks.empty() || toks[0].kind == TokKind::kEnd) {
    return util::Status::ParseError("empty statement");
  }
  Parser parser(std::move(toks));
  if (!parser.PeekKeyword("SELECT")) {
    return util::Status::ParseError("PlanSql only accepts SELECT");
  }
  FF_ASSIGN_OR_RETURN(SelectStmt stmt, parser.ParseSelect());
  return BuildSelectPlan(stmt);
}

}  // namespace statsdb
}  // namespace ff
