#include "statsdb/query.h"

#include "statsdb/exec.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "statsdb/database.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/summary_stats.h"

namespace ff {
namespace statsdb {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kP95:
      return "P95";
  }
  return "?";
}

std::string ResultSet::ToCsv() const {
  std::ostringstream os;
  std::vector<std::string> header;
  for (const auto& c : schema.columns()) header.push_back(c.name);
  util::CsvWriter writer(&os, header);
  for (const auto& row : rows) {
    std::vector<std::string> fields;
    fields.reserve(row.size());
    for (const auto& v : row) fields.push_back(v.ToString());
    writer.WriteRow(fields).ok();
  }
  return os.str();
}

std::string ResultSet::ToPrettyString() const {
  std::vector<size_t> widths(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    widths[i] = schema.column(i).name.size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      r.push_back(row[i].is_null() ? "NULL" : row[i].ToString());
      widths[i] = std::max(widths[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& fields) {
    os << "|";
    for (size_t i = 0; i < fields.size(); ++i) {
      os << " " << fields[i]
         << std::string(widths[i] - fields[i].size(), ' ') << " |";
    }
    os << "\n";
  };
  std::vector<std::string> header;
  for (const auto& c : schema.columns()) header.push_back(c.name);
  emit_row(header);
  os << "|";
  for (size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& r : rendered) emit_row(r);
  return os.str();
}

util::StatusOr<Value> ResultSet::Scalar() const {
  if (rows.size() != 1 || schema.num_columns() != 1) {
    return util::Status::InvalidArgument(util::StrFormat(
        "Scalar() requires 1x1 result, got %zux%zu", rows.size(),
        schema.num_columns()));
  }
  return rows[0][0];
}

util::StatusOr<std::vector<Value>> ResultSet::ColumnValues(
    const std::string& name) const {
  FF_ASSIGN_OR_RETURN(size_t i, schema.IndexOf(name));
  std::vector<Value> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row[i]);
  return out;
}

Query::Query(const Database* db, std::string table)
    : db_(db), plan_(MakeScan(std::move(table))) {}

Query& Query::Filter(ExprPtr predicate) {
  plan_ = MakeFilter(plan_, std::move(predicate));
  return *this;
}
Query& Query::Project(std::vector<ProjectItem> items) {
  plan_ = MakeProject(plan_, std::move(items));
  return *this;
}
Query& Query::Select(std::vector<std::string> columns) {
  std::vector<ProjectItem> items;
  items.reserve(columns.size());
  for (auto& c : columns) items.push_back(ProjectItem{Col(c), c});
  return Project(std::move(items));
}
Query& Query::Aggregate(std::vector<std::string> group_by,
                        std::vector<AggSpec> aggs) {
  plan_ = MakeAggregate(plan_, std::move(group_by), std::move(aggs));
  return *this;
}
Query& Query::OrderBy(std::vector<SortKey> keys) {
  plan_ = MakeSort(plan_, std::move(keys));
  return *this;
}
Query& Query::Limit(size_t n, size_t offset) {
  plan_ = MakeLimit(plan_, n, offset);
  return *this;
}
Query& Query::Distinct() {
  plan_ = MakeDistinct(plan_);
  return *this;
}
Query& Query::Join(std::string right_table, std::string left_col,
                   std::string right_col) {
  plan_ = MakeHashJoin(plan_, MakeScan(std::move(right_table)),
                       std::move(left_col), std::move(right_col));
  return *this;
}

util::StatusOr<ResultSet> Query::Run() const {
  return ExecutePlan(plan_, *db_);
}

}  // namespace statsdb
}  // namespace ff
