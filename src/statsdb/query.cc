#include "statsdb/query.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "statsdb/database.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/summary_stats.h"

namespace ff {
namespace statsdb {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kP95:
      return "P95";
  }
  return "?";
}

std::string ResultSet::ToCsv() const {
  std::ostringstream os;
  std::vector<std::string> header;
  for (const auto& c : schema.columns()) header.push_back(c.name);
  util::CsvWriter writer(&os, header);
  for (const auto& row : rows) {
    std::vector<std::string> fields;
    fields.reserve(row.size());
    for (const auto& v : row) fields.push_back(v.ToString());
    writer.WriteRow(fields).ok();
  }
  return os.str();
}

std::string ResultSet::ToPrettyString() const {
  std::vector<size_t> widths(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    widths[i] = schema.column(i).name.size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      r.push_back(row[i].is_null() ? "NULL" : row[i].ToString());
      widths[i] = std::max(widths[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& fields) {
    os << "|";
    for (size_t i = 0; i < fields.size(); ++i) {
      os << " " << fields[i]
         << std::string(widths[i] - fields[i].size(), ' ') << " |";
    }
    os << "\n";
  };
  std::vector<std::string> header;
  for (const auto& c : schema.columns()) header.push_back(c.name);
  emit_row(header);
  os << "|";
  for (size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& r : rendered) emit_row(r);
  return os.str();
}

util::StatusOr<Value> ResultSet::Scalar() const {
  if (rows.size() != 1 || schema.num_columns() != 1) {
    return util::Status::InvalidArgument(util::StrFormat(
        "Scalar() requires 1x1 result, got %zux%zu", rows.size(),
        schema.num_columns()));
  }
  return rows[0][0];
}

util::StatusOr<std::vector<Value>> ResultSet::ColumnValues(
    const std::string& name) const {
  FF_ASSIGN_OR_RETURN(size_t i, schema.IndexOf(name));
  std::vector<Value> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(row[i]);
  return out;
}

namespace {

class ScanNode : public PlanNode {
 public:
  explicit ScanNode(std::string table) : table_(std::move(table)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override {
    FF_ASSIGN_OR_RETURN(const Table* t, db.table(table_));
    return ResultSet{t->schema(), t->rows()};
  }
  std::string ToString() const override { return "Scan(" + table_ + ")"; }

 private:
  std::string table_;
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanPtr input, ExprPtr predicate)
      : input_(std::move(input)), predicate_(std::move(predicate)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override {
    FF_ASSIGN_OR_RETURN(ResultSet in, input_->Execute(db));
    FF_ASSIGN_OR_RETURN(DataType t, predicate_->ResultType(in.schema));
    if (t != DataType::kBool && t != DataType::kNull) {
      return util::Status::InvalidArgument(
          "WHERE predicate must be boolean: " + predicate_->ToString());
    }
    ResultSet out{in.schema, {}};
    for (auto& row : in.rows) {
      FF_ASSIGN_OR_RETURN(Value v, predicate_->Eval(row, in.schema));
      if (!v.is_null() && v.bool_value()) out.rows.push_back(std::move(row));
    }
    return out;
  }
  std::string ToString() const override {
    return "Filter(" + predicate_->ToString() + ", " + input_->ToString() +
           ")";
  }

 private:
  PlanPtr input_;
  ExprPtr predicate_;
};

class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanPtr input, std::vector<ProjectItem> items)
      : input_(std::move(input)), items_(std::move(items)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override {
    FF_ASSIGN_OR_RETURN(ResultSet in, input_->Execute(db));
    std::vector<Column> cols;
    for (const auto& item : items_) {
      FF_ASSIGN_OR_RETURN(DataType t, item.expr->ResultType(in.schema));
      std::string name =
          item.alias.empty() ? item.expr->ToString() : item.alias;
      // NULL-typed output columns (e.g. literal NULL) degrade to string.
      cols.push_back(
          Column{name, t == DataType::kNull ? DataType::kString : t});
    }
    ResultSet out{Schema(std::move(cols)), {}};
    out.rows.reserve(in.rows.size());
    for (const auto& row : in.rows) {
      Row projected;
      projected.reserve(items_.size());
      for (const auto& item : items_) {
        FF_ASSIGN_OR_RETURN(Value v, item.expr->Eval(row, in.schema));
        projected.push_back(std::move(v));
      }
      out.rows.push_back(std::move(projected));
    }
    return out;
  }
  std::string ToString() const override {
    std::vector<std::string> parts;
    for (const auto& item : items_) {
      parts.push_back(item.expr->ToString() +
                      (item.alias.empty() ? "" : " AS " + item.alias));
    }
    return "Project([" + util::Join(parts, ", ") + "], " +
           input_->ToString() + ")";
  }

 private:
  PlanPtr input_;
  std::vector<ProjectItem> items_;
};

// Accumulator for one aggregate within one group.
struct AggState {
  size_t count = 0;
  double sum = 0.0;
  bool sum_is_double = false;
  bool keep_values = false;  // only order statistics (P95) pay for this
  Value min_v;
  Value max_v;
  std::vector<double> values;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.type() == DataType::kInt64 || v.type() == DataType::kDouble) {
      sum += *v.AsDouble();
      if (v.type() == DataType::kDouble) sum_is_double = true;
      if (keep_values) values.push_back(*v.AsDouble());
    }
    if (min_v.is_null() || v.Compare(min_v) < 0) min_v = v;
    if (max_v.is_null() || v.Compare(max_v) > 0) max_v = v;
  }
};

class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanPtr input, std::vector<std::string> group_by,
                std::vector<AggSpec> aggs)
      : input_(std::move(input)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override {
    FF_ASSIGN_OR_RETURN(ResultSet in, input_->Execute(db));

    std::vector<size_t> key_cols;
    for (const auto& g : group_by_) {
      FF_ASSIGN_OR_RETURN(size_t i, in.schema.IndexOf(g));
      key_cols.push_back(i);
    }

    // Output schema: group-by columns, then aggregates.
    std::vector<Column> out_cols;
    for (size_t i : key_cols) out_cols.push_back(in.schema.column(i));
    for (const auto& a : aggs_) {
      DataType t = DataType::kNull;
      switch (a.func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          t = DataType::kInt64;
          break;
        case AggFunc::kAvg:
          t = DataType::kDouble;
          break;
        case AggFunc::kSum: {
          FF_ASSIGN_OR_RETURN(DataType at, a.arg->ResultType(in.schema));
          if (at != DataType::kInt64 && at != DataType::kDouble &&
              at != DataType::kNull) {
            return util::Status::InvalidArgument("SUM requires numeric");
          }
          t = at == DataType::kInt64 ? DataType::kInt64 : DataType::kDouble;
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax: {
          FF_ASSIGN_OR_RETURN(DataType at, a.arg->ResultType(in.schema));
          t = at == DataType::kNull ? DataType::kString : at;
          break;
        }
        case AggFunc::kP95: {
          FF_ASSIGN_OR_RETURN(DataType at, a.arg->ResultType(in.schema));
          if (at != DataType::kInt64 && at != DataType::kDouble &&
              at != DataType::kNull) {
            return util::Status::InvalidArgument("P95 requires numeric");
          }
          t = DataType::kDouble;
          break;
        }
      }
      std::string name = a.alias;
      if (name.empty()) {
        name = a.func == AggFunc::kCountStar
                   ? "count"
                   : util::ToLower(AggFuncName(a.func)) + "_" +
                         a.arg->ToString();
      }
      out_cols.push_back(Column{name, t});
      if (a.func == AggFunc::kAvg) {
        FF_ASSIGN_OR_RETURN(DataType at, a.arg->ResultType(in.schema));
        if (at != DataType::kInt64 && at != DataType::kDouble &&
            at != DataType::kNull) {
          return util::Status::InvalidArgument("AVG requires numeric");
        }
      }
    }

    // Group.
    struct Group {
      Row key;
      std::vector<AggState> states;
    };
    struct KeyHash {
      size_t operator()(const Row& key) const {
        size_t h = 0x9e3779b9;
        for (const auto& v : key) h = h * 1315423911u + v.Hash();
        return h;
      }
    };
    struct KeyEq {
      bool operator()(const Row& a, const Row& b) const {
        if (a.size() != b.size()) return false;
        for (size_t i = 0; i < a.size(); ++i) {
          if (a[i].Compare(b[i]) != 0) return false;
        }
        return true;
      }
    };
    std::unordered_map<Row, size_t, KeyHash, KeyEq> group_index;
    std::vector<Group> groups;

    for (const auto& row : in.rows) {
      Row key;
      key.reserve(key_cols.size());
      for (size_t i : key_cols) key.push_back(row[i]);
      auto [it, inserted] = group_index.try_emplace(key, groups.size());
      if (inserted) {
        groups.push_back(Group{key, NewStates()});
      }
      Group& g = groups[it->second];
      for (size_t a = 0; a < aggs_.size(); ++a) {
        if (aggs_[a].func == AggFunc::kCountStar) {
          ++g.states[a].count;
        } else {
          FF_ASSIGN_OR_RETURN(Value v, aggs_[a].arg->Eval(row, in.schema));
          g.states[a].Add(v);
        }
      }
    }

    // Global aggregate over an empty input still yields one row.
    if (groups.empty() && key_cols.empty()) {
      groups.push_back(Group{{}, NewStates()});
    }

    ResultSet out{Schema(std::move(out_cols)), {}};
    for (const auto& g : groups) {
      Row row = g.key;
      for (size_t a = 0; a < aggs_.size(); ++a) {
        const AggState& st = g.states[a];
        switch (aggs_[a].func) {
          case AggFunc::kCountStar:
          case AggFunc::kCount:
            row.push_back(Value::Int64(static_cast<int64_t>(st.count)));
            break;
          case AggFunc::kSum:
            if (st.count == 0) {
              row.push_back(Value::Null());
            } else if (st.sum_is_double ||
                       out.schema.column(row.size()).type ==
                           DataType::kDouble) {
              row.push_back(Value::Double(st.sum));
            } else {
              row.push_back(
                  Value::Int64(static_cast<int64_t>(st.sum)));
            }
            break;
          case AggFunc::kAvg:
            row.push_back(st.count == 0
                              ? Value::Null()
                              : Value::Double(st.sum /
                                              static_cast<double>(st.count)));
            break;
          case AggFunc::kMin:
            row.push_back(st.min_v);
            break;
          case AggFunc::kMax:
            row.push_back(st.max_v);
            break;
          case AggFunc::kP95: {
            if (st.values.empty()) {
              row.push_back(Value::Null());
              break;
            }
            auto p = util::Percentile(st.values, 95.0);
            row.push_back(p.ok() ? Value::Double(*p) : Value::Null());
            break;
          }
        }
      }
      out.rows.push_back(std::move(row));
    }
    return out;
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    for (const auto& a : aggs_) {
      parts.push_back(std::string(AggFuncName(a.func)) +
                      (a.arg ? "(" + a.arg->ToString() + ")" : ""));
    }
    return "Aggregate(by=[" + util::Join(group_by_, ", ") + "], aggs=[" +
           util::Join(parts, ", ") + "], " + input_->ToString() + ")";
  }

 private:
  // Fresh per-group accumulators; only P95 states buffer raw values.
  std::vector<AggState> NewStates() const {
    std::vector<AggState> states(aggs_.size());
    for (size_t a = 0; a < aggs_.size(); ++a) {
      if (aggs_[a].func == AggFunc::kP95) states[a].keep_values = true;
    }
    return states;
  }

  PlanPtr input_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggs_;
};

class SortNode : public PlanNode {
 public:
  SortNode(PlanPtr input, std::vector<SortKey> keys)
      : input_(std::move(input)), keys_(std::move(keys)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override {
    FF_ASSIGN_OR_RETURN(ResultSet in, input_->Execute(db));
    std::vector<size_t> cols;
    for (const auto& k : keys_) {
      FF_ASSIGN_OR_RETURN(size_t i, in.schema.IndexOf(k.column));
      cols.push_back(i);
    }
    std::stable_sort(in.rows.begin(), in.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t k = 0; k < cols.size(); ++k) {
                         int c = a[cols[k]].Compare(b[cols[k]]);
                         if (c != 0) {
                           return keys_[k].ascending ? c < 0 : c > 0;
                         }
                       }
                       return false;
                     });
    return in;
  }
  std::string ToString() const override {
    std::vector<std::string> parts;
    for (const auto& k : keys_) {
      parts.push_back(k.column + (k.ascending ? " ASC" : " DESC"));
    }
    return "Sort([" + util::Join(parts, ", ") + "], " + input_->ToString() +
           ")";
  }

 private:
  PlanPtr input_;
  std::vector<SortKey> keys_;
};

class LimitNode : public PlanNode {
 public:
  LimitNode(PlanPtr input, size_t limit, size_t offset)
      : input_(std::move(input)), limit_(limit), offset_(offset) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override {
    FF_ASSIGN_OR_RETURN(ResultSet in, input_->Execute(db));
    ResultSet out{in.schema, {}};
    for (size_t i = offset_; i < in.rows.size() && out.rows.size() < limit_;
         ++i) {
      out.rows.push_back(std::move(in.rows[i]));
    }
    return out;
  }
  std::string ToString() const override {
    return util::StrFormat("Limit(%zu, offset=%zu, ", limit_, offset_) +
           input_->ToString() + ")";
  }

 private:
  PlanPtr input_;
  size_t limit_;
  size_t offset_;
};

class DistinctNode : public PlanNode {
 public:
  explicit DistinctNode(PlanPtr input) : input_(std::move(input)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override {
    FF_ASSIGN_OR_RETURN(ResultSet in, input_->Execute(db));
    ResultSet out{in.schema, {}};
    for (auto& row : in.rows) {
      bool dup = false;
      for (const auto& seen : out.rows) {
        bool equal = true;
        for (size_t i = 0; i < row.size(); ++i) {
          if (row[i].Compare(seen[i]) != 0) {
            equal = false;
            break;
          }
        }
        if (equal) {
          dup = true;
          break;
        }
      }
      if (!dup) out.rows.push_back(std::move(row));
    }
    return out;
  }
  std::string ToString() const override {
    return "Distinct(" + input_->ToString() + ")";
  }

 private:
  PlanPtr input_;
};

class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanPtr left, PlanPtr right, std::string left_col,
               std::string right_col)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_col_(std::move(left_col)),
        right_col_(std::move(right_col)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override {
    FF_ASSIGN_OR_RETURN(ResultSet l, left_->Execute(db));
    FF_ASSIGN_OR_RETURN(ResultSet r, right_->Execute(db));
    FF_ASSIGN_OR_RETURN(size_t lc, l.schema.IndexOf(left_col_));
    FF_ASSIGN_OR_RETURN(size_t rc, r.schema.IndexOf(right_col_));

    // Output schema: left columns then right columns; on name clash the
    // right column is suffixed "_r".
    std::vector<Column> cols = l.schema.columns();
    for (const auto& c : r.schema.columns()) {
      std::string name = c.name;
      bool clash = false;
      for (const auto& existing : cols) {
        if (util::EqualsIgnoreCase(existing.name, name)) {
          clash = true;
          break;
        }
      }
      cols.push_back(Column{clash ? name + "_r" : name, c.type});
    }

    struct ValueHash {
      size_t operator()(const Value& v) const { return v.Hash(); }
    };
    struct ValueEq {
      bool operator()(const Value& a, const Value& b) const {
        return a.Compare(b) == 0;
      }
    };
    std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq>
        build;
    for (size_t i = 0; i < r.rows.size(); ++i) {
      if (r.rows[i][rc].is_null()) continue;  // NULL never joins
      build[r.rows[i][rc]].push_back(i);
    }

    ResultSet out{Schema(std::move(cols)), {}};
    for (const auto& lrow : l.rows) {
      if (lrow[lc].is_null()) continue;
      auto it = build.find(lrow[lc]);
      if (it == build.end()) continue;
      for (size_t ri : it->second) {
        Row joined = lrow;
        joined.insert(joined.end(), r.rows[ri].begin(), r.rows[ri].end());
        out.rows.push_back(std::move(joined));
      }
    }
    return out;
  }
  std::string ToString() const override {
    return "HashJoin(" + left_col_ + " = " + right_col_ + ", " +
           left_->ToString() + ", " + right_->ToString() + ")";
  }

 private:
  PlanPtr left_;
  PlanPtr right_;
  std::string left_col_;
  std::string right_col_;
};

}  // namespace

PlanPtr MakeScan(std::string table) {
  return std::make_shared<ScanNode>(std::move(table));
}
PlanPtr MakeFilter(PlanPtr input, ExprPtr predicate) {
  return std::make_shared<FilterNode>(std::move(input),
                                      std::move(predicate));
}
PlanPtr MakeProject(PlanPtr input, std::vector<ProjectItem> items) {
  return std::make_shared<ProjectNode>(std::move(input), std::move(items));
}
PlanPtr MakeAggregate(PlanPtr input, std::vector<std::string> group_by,
                      std::vector<AggSpec> aggs) {
  return std::make_shared<AggregateNode>(std::move(input),
                                         std::move(group_by),
                                         std::move(aggs));
}
PlanPtr MakeSort(PlanPtr input, std::vector<SortKey> keys) {
  return std::make_shared<SortNode>(std::move(input), std::move(keys));
}
PlanPtr MakeLimit(PlanPtr input, size_t limit, size_t offset) {
  return std::make_shared<LimitNode>(std::move(input), limit, offset);
}
PlanPtr MakeDistinct(PlanPtr input) {
  return std::make_shared<DistinctNode>(std::move(input));
}
PlanPtr MakeHashJoin(PlanPtr left, PlanPtr right, std::string left_col,
                     std::string right_col) {
  return std::make_shared<HashJoinNode>(std::move(left), std::move(right),
                                        std::move(left_col),
                                        std::move(right_col));
}

Query::Query(const Database* db, std::string table)
    : db_(db), plan_(MakeScan(std::move(table))) {}

Query& Query::Filter(ExprPtr predicate) {
  plan_ = MakeFilter(plan_, std::move(predicate));
  return *this;
}
Query& Query::Project(std::vector<ProjectItem> items) {
  plan_ = MakeProject(plan_, std::move(items));
  return *this;
}
Query& Query::Select(std::vector<std::string> columns) {
  std::vector<ProjectItem> items;
  items.reserve(columns.size());
  for (auto& c : columns) items.push_back(ProjectItem{Col(c), c});
  return Project(std::move(items));
}
Query& Query::Aggregate(std::vector<std::string> group_by,
                        std::vector<AggSpec> aggs) {
  plan_ = MakeAggregate(plan_, std::move(group_by), std::move(aggs));
  return *this;
}
Query& Query::OrderBy(std::vector<SortKey> keys) {
  plan_ = MakeSort(plan_, std::move(keys));
  return *this;
}
Query& Query::Limit(size_t n, size_t offset) {
  plan_ = MakeLimit(plan_, n, offset);
  return *this;
}
Query& Query::Distinct() {
  plan_ = MakeDistinct(plan_);
  return *this;
}
Query& Query::Join(std::string right_table, std::string left_col,
                   std::string right_col) {
  plan_ = MakeHashJoin(plan_, MakeScan(std::move(right_table)),
                       std::move(left_col), std::move(right_col));
  return *this;
}

util::StatusOr<ResultSet> Query::Run() const { return plan_->Execute(*db_); }

}  // namespace statsdb
}  // namespace ff
