// Concrete plan-node classes, shared between the row-at-a-time reference
// engine (PlanNode::Execute), the predicate-pushdown planner (planner.h),
// and the vectorized executor (exec.h). Members are public so the planner
// can rewrite trees and the executor can dispatch on PlanKind without
// RTTI.

#ifndef FF_STATSDB_PLAN_H_
#define FF_STATSDB_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "statsdb/query.h"

namespace ff {
namespace statsdb {

/// Table scan. The planner may attach a pushed-down predicate (a
/// conjunction evaluated with WHERE semantics), and may annotate one
/// equality conjunct as servable by a hash index. Pushed conjuncts of the
/// shape `column op literal` also drive zone-map chunk pruning in the
/// vectorized executor; the annotations are reflected in ToString().
class ScanNode : public PlanNode {
 public:
  explicit ScanNode(std::string table_in) : table(std::move(table_in)) {}
  ScanNode(std::string table_in, ExprPtr predicate_in,
           std::string index_column_in, Value index_value_in)
      : table(std::move(table_in)),
        predicate(std::move(predicate_in)),
        index_column(std::move(index_column_in)),
        index_value(std::move(index_value_in)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override;
  std::string ToString() const override;
  PlanKind kind() const override { return PlanKind::kScan; }

  std::string table;
  ExprPtr predicate;         // null => unfiltered scan
  std::string index_column;  // empty => no index lookup
  Value index_value;
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanPtr input_in, ExprPtr predicate_in)
      : input(std::move(input_in)), predicate(std::move(predicate_in)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override;
  std::string ToString() const override;
  PlanKind kind() const override { return PlanKind::kFilter; }

  PlanPtr input;
  ExprPtr predicate;
};

class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanPtr input_in, std::vector<ProjectItem> items_in)
      : input(std::move(input_in)), items(std::move(items_in)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override;
  std::string ToString() const override;
  PlanKind kind() const override { return PlanKind::kProject; }

  PlanPtr input;
  std::vector<ProjectItem> items;
};

class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanPtr input_in, std::vector<std::string> group_by_in,
                std::vector<AggSpec> aggs_in)
      : input(std::move(input_in)),
        group_by(std::move(group_by_in)),
        aggs(std::move(aggs_in)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override;
  std::string ToString() const override;
  PlanKind kind() const override { return PlanKind::kAggregate; }

  PlanPtr input;
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggs;
};

class SortNode : public PlanNode {
 public:
  SortNode(PlanPtr input_in, std::vector<SortKey> keys_in,
           size_t limit_hint_in = 0)
      : input(std::move(input_in)),
        keys(std::move(keys_in)),
        limit_hint(limit_hint_in) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override;
  std::string ToString() const override;
  PlanKind kind() const override { return PlanKind::kSort; }

  PlanPtr input;
  std::vector<SortKey> keys;
  /// Planner hint: only the first `limit_hint` rows of the sorted output
  /// are consumed (a Limit above), so the vectorized executor may run a
  /// top-k heap instead of a full sort. 0 means no hint.
  size_t limit_hint;
};

class LimitNode : public PlanNode {
 public:
  LimitNode(PlanPtr input_in, size_t limit_in, size_t offset_in)
      : input(std::move(input_in)), limit(limit_in), offset(offset_in) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override;
  std::string ToString() const override;
  PlanKind kind() const override { return PlanKind::kLimit; }

  PlanPtr input;
  size_t limit;
  size_t offset;
};

class DistinctNode : public PlanNode {
 public:
  explicit DistinctNode(PlanPtr input_in) : input(std::move(input_in)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override;
  std::string ToString() const override;
  PlanKind kind() const override { return PlanKind::kDistinct; }

  PlanPtr input;
};

class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanPtr left_in, PlanPtr right_in, std::string left_col_in,
               std::string right_col_in)
      : left(std::move(left_in)),
        right(std::move(right_in)),
        left_col(std::move(left_col_in)),
        right_col(std::move(right_col_in)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override;
  std::string ToString() const override;
  PlanKind kind() const override { return PlanKind::kHashJoin; }

  PlanPtr left;
  PlanPtr right;
  std::string left_col;
  std::string right_col;
};

/// Leaf node carrying already-computed rows (see PlanKind::kMaterialized).
/// The rows are shared immutably so splicing one into a plan copies
/// nothing.
class MaterializedNode : public PlanNode {
 public:
  MaterializedNode(Schema schema_in,
                   std::shared_ptr<const std::vector<Row>> rows_in)
      : schema(std::move(schema_in)), rows(std::move(rows_in)) {}

  util::StatusOr<ResultSet> Execute(const Database& db) const override;
  std::string ToString() const override;
  PlanKind kind() const override { return PlanKind::kMaterialized; }

  Schema schema;
  std::shared_ptr<const std::vector<Row>> rows;
};

// ------------------------------------------------------- shared helpers
//
// Both engines execute aggregation, join naming, and row hashing through
// these, so their observable results are identical by construction.

/// Accumulator for one aggregate within one group.
struct AggState {
  size_t count = 0;
  double sum = 0.0;
  bool sum_is_double = false;
  bool keep_values = false;  // only order statistics (P95) pay for this
  Value min_v;
  Value max_v;
  std::vector<double> values;

  void Add(const Value& v);
  /// Typed adds for single-typed column vectors; same observable
  /// semantics as Add(Value::Int64(v)) / Add(Value::Double(v)).
  void AddInt64(int64_t v);
  void AddDouble(double v);
};

/// Fresh per-group accumulators; only P95 states buffer raw values.
std::vector<AggState> NewAggStates(const std::vector<AggSpec>& aggs);

/// Resolves group-by columns (appended to *key_cols) and builds the
/// aggregate output schema, validating aggregate argument types.
util::StatusOr<Schema> AggOutputSchema(const Schema& in,
                                       const std::vector<std::string>& group_by,
                                       const std::vector<AggSpec>& aggs,
                                       std::vector<size_t>* key_cols);

/// Finalizes one output row (group key columns then aggregate results).
Row FinalizeAggRow(const Row& key, const std::vector<AggState>& states,
                   const std::vector<AggSpec>& aggs,
                   const Schema& out_schema);

/// Join output schema: left columns then right columns; on (case-
/// insensitive) name clash the right column is suffixed "_r".
Schema JoinOutputSchema(const Schema& l, const Schema& r);

/// Hash/equality over whole rows with Value::Compare semantics (mixed
/// numerics compare equal when numerically equal).
struct RowHash {
  size_t operator()(const Row& key) const {
    size_t h = 0x9e3779b9;
    for (const auto& v : key) h = h * 1315423911u + v.Hash();
    return h;
  }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

/// Output schema of `plan` without executing it (resolves tables through
/// `db`). Errors mirror what execution would report for schema problems.
util::StatusOr<Schema> InferSchema(const PlanNode& plan, const Database& db);

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_PLAN_H_
