// Row-store table with optional hash indexes. Small and simple by design:
// the paper notes the run-statistics database stays small ("tuples for
// each run execution ... rather than for each task execution"), so a
// scan-oriented row store with per-column hash indexes is the right size.

#ifndef FF_STATSDB_TABLE_H_
#define FF_STATSDB_TABLE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "statsdb/schema.h"

namespace ff {
namespace statsdb {

/// A named table: schema + rows + optional per-column hash indexes.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }
  const Row& row(size_t i) const { return rows_[i]; }

  /// Validates, widens int64 into double columns, appends, maintains
  /// indexes.
  util::Status Insert(Row row);

  /// Updates one cell in place (used to patch completion stats of
  /// previously in-flight runs). Maintains indexes.
  util::Status UpdateCell(size_t row_index, size_t col_index, Value v);

  /// Deletes the given rows (indices into rows(), any order, duplicates
  /// ignored); remaining rows keep their relative order. Indexes are
  /// rebuilt. OutOfRange when an index is invalid.
  util::Status DeleteRows(std::vector<size_t> row_indices);

  /// Builds a hash index on `column`; idempotent. NotFound for unknown
  /// columns.
  util::Status CreateIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;

  /// Row indices where `column` == `v` (uses index when present, else
  /// scans). NotFound for unknown columns.
  util::StatusOr<std::vector<size_t>> Lookup(const std::string& column,
                                             const Value& v) const;

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) == 0;
    }
  };
  using HashIndex =
      std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq>;

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::map<size_t, HashIndex> indexes_;  // column index -> hash index
};

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_TABLE_H_
