// Columnar table with optional hash indexes. Storage is column-oriented
// (see column_store.h): contiguous typed vectors, dictionary-encoded
// strings, packed null bitmaps, and per-chunk zone maps — the paper's
// run-statistics workload is scan/aggregate-heavy, and at fleet scale
// (thousands of runs x per-task spans) row-at-a-time scans became the
// bottleneck. The original row-view accessors (`rows()`, `row(i)`) are
// preserved for compatibility and materialize lazily from the columns.

#ifndef FF_STATSDB_TABLE_H_
#define FF_STATSDB_TABLE_H_

#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "statsdb/column_store.h"
#include "statsdb/schema.h"

namespace ff {
namespace statsdb {

/// A named table: schema + columnar storage + optional hash indexes.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return store_.num_rows(); }

  /// Data epoch: advances on every mutation (Insert, UpdateCell,
  /// DeleteRows, each BulkAppender::EndRow). Values are drawn from one
  /// process-wide monotonic counter, so an epoch is never reused — even
  /// across dropping and recreating a table of the same name — which is
  /// what lets the result cache (cache.h) key on (table, epoch) without
  /// an explicit invalidation hook.
  uint64_t epoch() const { return epoch_; }

  /// Structure epoch: advances when planning-relevant structure changes
  /// (currently CreateIndex). Plan-cache entries key on this; data
  /// writes do not disturb cached plans.
  uint64_t ddl_epoch() const { return ddl_epoch_; }

  /// Row views, materialized lazily from the column store. The reference
  /// stays valid until the next mutation (as with the old row store, a
  /// mutation may reallocate).
  const std::vector<Row>& rows() const;
  const Row& row(size_t i) const;

  /// The columnar storage (zone maps guaranteed current on return).
  const ColumnStore& store() const;

  /// Validates, widens int64 into double columns, appends, maintains
  /// indexes.
  util::Status Insert(Row row);

  /// Updates one cell in place (used to patch completion stats of
  /// previously in-flight runs). Maintains indexes.
  util::Status UpdateCell(size_t row_index, size_t col_index, Value v);

  /// Deletes the given rows (indices into rows(), any order, duplicates
  /// ignored); remaining rows keep their relative order. Indexes are
  /// rebuilt. OutOfRange when an index is invalid.
  util::Status DeleteRows(std::vector<size_t> row_indices);

  /// Builds a hash index on `column`; idempotent. NotFound for unknown
  /// columns.
  util::Status CreateIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;

  /// Row indices where `column` == `v` (uses index when present, else
  /// scans the column). NotFound for unknown columns.
  util::StatusOr<std::vector<size_t>> Lookup(const std::string& column,
                                             const Value& v) const;

  /// Bulk columnar ingest: cells are appended directly into the typed
  /// column vectors in schema order, skipping per-row Row/Value
  /// construction. Indexes are updated once in Finish().
  ///
  ///   Table::BulkAppender app(table);
  ///   for (...) {
  ///     app.String(r.forecast).Int64(r.day).Double(r.walltime);
  ///     FF_RETURN_IF_ERROR(app.EndRow());
  ///   }
  ///   FF_RETURN_IF_ERROR(app.Finish());
  class BulkAppender {
   public:
    explicit BulkAppender(Table* table);
    ~BulkAppender();  // calls Finish() if the caller did not

    BulkAppender& Null();
    BulkAppender& Bool(bool v);
    BulkAppender& Int64(int64_t v);
    BulkAppender& Double(double v);
    BulkAppender& String(std::string_view v);
    /// Generic cell append (validates + widens like Insert).
    BulkAppender& Cell(const Value& v);

    /// Commits the current row; InvalidArgument on width/type mismatch
    /// (the offending cells were recorded before the error surfaced, so
    /// the append stops being usable — callers should abort the load).
    util::Status EndRow();

    /// Updates indexes for all appended rows. Idempotent.
    util::Status Finish();

    void Reserve(size_t rows) { table_->store_.Reserve(rows); }

   private:
    Table* table_;
    size_t col_ = 0;
    size_t first_row_;
    util::Status error_ = util::Status::OK();
    bool finished_ = false;
  };

 private:
  friend class BulkAppender;

  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) == 0;
    }
  };
  using HashIndex =
      std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq>;

  /// Extends the lazy row cache to cover all rows.
  void MaterializeRows() const;
  void RebuildIndexes();
  void BumpEpoch();

  std::string name_;
  Schema schema_;
  uint64_t epoch_;
  uint64_t ddl_epoch_;
  ColumnStore store_;
  mutable std::vector<Row> row_cache_;  // first N rows, N <= num_rows()
  std::map<size_t, HashIndex> indexes_;  // column index -> hash index
};

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_TABLE_H_
