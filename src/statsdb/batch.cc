#include "statsdb/batch.h"

#include "util/logging.h"

namespace ff {
namespace statsdb {

Value ColumnVector::GetValue(size_t i) const {
  if (vals != nullptr) return vals[i];
  if (IsNull(i)) return Value::Null();
  switch (type) {
    case DataType::kBool:
      return Value::Bool(b8[i] != 0);
    case DataType::kInt64:
      return Value::Int64(i64[i]);
    case DataType::kDouble:
      return Value::Double(f64[i]);
    case DataType::kString:
      return Value::String(dict->at(codes[i]));
    case DataType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

void ColumnVector::Seal() {
  if (!own_vals.empty()) {
    vals = own_vals.data();
  } else {
    switch (type) {
      case DataType::kBool:
        b8 = own_b8.data();
        break;
      case DataType::kInt64:
        i64 = own_i64.data();
        break;
      case DataType::kDouble:
        f64 = own_f64.data();
        break;
      case DataType::kString:
        codes = own_codes.data();
        if (own_dict) dict = own_dict.get();
        break;
      case DataType::kNull:
        break;
    }
  }
  if (!own_nulls.empty()) null_words = own_nulls.data();
}

ColumnVector ColumnVector::View(const ColumnVector& src) {
  ColumnVector out;
  out.type = src.type;
  out.length = src.length;
  out.b8 = src.b8;
  out.i64 = src.i64;
  out.f64 = src.f64;
  out.codes = src.codes;
  out.dict = src.dict;
  out.vals = src.vals;
  out.null_words = src.null_words;
  out.is_const = src.is_const;
  out.const_val = src.const_val;
  return out;
}

ColumnVector ColumnVector::Constant(const Value& v, size_t n) {
  ColumnVector out;
  out.type = v.type();
  out.length = n;
  out.is_const = true;
  out.const_val = v;
  switch (v.type()) {
    case DataType::kNull:
      if (n > 0) out.own_nulls.assign((n + 63) / 64, ~uint64_t{0});
      break;
    case DataType::kBool:
      out.own_b8.assign(n, v.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64:
      out.own_i64.assign(n, v.int64_value());
      break;
    case DataType::kDouble:
      out.own_f64.assign(n, v.double_value());
      break;
    case DataType::kString: {
      auto dict = std::make_shared<Dictionary>();
      dict->Intern(v.string_value());
      out.own_dict = std::move(dict);
      out.own_codes.assign(n, 0);
      break;
    }
  }
  out.Seal();
  return out;
}

ColumnVector ColumnVector::Gather(const ColumnVector& src,
                                  const uint32_t* sel, size_t n) {
  if (sel == nullptr) return View(src);
  ColumnVector out;
  out.type = src.type;
  out.length = n;
  if (src.vals != nullptr) {
    out.own_vals.reserve(n);
    for (size_t k = 0; k < n; ++k) out.own_vals.push_back(src.vals[sel[k]]);
    out.Seal();
    return out;
  }
  switch (src.type) {
    case DataType::kBool:
      out.own_b8.resize(n);
      for (size_t k = 0; k < n; ++k) out.own_b8[k] = src.b8[sel[k]];
      break;
    case DataType::kInt64:
      out.own_i64.resize(n);
      for (size_t k = 0; k < n; ++k) out.own_i64[k] = src.i64[sel[k]];
      break;
    case DataType::kDouble:
      out.own_f64.resize(n);
      for (size_t k = 0; k < n; ++k) out.own_f64[k] = src.f64[sel[k]];
      break;
    case DataType::kString:
      out.own_codes.resize(n);
      for (size_t k = 0; k < n; ++k) out.own_codes[k] = src.codes[sel[k]];
      out.dict = src.dict;  // borrowed; caller keeps the source alive
      break;
    case DataType::kNull:
      break;
  }
  if (src.null_words != nullptr) {
    for (size_t k = 0; k < n; ++k) {
      if (src.IsNull(sel[k])) out.SetNull(k);
    }
  }
  out.Seal();
  return out;
}

Row Batch::MaterializeRow(size_t row, size_t width) const {
  if (row_mode) return RowData()[row];
  Row out;
  out.reserve(width);
  for (size_t c = 0; c < width; ++c) out.push_back(cols[c].GetValue(row));
  return out;
}

Batch Batch::ViewOf(const Batch& src) {
  Batch out;
  out.num_rows = src.num_rows;
  out.row_mode = src.row_mode;
  if (src.row_mode) {
    out.ext_rows = &src.RowData();
  } else {
    out.cols.reserve(src.cols.size());
    for (const auto& c : src.cols) out.cols.push_back(ColumnVector::View(c));
  }
  return out;
}

}  // namespace statsdb
}  // namespace ff
