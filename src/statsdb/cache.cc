#include "statsdb/cache.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <limits>
#include <mutex>

#include "statsdb/database.h"
#include "statsdb/expr.h"
#include "statsdb/plan.h"
#include "statsdb/table.h"

namespace ff {
namespace statsdb {
namespace {

// Tag namespaces keep plan kinds, expr kinds, and value types from
// aliasing each other in the fingerprint byte stream.
constexpr uint8_t kPlanTag = 0xA0;
constexpr uint8_t kValueTag = 0xC0;
constexpr uint8_t kExprTag = 0xE0;

void FpValue(const Value& v, DualFingerprint* fp) {
  fp->U8(kValueTag + static_cast<uint8_t>(v.type()));
  if (v.is_null()) return;
  switch (v.type()) {
    case DataType::kBool:
      fp->U8(v.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64:
      fp->U64(static_cast<uint64_t>(v.int64_value()));
      break;
    case DataType::kDouble:
      // Raw bit pattern, not a decimal rendering: two doubles that
      // print alike must not share a fingerprint.
      fp->U64(std::bit_cast<uint64_t>(v.double_value()));
      break;
    case DataType::kString:
      fp->Str(v.string_value());
      break;
    case DataType::kNull:
      break;
  }
}

/// Returns false when the expression cannot be fingerprinted (an
/// unbound parameter has no value yet).
bool FpExpr(const Expr& e, DualFingerprint* fp) {
  fp->U8(kExprTag + static_cast<uint8_t>(e.kind()));
  switch (e.kind()) {
    case Expr::Kind::kLiteral:
      FpValue(*e.literal(), fp);
      return true;
    case Expr::Kind::kParam: {
      // A bound parameter fingerprints as its value: two bindings of
      // the same prepared statement get distinct result-cache entries.
      const Value* bound = e.literal();
      if (bound == nullptr) return false;
      FpValue(*bound, fp);
      return true;
    }
    case Expr::Kind::kColumn:
      fp->Str(*e.column());
      return true;
    case Expr::Kind::kUnary:
      fp->U8(static_cast<uint8_t>(e.unary_op()));
      return FpExpr(*e.child(0), fp);
    case Expr::Kind::kBinary:
      fp->U8(static_cast<uint8_t>(e.binary_op()));
      return FpExpr(*e.child(0), fp) && FpExpr(*e.child(1), fp);
  }
  return false;
}

bool FpOptionalExpr(const ExprPtr& e, DualFingerprint* fp) {
  fp->U8(e == nullptr ? 0 : 1);
  return e == nullptr || FpExpr(*e, fp);
}

/// Structural fingerprint walk; collects referenced table names into
/// *tables (with duplicates). Returns false for uncacheable plans:
/// MaterializedNode leaves (their rows have no stable identity) and
/// unbound parameters.
bool FpPlan(const PlanNode& plan, DualFingerprint* fp,
            std::vector<std::string>* tables) {
  fp->U8(kPlanTag + static_cast<uint8_t>(plan.kind()));
  switch (plan.kind()) {
    case PlanKind::kScan: {
      const auto& n = static_cast<const ScanNode&>(plan);
      tables->push_back(n.table);
      fp->Str(n.table);
      fp->Str(n.index_column);
      FpValue(n.index_value, fp);
      return FpOptionalExpr(n.predicate, fp);
    }
    case PlanKind::kFilter: {
      const auto& n = static_cast<const FilterNode&>(plan);
      return FpOptionalExpr(n.predicate, fp) && FpPlan(*n.input, fp, tables);
    }
    case PlanKind::kProject: {
      const auto& n = static_cast<const ProjectNode&>(plan);
      fp->U64(n.items.size());
      for (const auto& item : n.items) {
        fp->Str(item.alias);
        if (!FpExpr(*item.expr, fp)) return false;
      }
      return FpPlan(*n.input, fp, tables);
    }
    case PlanKind::kAggregate: {
      const auto& n = static_cast<const AggregateNode&>(plan);
      fp->U64(n.group_by.size());
      for (const auto& g : n.group_by) fp->Str(g);
      fp->U64(n.aggs.size());
      for (const auto& a : n.aggs) {
        fp->U8(static_cast<uint8_t>(a.func));
        fp->Str(a.alias);
        if (!FpOptionalExpr(a.arg, fp)) return false;
      }
      return FpPlan(*n.input, fp, tables);
    }
    case PlanKind::kSort: {
      const auto& n = static_cast<const SortNode&>(plan);
      fp->U64(n.keys.size());
      for (const auto& k : n.keys) {
        fp->Str(k.column);
        fp->U8(k.ascending ? 1 : 0);
      }
      fp->U64(n.limit_hint);
      return FpPlan(*n.input, fp, tables);
    }
    case PlanKind::kLimit: {
      const auto& n = static_cast<const LimitNode&>(plan);
      fp->U64(n.limit);
      fp->U64(n.offset);
      return FpPlan(*n.input, fp, tables);
    }
    case PlanKind::kDistinct: {
      const auto& n = static_cast<const DistinctNode&>(plan);
      return FpPlan(*n.input, fp, tables);
    }
    case PlanKind::kHashJoin: {
      const auto& n = static_cast<const HashJoinNode&>(plan);
      fp->Str(n.left_col);
      fp->Str(n.right_col);
      return FpPlan(*n.left, fp, tables) && FpPlan(*n.right, fp, tables);
    }
    case PlanKind::kMaterialized:
      return false;
  }
  return false;
}

void SortUnique(std::vector<std::string>* names) {
  std::sort(names->begin(), names->end());
  names->erase(std::unique(names->begin(), names->end()), names->end());
}

}  // namespace

CacheConfig CacheConfig::FromEnv() {
  CacheConfig cfg;
  const char* env = std::getenv("FF_STATSDB_CACHE");
  if (env == nullptr || *env == '\0') return cfg;
  std::string v(env);
  std::vector<std::string> fields;
  for (size_t pos = 0; pos != std::string::npos;) {
    size_t colon = v.find(':', pos);
    fields.push_back(v.substr(
        pos, colon == std::string::npos ? std::string::npos : colon - pos));
    pos = colon == std::string::npos ? colon : colon + 1;
  }
  const std::string& mode = fields[0];
  if (mode == "plan") {
    cfg.mode = Mode::kPlanOnly;
  } else if (mode == "full" || mode == "on" || mode == "1" ||
             mode == "true") {
    cfg.mode = Mode::kFull;
  }  // "off"/"0"/"false"/unknown stay at the kOff default
  auto parse = [](const std::string& field, size_t* out) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(field.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      *out = static_cast<size_t>(parsed);
    }
  };
  if (fields.size() > 1) parse(fields[1], &cfg.result_entries);
  if (fields.size() > 2) parse(fields[2], &cfg.result_bytes);
  return cfg;
}

// ------------------------------------------------------- DualFingerprint

DualFingerprint::DualFingerprint() {
  // Diverge the secondary stream's state so the two digests are
  // independent functions of the same token sequence.
  b_.U64(0x9e3779b97f4a7c15ULL);
}

DualFingerprint& DualFingerprint::U8(uint8_t v) {
  a_.U8(v);
  b_.U8(v);
  return *this;
}

DualFingerprint& DualFingerprint::U64(uint64_t v) {
  a_.U64(v);
  b_.U64(v);
  return *this;
}

DualFingerprint& DualFingerprint::Str(std::string_view s) {
  a_.Str(s);
  b_.Str(s);
  return *this;
}

// ----------------------------------------------------------- QueryCache

size_t EstimateResultBytes(const ResultSet& rs) {
  size_t bytes = sizeof(ResultSet);
  for (size_t c = 0; c < rs.schema.num_columns(); ++c) {
    bytes += sizeof(Column) + rs.schema.column(c).name.size();
  }
  bytes += rs.rows.capacity() * sizeof(Row);
  for (const auto& row : rs.rows) {
    bytes += row.capacity() * sizeof(Value);
    for (const auto& v : row) {
      if (!v.is_null() && v.type() == DataType::kString) {
        bytes += v.string_value().size();
      }
    }
  }
  return bytes;
}

QueryCache::QueryCache(CacheConfig config) : config_(std::move(config)) {}

CacheConfig QueryCache::config() const {
  std::shared_lock lock(mu_);
  return config_;
}

void QueryCache::set_config(CacheConfig config) {
  std::unique_lock lock(mu_);
  config_ = std::move(config);
  EvictPlansLocked();
  EvictResultsLocked();
}

void QueryCache::Clear() {
  std::unique_lock lock(mu_);
  plans_.clear();
  results_.clear();
  result_bytes_total_ = 0;
}

PlanPtr QueryCache::GetPlan(const Key& key, const Database& db) {
  std::shared_lock lock(mu_);
  auto it = plans_.find(key.fp);
  if (it == plans_.end() || it->second.check != key.check) {
    plan_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  PlanEntry& entry = it->second;
  bool valid = entry.catalog_epoch == db.catalog_epoch();
  for (const auto& [name, ddl] : entry.ddl_epochs) {
    if (!valid) break;
    auto table = db.table(name);
    valid = table.ok() && (*table)->ddl_epoch() == ddl;
  }
  if (!valid) {
    // Stale: DDL since planning. Report a miss; the re-plan's PutPlan
    // overwrites this entry (same fingerprint), so no erase here and
    // the shared lock suffices.
    plan_invalidations_.fetch_add(1, std::memory_order_relaxed);
    plan_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  entry.last_used.store(Touch(), std::memory_order_relaxed);
  plan_hits_.fetch_add(1, std::memory_order_relaxed);
  return entry.plan;
}

void QueryCache::PutPlan(const Key& key, const Database& db,
                         const PlanPtr& optimized) {
  if (optimized == nullptr) return;
  std::vector<std::string> tables;
  {
    DualFingerprint ignored;
    FpPlan(*optimized, &ignored, &tables);
  }
  SortUnique(&tables);
  EpochVector ddl_epochs;
  ddl_epochs.reserve(tables.size());
  for (const auto& name : tables) {
    auto table = db.table(name);
    ddl_epochs.emplace_back(name, table.ok() ? (*table)->ddl_epoch() : 0);
  }
  std::unique_lock lock(mu_);
  if (config_.plan_entries == 0) return;
  plans_.erase(key.fp);
  plans_.try_emplace(key.fp, key.check, db.catalog_epoch(),
                     std::move(ddl_epochs), optimized, Touch());
  EvictPlansLocked();
}

void QueryCache::RecordPlanBypass() {
  plan_bypasses_.fetch_add(1, std::memory_order_relaxed);
}

QueryCache::ResultKey QueryCache::MakeResultKey(const PlanNode& plan,
                                                const Database& db) {
  ResultKey key;
  DualFingerprint fp;
  std::vector<std::string> tables;
  if (!FpPlan(plan, &fp, &tables)) return key;  // uncacheable
  SortUnique(&tables);
  key.epochs.reserve(tables.size());
  for (const auto& name : tables) {
    auto table = db.table(name);
    // A missing table errors at execution; errors are never cached.
    if (!table.ok()) return key;
    key.epochs.emplace_back(name, (*table)->epoch());
  }
  key.key.fp = fp.fp();
  key.key.check = fp.check();
  key.cacheable = true;
  return key;
}

std::shared_ptr<const ResultSet> QueryCache::GetResult(const ResultKey& key) {
  std::shared_lock lock(mu_);
  auto it = results_.find(key.key.fp);
  if (it == results_.end() || it->second.check != key.key.check) {
    result_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  ResultEntry& entry = it->second;
  if (entry.epochs != key.epochs) {
    // A referenced table was written since the store: implicit
    // invalidation. The re-execution's PutResult overwrites the entry.
    result_invalidations_.fetch_add(1, std::memory_order_relaxed);
    result_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  entry.last_used.store(Touch(), std::memory_order_relaxed);
  result_hits_.fetch_add(1, std::memory_order_relaxed);
  return entry.result;
}

void QueryCache::PutResult(const ResultKey& key, const ResultSet& result) {
  if (!key.cacheable) return;
  size_t bytes = EstimateResultBytes(result);
  std::unique_lock lock(mu_);
  if (config_.result_entries == 0 || bytes > config_.result_bytes) return;
  auto it = results_.find(key.key.fp);
  if (it != results_.end()) {
    result_bytes_total_ -= it->second.bytes;
    results_.erase(it);
  }
  results_.try_emplace(key.key.fp, key.key.check, key.epochs,
                       std::make_shared<const ResultSet>(result), bytes,
                       Touch());
  result_bytes_total_ += bytes;
  EvictResultsLocked();
}

void QueryCache::RecordResultBypass() {
  result_bypasses_.fetch_add(1, std::memory_order_relaxed);
}

void QueryCache::EvictPlansLocked() {
  while (!plans_.empty() && plans_.size() > config_.plan_entries) {
    auto victim = plans_.begin();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (auto it = plans_.begin(); it != plans_.end(); ++it) {
      uint64_t used = it->second.last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = it;
      }
    }
    plans_.erase(victim);
    plan_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryCache::EvictResultsLocked() {
  while (!results_.empty() && (results_.size() > config_.result_entries ||
                               result_bytes_total_ > config_.result_bytes)) {
    auto victim = results_.begin();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (auto it = results_.begin(); it != results_.end(); ++it) {
      uint64_t used = it->second.last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = it;
      }
    }
    result_bytes_total_ -= victim->second.bytes;
    results_.erase(victim);
    result_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

QueryCacheStats QueryCache::Stats() const {
  QueryCacheStats s;
  s.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  s.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  s.plan_bypasses = plan_bypasses_.load(std::memory_order_relaxed);
  s.plan_invalidations = plan_invalidations_.load(std::memory_order_relaxed);
  s.plan_evictions = plan_evictions_.load(std::memory_order_relaxed);
  s.result_hits = result_hits_.load(std::memory_order_relaxed);
  s.result_misses = result_misses_.load(std::memory_order_relaxed);
  s.result_bypasses = result_bypasses_.load(std::memory_order_relaxed);
  s.result_invalidations =
      result_invalidations_.load(std::memory_order_relaxed);
  s.result_evictions = result_evictions_.load(std::memory_order_relaxed);
  std::shared_lock lock(mu_);
  s.plan_entries = plans_.size();
  s.result_entries = results_.size();
  s.result_bytes = result_bytes_total_;
  return s;
}

}  // namespace statsdb
}  // namespace ff
