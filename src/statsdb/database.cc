#include "statsdb/database.h"

#include "parallel/thread_pool.h"
#include "statsdb/sql.h"

namespace ff {
namespace statsdb {

Database::Database()
    : parallel_config_(ParallelConfig::FromEnv()),
      cache_(std::make_unique<QueryCache>(CacheConfig::FromEnv())) {}

Database::~Database() = default;

parallel::ThreadPool* Database::parallel_pool(size_t threads) const {
  if (query_pool_ == nullptr || query_pool_->num_threads() != threads) {
    query_pool_ = std::make_unique<parallel::ThreadPool>(threads);
  }
  return query_pool_.get();
}

util::StatusOr<Table*> Database::CreateTable(const std::string& name,
                                             Schema schema) {
  if (name.empty()) {
    return util::Status::InvalidArgument("empty table name");
  }
  if (tables_.count(name)) {
    return util::Status::AlreadyExists("table " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  ++catalog_epoch_;
  return ptr;
}

util::Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return util::Status::NotFound("table " + name);
  }
  ++catalog_epoch_;
  return util::Status::OK();
}

util::StatusOr<Table*> Database::table(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return util::Status::NotFound("table " + name);
  return it->second.get();
}

util::StatusOr<const Table*> Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return util::Status::NotFound("table " + name);
  return static_cast<const Table*>(it->second.get());
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

util::StatusOr<ResultSet> Database::Sql(const std::string& statement) {
  return ExecuteSql(this, statement);
}

util::StatusOr<PreparedStatement> Database::Prepare(
    const std::string& statement) {
  return PrepareSql(this, statement);
}

}  // namespace statsdb
}  // namespace ff
