// Logical query plans and a materializing executor, plus a fluent builder.
//
// The engine is deliberately scan-oriented: the paper observes the run
// statistics database stays small (one tuple per run-day), so plans
// materialize intermediate results instead of streaming.

#ifndef FF_STATSDB_QUERY_H_
#define FF_STATSDB_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "statsdb/expr.h"
#include "statsdb/schema.h"

namespace ff {
namespace statsdb {

class Database;

/// Materialized query result.
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;

  /// CSV with header.
  std::string ToCsv() const;
  /// Fixed-width human-readable table.
  std::string ToPrettyString() const;
  /// Single scalar convenience: requires exactly one row and one column.
  util::StatusOr<Value> Scalar() const;
  /// Values of one column by name.
  util::StatusOr<std::vector<Value>> ColumnValues(
      const std::string& name) const;
};

/// Aggregate functions supported by AggregateNode.
enum class AggFunc {
  kCountStar,
  kCount,  // non-null count of arg
  kSum,
  kAvg,
  kMin,
  kMax,
  kP95,  // 95th percentile of a numeric column (telemetry analytics)
};

const char* AggFuncName(AggFunc f);

/// One aggregate computation in an aggregate node.
struct AggSpec {
  AggFunc func;
  ExprPtr arg;        // null for kCountStar
  std::string alias;  // output column name
};

/// One projected output column.
struct ProjectItem {
  ExprPtr expr;
  std::string alias;  // empty -> derived from expr
};

/// Sort key.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// Concrete node types, used by the planner and the vectorized executor
/// to dispatch without RTTI (see plan.h for the node classes).
enum class PlanKind {
  kScan,
  kFilter,
  kProject,
  kAggregate,
  kSort,
  kLimit,
  kDistinct,
  kHashJoin,
  // Pre-computed rows injected by the parallel executor (parallel_exec.h):
  // a parallel-executed subtree's merged result, spliced back into the
  // plan so the remaining serial operators run unchanged above it. Never
  // produced by the SQL front end or the planner.
  kMaterialized,
};

/// Base class of logical plan nodes. Execute is the row-at-a-time
/// reference engine (materializes whole intermediates); production
/// queries run through ExecutePlan (exec.h), which optimizes the plan and
/// streams column batches.
class PlanNode {
 public:
  virtual ~PlanNode() = default;
  virtual util::StatusOr<ResultSet> Execute(const Database& db) const = 0;
  virtual std::string ToString() const = 0;
  virtual PlanKind kind() const = 0;
};

using PlanPtr = std::shared_ptr<const PlanNode>;

/// Node constructors.
PlanPtr MakeScan(std::string table);
PlanPtr MakeFilter(PlanPtr input, ExprPtr predicate);
PlanPtr MakeProject(PlanPtr input, std::vector<ProjectItem> items);
PlanPtr MakeAggregate(PlanPtr input, std::vector<std::string> group_by,
                      std::vector<AggSpec> aggs);
PlanPtr MakeSort(PlanPtr input, std::vector<SortKey> keys);
PlanPtr MakeLimit(PlanPtr input, size_t limit, size_t offset = 0);
PlanPtr MakeDistinct(PlanPtr input);
/// Inner equi-join; output columns are left's then right's, with ambiguous
/// names prefixed by their side's table alias ("left."/"right." when the
/// sides are anonymous plans).
PlanPtr MakeHashJoin(PlanPtr left, PlanPtr right, std::string left_col,
                     std::string right_col);

/// Fluent builder over a Database table.
///
///   auto rs = Query(db, "runs")
///                 .Filter(Eq(Col("code_version"), LitString("v3.2")))
///                 .Aggregate({"forecast"}, {{AggFunc::kAvg,
///                                            Col("walltime"), "avg_wt"}})
///                 .OrderBy({{"avg_wt", false}})
///                 .Run();
class Query {
 public:
  Query(const Database* db, std::string table);

  Query& Filter(ExprPtr predicate);
  Query& Project(std::vector<ProjectItem> items);
  Query& Select(std::vector<std::string> columns);  // name-only projection
  Query& Aggregate(std::vector<std::string> group_by,
                   std::vector<AggSpec> aggs);
  Query& OrderBy(std::vector<SortKey> keys);
  Query& Limit(size_t n, size_t offset = 0);
  Query& Distinct();
  Query& Join(std::string right_table, std::string left_col,
              std::string right_col);

  util::StatusOr<ResultSet> Run() const;
  PlanPtr plan() const { return plan_; }

 private:
  const Database* db_;
  PlanPtr plan_;
};

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_QUERY_H_
