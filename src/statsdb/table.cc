#include "statsdb/table.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

#include <atomic>

namespace ff {
namespace statsdb {

namespace {

/// One process-wide counter feeds every table's epochs so a value is
/// never reused, even across drop/recreate of the same table name.
uint64_t NextGlobalEpoch() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      epoch_(NextGlobalEpoch()),
      ddl_epoch_(NextGlobalEpoch()),
      store_(&schema_) {}

void Table::BumpEpoch() { epoch_ = NextGlobalEpoch(); }

void Table::MaterializeRows() const {
  size_t n = store_.num_rows();
  size_t width = schema_.num_columns();
  row_cache_.reserve(n);
  for (size_t i = row_cache_.size(); i < n; ++i) {
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) row.push_back(store_.GetValue(i, c));
    row_cache_.push_back(std::move(row));
  }
}

const std::vector<Row>& Table::rows() const {
  MaterializeRows();
  return row_cache_;
}

const Row& Table::row(size_t i) const {
  MaterializeRows();
  return row_cache_[i];
}

const ColumnStore& Table::store() const {
  store_.EnsureScanReady();
  return store_;
}

util::Status Table::Insert(Row row) {
  FF_RETURN_IF_ERROR(ValidateRow(schema_, row).WithContext(name_));
  // Widen int64 values stored into double columns so the storage type is
  // uniform per column.
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && schema_.column(i).type == DataType::kDouble &&
        row[i].type() == DataType::kInt64) {
      row[i] = Value::Double(static_cast<double>(row[i].int64_value()));
    }
  }
  size_t row_index = store_.num_rows();
  for (auto& [col, index] : indexes_) {
    index[row[col]].push_back(row_index);
  }
  store_.Append(row);
  // Keep a fully-materialized row cache warm instead of throwing it away.
  if (row_cache_.size() == row_index) row_cache_.push_back(std::move(row));
  BumpEpoch();
  return util::Status::OK();
}

util::Status Table::UpdateCell(size_t row_index, size_t col_index, Value v) {
  if (row_index >= store_.num_rows()) {
    return util::Status::OutOfRange("row index " + std::to_string(row_index));
  }
  if (col_index >= schema_.num_columns()) {
    return util::Status::OutOfRange("column index " +
                                    std::to_string(col_index));
  }
  if (!v.is_null()) {
    DataType want = schema_.column(col_index).type;
    if (v.type() == DataType::kInt64 && want == DataType::kDouble) {
      v = Value::Double(static_cast<double>(v.int64_value()));
    } else if (v.type() != want) {
      return util::Status::InvalidArgument(
          std::string("type mismatch updating column ") +
          schema_.column(col_index).name);
    }
  }
  auto idx_it = indexes_.find(col_index);
  if (idx_it != indexes_.end()) {
    auto& index = idx_it->second;
    auto& old_bucket = index[store_.GetValue(row_index, col_index)];
    old_bucket.erase(
        std::remove(old_bucket.begin(), old_bucket.end(), row_index),
        old_bucket.end());
    index[v].push_back(row_index);
  }
  if (row_index < row_cache_.size()) {
    row_cache_[row_index][col_index] = v;
  }
  store_.Set(row_index, col_index, v);
  BumpEpoch();
  return util::Status::OK();
}

util::Status Table::DeleteRows(std::vector<size_t> row_indices) {
  std::sort(row_indices.begin(), row_indices.end());
  row_indices.erase(
      std::unique(row_indices.begin(), row_indices.end()),
      row_indices.end());
  if (!row_indices.empty() && row_indices.back() >= store_.num_rows()) {
    return util::Status::OutOfRange(
        "row index " + std::to_string(row_indices.back()));
  }
  MaterializeRows();
  // Erase from the back so earlier indices stay valid.
  for (auto it = row_indices.rbegin(); it != row_indices.rend(); ++it) {
    row_cache_.erase(row_cache_.begin() + static_cast<ptrdiff_t>(*it));
  }
  store_.Rebuild(row_cache_);
  RebuildIndexes();
  if (!row_indices.empty()) BumpEpoch();
  return util::Status::OK();
}

void Table::RebuildIndexes() {
  for (auto& [col, index] : indexes_) {
    index.clear();
    for (size_t i = 0; i < store_.num_rows(); ++i) {
      index[store_.GetValue(i, col)].push_back(i);
    }
  }
}

util::Status Table::CreateIndex(const std::string& column) {
  FF_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  if (indexes_.count(col)) return util::Status::OK();
  HashIndex index;
  for (size_t i = 0; i < store_.num_rows(); ++i) {
    index[store_.GetValue(i, col)].push_back(i);
  }
  indexes_.emplace(col, std::move(index));
  ddl_epoch_ = NextGlobalEpoch();
  return util::Status::OK();
}

bool Table::HasIndex(const std::string& column) const {
  auto col = schema_.IndexOf(column);
  return col.ok() && indexes_.count(*col) > 0;
}

util::StatusOr<std::vector<size_t>> Table::Lookup(const std::string& column,
                                                  const Value& v) const {
  FF_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  auto idx_it = indexes_.find(col);
  if (idx_it != indexes_.end()) {
    auto bucket = idx_it->second.find(v);
    if (bucket == idx_it->second.end()) return std::vector<size_t>{};
    std::vector<size_t> sorted = bucket->second;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }
  std::vector<size_t> out;
  for (size_t i = 0; i < store_.num_rows(); ++i) {
    if (store_.GetValue(i, col).Compare(v) == 0) out.push_back(i);
  }
  return out;
}

// ------------------------------------------------------------ BulkAppender

Table::BulkAppender::BulkAppender(Table* table)
    : table_(table), first_row_(table->store_.num_rows()) {}

Table::BulkAppender::~BulkAppender() {
  if (!finished_) Finish().ok();
}

Table::BulkAppender& Table::BulkAppender::Null() {
  if (!error_.ok()) return *this;
  if (col_ >= table_->schema_.num_columns()) {
    error_ = util::Status::InvalidArgument("row wider than schema");
    return *this;
  }
  table_->store_.AppendNull(col_++);
  return *this;
}

Table::BulkAppender& Table::BulkAppender::Cell(const Value& v) {
  if (!error_.ok()) return *this;
  if (v.is_null()) return Null();
  switch (v.type()) {
    case DataType::kBool:
      return Bool(v.bool_value());
    case DataType::kInt64:
      return Int64(v.int64_value());
    case DataType::kDouble:
      return Double(v.double_value());
    case DataType::kString:
      return String(v.string_value());
    case DataType::kNull:
      return Null();
  }
  return *this;
}

#define FF_BULK_CHECK_(want_ok)                                           \
  if (!error_.ok()) return *this;                                         \
  if (col_ >= table_->schema_.num_columns()) {                            \
    error_ = util::Status::InvalidArgument("row wider than schema");      \
    return *this;                                                         \
  }                                                                       \
  DataType want = table_->schema_.column(col_).type;                      \
  if (!(want_ok)) {                                                       \
    error_ = util::Status::InvalidArgument(                               \
        "type mismatch appending column " +                               \
        table_->schema_.column(col_).name);                               \
    return *this;                                                         \
  }

Table::BulkAppender& Table::BulkAppender::Bool(bool v) {
  FF_BULK_CHECK_(want == DataType::kBool);
  table_->store_.AppendBool(col_++, v);
  return *this;
}

Table::BulkAppender& Table::BulkAppender::Int64(int64_t v) {
  FF_BULK_CHECK_(want == DataType::kInt64 || want == DataType::kDouble);
  table_->store_.AppendInt64(col_++, v);  // widens into double columns
  return *this;
}

Table::BulkAppender& Table::BulkAppender::Double(double v) {
  FF_BULK_CHECK_(want == DataType::kDouble);
  table_->store_.AppendDouble(col_++, v);
  return *this;
}

Table::BulkAppender& Table::BulkAppender::String(std::string_view v) {
  FF_BULK_CHECK_(want == DataType::kString);
  table_->store_.AppendString(col_++, v);
  return *this;
}

#undef FF_BULK_CHECK_

util::Status Table::BulkAppender::EndRow() {
  if (!error_.ok()) return error_;
  if (col_ != table_->schema_.num_columns()) {
    error_ = util::Status::InvalidArgument(util::StrFormat(
        "row width %zu != schema width %zu", col_,
        table_->schema_.num_columns()));
    return error_;
  }
  table_->store_.EndRow();
  // Bump per committed row, not in Finish(): rows are scan-visible as
  // soon as EndRow returns, so the epoch must already reflect them.
  table_->BumpEpoch();
  col_ = 0;
  return util::Status::OK();
}

util::Status Table::BulkAppender::Finish() {
  if (finished_) return error_;
  finished_ = true;
  if (!error_.ok()) return error_;
  if (col_ != 0) {
    error_ = util::Status::InvalidArgument("Finish() mid-row");
    return error_;
  }
  for (auto& [col, index] : table_->indexes_) {
    for (size_t i = first_row_; i < table_->store_.num_rows(); ++i) {
      index[table_->store_.GetValue(i, col)].push_back(i);
    }
  }
  return util::Status::OK();
}

}  // namespace statsdb
}  // namespace ff
