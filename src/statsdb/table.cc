#include "statsdb/table.h"

#include <algorithm>

#include "util/logging.h"

namespace ff {
namespace statsdb {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

util::Status Table::Insert(Row row) {
  FF_RETURN_NOT_OK(ValidateRow(schema_, row).WithContext(name_));
  // Widen int64 values stored into double columns so the storage type is
  // uniform per column.
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && schema_.column(i).type == DataType::kDouble &&
        row[i].type() == DataType::kInt64) {
      row[i] = Value::Double(static_cast<double>(row[i].int64_value()));
    }
  }
  size_t row_index = rows_.size();
  for (auto& [col, index] : indexes_) {
    index[row[col]].push_back(row_index);
  }
  rows_.push_back(std::move(row));
  return util::Status::OK();
}

util::Status Table::UpdateCell(size_t row_index, size_t col_index, Value v) {
  if (row_index >= rows_.size()) {
    return util::Status::OutOfRange("row index " + std::to_string(row_index));
  }
  if (col_index >= schema_.num_columns()) {
    return util::Status::OutOfRange("column index " +
                                    std::to_string(col_index));
  }
  if (!v.is_null()) {
    DataType want = schema_.column(col_index).type;
    if (v.type() == DataType::kInt64 && want == DataType::kDouble) {
      v = Value::Double(static_cast<double>(v.int64_value()));
    } else if (v.type() != want) {
      return util::Status::InvalidArgument(
          std::string("type mismatch updating column ") +
          schema_.column(col_index).name);
    }
  }
  auto idx_it = indexes_.find(col_index);
  if (idx_it != indexes_.end()) {
    auto& index = idx_it->second;
    auto& old_bucket = index[rows_[row_index][col_index]];
    old_bucket.erase(
        std::remove(old_bucket.begin(), old_bucket.end(), row_index),
        old_bucket.end());
    index[v].push_back(row_index);
  }
  rows_[row_index][col_index] = std::move(v);
  return util::Status::OK();
}

util::Status Table::DeleteRows(std::vector<size_t> row_indices) {
  std::sort(row_indices.begin(), row_indices.end());
  row_indices.erase(
      std::unique(row_indices.begin(), row_indices.end()),
      row_indices.end());
  if (!row_indices.empty() && row_indices.back() >= rows_.size()) {
    return util::Status::OutOfRange(
        "row index " + std::to_string(row_indices.back()));
  }
  // Erase from the back so earlier indices stay valid.
  for (auto it = row_indices.rbegin(); it != row_indices.rend(); ++it) {
    rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(*it));
  }
  // Row indices shifted; rebuild every index.
  for (auto& [col, index] : indexes_) {
    index.clear();
    for (size_t i = 0; i < rows_.size(); ++i) {
      index[rows_[i][col]].push_back(i);
    }
  }
  return util::Status::OK();
}

util::Status Table::CreateIndex(const std::string& column) {
  FF_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  if (indexes_.count(col)) return util::Status::OK();
  HashIndex index;
  for (size_t i = 0; i < rows_.size(); ++i) {
    index[rows_[i][col]].push_back(i);
  }
  indexes_.emplace(col, std::move(index));
  return util::Status::OK();
}

bool Table::HasIndex(const std::string& column) const {
  auto col = schema_.IndexOf(column);
  return col.ok() && indexes_.count(*col) > 0;
}

util::StatusOr<std::vector<size_t>> Table::Lookup(const std::string& column,
                                                  const Value& v) const {
  FF_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(column));
  auto idx_it = indexes_.find(col);
  if (idx_it != indexes_.end()) {
    auto bucket = idx_it->second.find(v);
    if (bucket == idx_it->second.end()) return std::vector<size_t>{};
    std::vector<size_t> sorted = bucket->second;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }
  std::vector<size_t> out;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i][col].Compare(v) == 0) out.push_back(i);
  }
  return out;
}

}  // namespace statsdb
}  // namespace ff
