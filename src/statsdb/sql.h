// SQL subset for the statistics database.
//
// Supported statements (keywords case-insensitive):
//
//   SELECT [DISTINCT] * | item[, item...]
//     FROM table [JOIN table2 ON col1 = col2]
//     [WHERE expr] [GROUP BY col[, col...]] [HAVING expr]
//     [ORDER BY col [ASC|DESC][, ...]] [LIMIT n [OFFSET m]]
//   CREATE TABLE name (col TYPE[, ...])
//   INSERT INTO name VALUES (lit[, ...])[, (...)...]
//   UPDATE name SET col = expr[, ...] [WHERE expr]
//   DELETE FROM name [WHERE expr]
//
// Predicates additionally support [NOT] IN (expr, ...), [NOT] BETWEEN
// lo AND hi, LIKE, and IS [NOT] NULL. UPDATE exists for the paper's
// §4.3.2 maintenance path: "a currently executing forecast will have
// incomplete statistics in the database" that get patched on completion.
//
// Aggregates COUNT(*)/COUNT/SUM/AVG/MIN/MAX may appear as top-level select
// items (optionally aliased). This covers every query the paper issues
// against its run-statistics database, e.g.
//   SELECT forecast FROM runs WHERE code_version = 'X'           (§4.3.2)
//   SELECT AVG(walltime) FROM runs WHERE forecast='tillamook'
//     AND node='f1' AND timesteps=5760                            (§4.1)

#ifndef FF_STATSDB_SQL_H_
#define FF_STATSDB_SQL_H_

#include <string>

#include "statsdb/query.h"

namespace ff {
namespace statsdb {

class Database;

/// Parses and executes one SQL statement against `db`.
util::StatusOr<ResultSet> ExecuteSql(Database* db,
                                     const std::string& statement);

/// Parses a SELECT statement into its logical plan without executing it.
/// Table/column binding happens at execution time, so no database is
/// needed here. Used to run the same query through both the reference
/// engine (PlanNode::Execute) and the vectorized one (exec.h).
util::StatusOr<PlanPtr> PlanSql(const std::string& statement);

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_SQL_H_
