// SQL subset for the statistics database.
//
// Supported statements (keywords case-insensitive):
//
//   SELECT [DISTINCT] * | item[, item...]
//     FROM table [JOIN table2 ON col1 = col2]
//     [WHERE expr] [GROUP BY col[, col...]] [HAVING expr]
//     [ORDER BY col [ASC|DESC][, ...]] [LIMIT n [OFFSET m]]
//   CREATE TABLE name (col TYPE[, ...])
//   INSERT INTO name VALUES (lit[, ...])[, (...)...]
//   UPDATE name SET col = expr[, ...] [WHERE expr]
//   DELETE FROM name [WHERE expr]
//
// Predicates additionally support [NOT] IN (expr, ...), [NOT] BETWEEN
// lo AND hi, LIKE, and IS [NOT] NULL. UPDATE exists for the paper's
// §4.3.2 maintenance path: "a currently executing forecast will have
// incomplete statistics in the database" that get patched on completion.
//
// Aggregates COUNT(*)/COUNT/SUM/AVG/MIN/MAX may appear as top-level select
// items (optionally aliased). This covers every query the paper issues
// against its run-statistics database, e.g.
//   SELECT forecast FROM runs WHERE code_version = 'X'           (§4.3.2)
//   SELECT AVG(walltime) FROM runs WHERE forecast='tillamook'
//     AND node='f1' AND timesteps=5760                            (§4.1)

#ifndef FF_STATSDB_SQL_H_
#define FF_STATSDB_SQL_H_

#include <memory>
#include <string>
#include <vector>

#include "statsdb/expr.h"
#include "statsdb/query.h"

namespace ff {
namespace statsdb {

class Database;

/// Parses and executes one SQL statement against `db`.
util::StatusOr<ResultSet> ExecuteSql(Database* db,
                                     const std::string& statement);

/// A compiled SELECT with `?` parameter placeholders: parse, plan, and
/// optimization happen once at Prepare time; Execute(params) binds the
/// placeholders and runs through the result cache + engines. Dashboard
/// templates ("SELECT avg(walltime) FROM runs WHERE forecast = ?") thus
/// share one plan across bindings while each binding keys its own
/// result-cache entry.
///
/// Placeholders may appear wherever a literal may inside a SELECT's
/// expressions. A bound placeholder participates in zone-map pruning
/// and simple-predicate matching like a literal, but never in plan-time
/// index selection (the value is unknown when the plan is built).
///
/// Copies share binding slots with the original — don't Execute two
/// copies concurrently. Obtain via Database::Prepare.
class PreparedStatement {
 public:
  PreparedStatement() = default;

  /// Number of `?` placeholders, in left-to-right statement order.
  size_t num_params() const { return slots_.size(); }
  const std::string& sql() const { return sql_; }

  /// Binds `params` (one Value per placeholder, in order) and executes.
  /// InvalidArgument when the count does not match.
  util::StatusOr<ResultSet> Execute(const std::vector<Value>& params) const;

 private:
  friend util::StatusOr<PreparedStatement> PrepareSql(
      Database* db, const std::string& statement);

  const Database* db_ = nullptr;
  std::string sql_;
  PlanPtr plan_;  // optimized at Prepare time
  std::vector<std::shared_ptr<ParamSlot>> slots_;
};

/// Implementation behind Database::Prepare. SELECT only.
util::StatusOr<PreparedStatement> PrepareSql(Database* db,
                                             const std::string& statement);

/// Parses a SELECT statement into its logical plan without executing it.
/// Table/column binding happens at execution time, so no database is
/// needed here. Used to run the same query through both the reference
/// engine (PlanNode::Execute) and the vectorized one (exec.h).
util::StatusOr<PlanPtr> PlanSql(const std::string& statement);

}  // namespace statsdb
}  // namespace ff

#endif  // FF_STATSDB_SQL_H_
