// Deterministic random-number generator used throughout the simulator.
//
// All stochastic behaviour in the library flows through Rng so that a fixed
// seed reproduces an identical event trace (tested in sim_test.cc).
// Implementation: xoshiro256** (public domain, Blackman & Vigna).

#ifndef FF_UTIL_RNG_H_
#define FF_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ff {
namespace util {

/// Deterministic, seedable PRNG with convenience distributions.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x5eedf0f0cafebeefULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (deterministic pairing).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  /// Log-normal such that the *median* of the distribution is `median`
  /// and sigma is the log-space standard deviation. Useful for run-time
  /// noise, which is multiplicative in practice.
  double LogNormalMedian(double median, double sigma);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns a uniformly random index in [0, n). Requires n > 0.
  size_t Index(size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Forks a child generator whose stream is independent of (but fully
  /// determined by) this one — used to give each forecast its own stream so
  /// adding a forecast does not perturb the others' noise. Consumes one
  /// draw of this stream (the children of successive Fork() calls differ).
  Rng Fork();

  /// Child stream `i`: a pure function of the current state and `i` that
  /// does NOT consume any of this stream's draws. Split(0), Split(1), ...
  /// are therefore mutually independent and — unlike Fork() — unaffected
  /// by how many children are taken or in what order, which is what makes
  /// per-replica seeds reproducible regardless of sweep worker count
  /// (parallel::SweepRunner hands replica i the stream Split(i)).
  Rng Split(uint64_t i) const;

  /// Advances this generator by 2^128 Next() steps in O(1) time (the
  /// canonical xoshiro256** jump polynomial) — an alternative way to
  /// partition one seed into non-overlapping substreams of length 2^128.
  /// Any cached Normal() half-sample is discarded.
  void Jump();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace util
}  // namespace ff

#endif  // FF_UTIL_RNG_H_
