#include "util/time_util.h"

#include <cmath>

#include "util/strings.h"

namespace ff {
namespace util {

int64_t DayOfTime(double t_seconds) {
  if (t_seconds <= 0.0) return 0;
  return static_cast<int64_t>(std::floor(t_seconds / kSecondsPerDay));
}

double TimeOfDay(double t_seconds) {
  double d = std::fmod(t_seconds, kSecondsPerDay);
  if (d < 0.0) d += kSecondsPerDay;
  return d;
}

double StartOfDay(int64_t day) {
  return static_cast<double>(day) * kSecondsPerDay;
}

double MakeTime(int64_t day, int hour, int minute, double second) {
  return StartOfDay(day) + hour * kSecondsPerHour +
         minute * kSecondsPerMinute + second;
}

std::string FormatTime(double t_seconds) {
  int64_t day = DayOfTime(t_seconds);
  double tod = TimeOfDay(t_seconds);
  int h = static_cast<int>(tod / kSecondsPerHour);
  int m = static_cast<int>(std::fmod(tod, kSecondsPerHour) /
                           kSecondsPerMinute);
  int s = static_cast<int>(std::fmod(tod, kSecondsPerMinute));
  return StrFormat("d%03lld %02d:%02d:%02d",
                   static_cast<long long>(day), h, m, s);
}

std::string FormatDuration(double seconds) {
  bool neg = seconds < 0.0;
  double abs = std::fabs(seconds);
  int h = static_cast<int>(abs / kSecondsPerHour);
  int m = static_cast<int>(std::fmod(abs, kSecondsPerHour) /
                           kSecondsPerMinute);
  int s = static_cast<int>(std::fmod(abs, kSecondsPerMinute));
  return StrFormat("%s%02d:%02d:%02d", neg ? "-" : "", h, m, s);
}

}  // namespace util
}  // namespace ff
