#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace ff {
namespace util {

namespace {

// splitmix64: seed expander recommended for xoshiro initialization.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  FF_CHECK(lo <= hi) << "Uniform(" << lo << "," << hi << ")";
  return lo + (hi - lo) * Uniform01();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FF_CHECK(lo <= hi) << "UniformInt(" << lo << "," << hi << ")";
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform01();
  } while (u1 <= 0.0);
  u2 = Uniform01();
  double r = std::sqrt(-2.0 * std::log(u1));
  double z0 = r * std::cos(2.0 * M_PI * u2);
  cached_normal_ = r * std::sin(2.0 * M_PI * u2);
  have_cached_normal_ = true;
  return mean + stddev * z0;
}

double Rng::Exponential(double rate) {
  FF_CHECK(rate > 0.0) << "Exponential rate must be positive";
  double u;
  do {
    u = Uniform01();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::LogNormalMedian(double median, double sigma) {
  FF_CHECK(median > 0.0) << "LogNormalMedian requires positive median";
  return median * std::exp(Normal(0.0, sigma));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform01() < p;
}

size_t Rng::Index(size_t n) {
  FF_CHECK(n > 0) << "Index(0)";
  return static_cast<size_t>(
      UniformInt(0, static_cast<int64_t>(n) - 1));
}

Rng Rng::Fork() { return Rng(Next() ^ 0x9e3779b97f4a7c15ULL); }

Rng Rng::Split(uint64_t i) const {
  // Absorb the four state words and the child index into a splitmix64
  // chain (the same expander Rng(seed) uses), then let the Rng(seed)
  // constructor expand the digest into the child's state. The state is
  // read, never advanced, so Split is draw-order independent.
  uint64_t h = 0x243f6a8885a308d3ULL;  // pi, an arbitrary non-zero phase
  for (uint64_t word : s_) {
    uint64_t t = h ^ word;
    h = SplitMix64(&t);
  }
  uint64_t t = h ^ i;
  return Rng(SplitMix64(&t));
}

void Rng::Jump() {
  // Canonical xoshiro256** jump constants (Blackman & Vigna): advances
  // the state by 2^128 steps of Next().
  static constexpr uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
  have_cached_normal_ = false;
}

}  // namespace util
}  // namespace ff
