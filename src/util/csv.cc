#include "util/csv.h"

namespace ff {
namespace util {

std::string CsvEscape(const std::string& field) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvRow(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    out += CsvEscape(fields[i]);
  }
  return out;
}

namespace {

// Parses records from `text` starting at *pos; returns one record and
// advances *pos past its terminating newline (or to end).
StatusOr<std::vector<std::string>> ParseRecord(const std::string& text,
                                               size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(field));
        field.clear();
      } else if (c == '\n') {
        ++i;
        break;
      } else if (c == '\r') {
        // swallow; handle \r\n
      } else {
        field += c;
      }
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

}  // namespace

StatusOr<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  size_t pos = 0;
  return ParseRecord(line, &pos);
}

StatusOr<CsvDocument> ParseCsv(const std::string& text, bool has_header) {
  CsvDocument doc;
  size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    // Skip blank lines between records.
    if (text[pos] == '\n' || text[pos] == '\r') {
      ++pos;
      continue;
    }
    FF_ASSIGN_OR_RETURN(auto record, ParseRecord(text, &pos));
    if (first && has_header) {
      doc.header = std::move(record);
    } else {
      doc.rows.push_back(std::move(record));
    }
    first = false;
  }
  return doc;
}

CsvWriter::CsvWriter(std::ostream* out, std::vector<std::string> header)
    : out_(out) {
  if (!header.empty()) {
    width_ = header.size();
    (*out_) << CsvRow(header) << '\n';
  }
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (width_ == 0) {
    width_ = fields.size();
  } else if (fields.size() != width_) {
    return Status::InvalidArgument(
        "CSV row width mismatch: expected " + std::to_string(width_) +
        ", got " + std::to_string(fields.size()));
  }
  (*out_) << CsvRow(fields) << '\n';
  ++rows_written_;
  return Status::OK();
}

}  // namespace util
}  // namespace ff
