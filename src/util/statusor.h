// StatusOr<T>: value-or-error result type, companion to Status.

#ifndef FF_UTIL_STATUSOR_H_
#define FF_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace ff {
namespace util {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Constructing from an OK Status is a programming error
/// (asserted in debug builds, converted to Internal otherwise).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value (mirrors absl::StatusOr ergonomics).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  /// Implicit from error status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ present
  std::optional<T> value_;
};

}  // namespace util
}  // namespace ff

// FF_ASSIGN_OR_RETURN / FF_RETURN_IF_ERROR live in util/status.h.

#endif  // FF_UTIL_STATUSOR_H_
