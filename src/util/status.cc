#include "util/status.h"

namespace ff {
namespace util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kDeadlineMissed:
      return "DeadlineMissed";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace util
}  // namespace ff
