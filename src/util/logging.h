// Minimal leveled logging + check macros for the forecast-factory library.
//
// FF_LOG(INFO) << "...";  FF_CHECK(cond) << "...";
// Severity filtering is a process-wide runtime setting (SetMinLogLevel).

#ifndef FF_UTIL_LOGGING_H_
#define FF_UTIL_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace ff {
namespace util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level that is actually emitted (default: kWarning, so
/// library internals stay quiet in tests and benches).
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

/// Receives every emitted message (already formatted, no trailing
/// newline). Installing a sink replaces the default std::cerr output;
/// pass nullptr to restore it. Fatal messages still abort after the sink
/// returns. Single-threaded like the rest of the library; meant for test
/// capture and log redirection.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void SetLogSink(LogSink sink);

/// Internal: one log statement. Emits on destruction; aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Turns the ostream expression on the right of `&` into void so it can sit
/// in the unused branch of a ternary (classic glog "voidify" trick).
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace util
}  // namespace ff

#define FF_LOG_DEBUG \
  ::ff::util::LogMessage(::ff::util::LogLevel::kDebug, __FILE__, __LINE__)
#define FF_LOG_INFO \
  ::ff::util::LogMessage(::ff::util::LogLevel::kInfo, __FILE__, __LINE__)
#define FF_LOG_WARNING \
  ::ff::util::LogMessage(::ff::util::LogLevel::kWarning, __FILE__, __LINE__)
#define FF_LOG_ERROR \
  ::ff::util::LogMessage(::ff::util::LogLevel::kError, __FILE__, __LINE__)
#define FF_LOG_FATAL \
  ::ff::util::LogMessage(::ff::util::LogLevel::kFatal, __FILE__, __LINE__)

#define FF_LOG(severity) FF_LOG_##severity.stream()

/// Fatal unless `cond` holds; enabled in all build types (invariants in a
/// simulator are cheap relative to simulated work).
#define FF_CHECK(cond)                                 \
  (cond) ? (void)0                                     \
         : ::ff::util::LogMessageVoidify() &           \
               FF_LOG(FATAL) << "Check failed: " #cond " "

/// Debug-only check: compiled out in optimized builds (NDEBUG) so hot-path
/// invariants (event-queue ordering, PS-heap consistency) cost nothing in
/// production; define FF_FORCE_DCHECK to keep them on regardless (the test
/// suite does). The `true || (cond)` form keeps `cond` parsed and its
/// variables "used" while the short-circuit makes the whole statement —
/// including the streamed message — dead code.
#if defined(NDEBUG) && !defined(FF_FORCE_DCHECK)
#define FF_DCHECK(cond) FF_CHECK(true || (cond))
#else
#define FF_DCHECK(cond) FF_CHECK(cond)
#endif

#endif  // FF_UTIL_LOGGING_H_
