#include "util/summary_stats.h"

#include <algorithm>
#include <cmath>

namespace ff {
namespace util {

void SummaryStats::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

StatusOr<LinearFit> FitLinear(const std::vector<double>& xs,
                              const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("FitLinear: size mismatch");
  }
  if (xs.size() < 2) {
    return Status::InvalidArgument("FitLinear: need at least 2 points");
  }
  double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    return Status::InvalidArgument("FitLinear: x is constant");
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy == 0.0) {
    fit.r_squared = 1.0;  // constant y, exactly fit by slope 0
  } else {
    double ss_res = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
      double r = ys[i] - fit.Predict(xs[i]);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  }
  return fit;
}

StatusOr<double> Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return Status::InvalidArgument("Percentile: empty sample");
  if (p < 0.0 || p > 100.0) {
    return Status::InvalidArgument("Percentile: p out of [0,100]");
  }
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

StatusOr<double> MedianAbsDeviation(const std::vector<double>& xs) {
  FF_ASSIGN_OR_RETURN(double med, Percentile(xs, 50.0));
  std::vector<double> devs;
  devs.reserve(xs.size());
  for (double x : xs) devs.push_back(std::fabs(x - med));
  return Percentile(std::move(devs), 50.0);
}

}  // namespace util
}  // namespace ff
