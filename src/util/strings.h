// Small string utilities shared across modules (split, trim, case, join,
// printf-style formatting, numeric parsing with Status reporting).

#ifndef FF_UTIL_STRINGS_H_
#define FF_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace ff {
namespace util {

/// Splits `s` on `sep`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any whitespace; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading and trailing whitespace.
std::string Trim(std::string_view s);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict numeric parsers (whole string must parse).
StatusOr<int64_t> ParseInt64(std::string_view s);
StatusOr<double> ParseDouble(std::string_view s);

/// Case-insensitive equality (ASCII).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

}  // namespace util
}  // namespace ff

#endif  // FF_UTIL_STRINGS_H_
