// Stable 64-bit fingerprints for cache keys.
//
// statsdb's plan and result caches (statsdb/cache.h) key on fingerprints
// of SQL token streams and plan trees. Those keys must be STABLE — a
// silent change to the hash function invalidates nothing visibly but
// turns every warm cache cold and, worse, can collide entries that a
// persisted artifact (BENCH json, golden test) assumed distinct. So the
// functions here are frozen by golden-value tests
// (tests/util/fingerprint_test.cc): FNV-1a 64 with the canonical offset
// basis / prime for byte streams, and splitmix64 as the avalanche
// finalizer / combiner. Do not "improve" either without updating the
// goldens deliberately.
//
// std::hash is explicitly NOT suitable: its value is unspecified and
// differs across standard libraries and process runs.

#ifndef FF_UTIL_FINGERPRINT_H_
#define FF_UTIL_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ff {
namespace util {

/// FNV-1a 64-bit offset basis and prime (canonical constants).
inline constexpr uint64_t kFnv64Offset = 14695981039346656037ULL;
inline constexpr uint64_t kFnv64Prime = 1099511628211ULL;

/// Plain FNV-1a 64 over `bytes`. Matches the published reference
/// algorithm, so goldens can be cross-checked against independent
/// implementations. Empty input returns the offset basis.
uint64_t Fingerprint64(std::string_view bytes);

/// splitmix64 finalizer: bijective on uint64, flips ~half the output
/// bits per input bit. Used to post-whiten FNV state (FNV-1a alone
/// diffuses poorly into the low bits) and inside FingerprintCombine.
uint64_t SplitMix64(uint64_t x);

/// Order-dependent combination of two fingerprints:
/// Combine(a, b) != Combine(b, a) in general.
uint64_t FingerprintCombine(uint64_t a, uint64_t b);

/// Incremental fingerprint builder. Feeds typed tokens into an FNV-1a
/// state; Digest() whitens through splitmix64. Strings are
/// length-prefixed so {"ab","c"} and {"a","bc"} digest differently.
///
///   FingerprintStream fp;
///   fp.Str(table).U64(epoch).U8(kind);
///   uint64_t key = fp.Digest();
class FingerprintStream {
 public:
  FingerprintStream& Bytes(const void* data, size_t n);
  FingerprintStream& U8(uint8_t v) { return Bytes(&v, 1); }
  FingerprintStream& U64(uint64_t v);  // fed as 8 little-endian bytes
  FingerprintStream& Str(std::string_view s);

  /// Raw FNV state so far (stable, un-whitened).
  uint64_t State() const { return state_; }
  /// Whitened digest; does not consume the stream (more tokens may be
  /// appended and Digest() called again).
  uint64_t Digest() const { return SplitMix64(state_); }

 private:
  uint64_t state_ = kFnv64Offset;
};

}  // namespace util
}  // namespace ff

#endif  // FF_UTIL_FINGERPRINT_H_
