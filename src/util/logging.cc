#include "util/logging.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <iostream>

namespace ff {
namespace util {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};
LogSink g_sink;  // single-threaded; guarded only by the library contract

// "2026-08-06 14:03:07.123" in local time.
std::string WallClockStamp() {
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  struct tm tm_buf;
  localtime_r(&ts.tv_sec, &tm_buf);
  char buf[32];
  size_t n = strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm_buf);
  snprintf(buf + n, sizeof(buf) - n, ".%03ld", ts.tv_nsec / 1000000L);
  return buf;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

LogLevel GetMinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load());
}

void SetLogSink(LogSink sink) { g_sink = std::move(sink); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << WallClockStamp() << " " << LevelName(level) << " "
          << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_min_level.load() ||
      level_ == LogLevel::kFatal) {
    if (g_sink) {
      g_sink(level_, stream_.str());
    } else {
      std::cerr << stream_.str() << std::endl;
    }
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace util
}  // namespace ff
