// CSV reading/writing with RFC-4180-style quoting. Used by statsdb
// import/export and by the bench harnesses that emit figure series.

#ifndef FF_UTIL_CSV_H_
#define FF_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace ff {
namespace util {

/// One parsed CSV document: optional header plus data rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Escapes a single field (quotes when it contains comma, quote or newline).
std::string CsvEscape(const std::string& field);

/// Renders one row (no trailing newline).
std::string CsvRow(const std::vector<std::string>& fields);

/// Parses CSV text. When `has_header` is true the first record becomes
/// `header`. Handles quoted fields, embedded commas/newlines and doubled
/// quotes. Rejects unterminated quotes.
StatusOr<CsvDocument> ParseCsv(const std::string& text, bool has_header);

/// Parses a single CSV record (no embedded newlines expected).
StatusOr<std::vector<std::string>> ParseCsvLine(const std::string& line);

/// Streaming writer with uniform row-width checking.
class CsvWriter {
 public:
  /// Writes to `out` (not owned); `header` may be empty for headerless CSV.
  CsvWriter(std::ostream* out, std::vector<std::string> header);

  /// Writes one row; returns InvalidArgument when the width differs from
  /// the header width (if a header was given) or the first row's width.
  Status WriteRow(const std::vector<std::string>& fields);

  size_t rows_written() const { return rows_written_; }

 private:
  std::ostream* out_;
  size_t width_ = 0;  // 0 = not yet fixed
  size_t rows_written_ = 0;
};

}  // namespace util
}  // namespace ff

#endif  // FF_UTIL_CSV_H_
