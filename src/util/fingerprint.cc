#include "util/fingerprint.h"

namespace ff {
namespace util {

uint64_t Fingerprint64(std::string_view bytes) {
  uint64_t h = kFnv64Offset;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnv64Prime;
  }
  return h;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t FingerprintCombine(uint64_t a, uint64_t b) {
  // 64-bit widening of the boost hash_combine recipe, finalized through
  // splitmix64 so low-entropy inputs still avalanche.
  return SplitMix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4)));
}

FingerprintStream& FingerprintStream::Bytes(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = state_;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnv64Prime;
  }
  state_ = h;
  return *this;
}

FingerprintStream& FingerprintStream::U64(uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  return Bytes(b, 8);
}

FingerprintStream& FingerprintStream::Str(std::string_view s) {
  U64(s.size());
  return Bytes(s.data(), s.size());
}

}  // namespace util
}  // namespace ff
