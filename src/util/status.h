// Status: error-handling primitive used across the forecast-factory library.
//
// Follows the Arrow/RocksDB convention: library functions that can fail
// return a Status (or StatusOr<T>, see statusor.h) instead of throwing.
// A Status is cheap to copy in the OK case (no allocation).

#ifndef FF_UTIL_STATUS_H_
#define FF_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace ff {
namespace util {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIoError = 8,
  kParseError = 9,
  kCapacityExceeded = 10,
  kDeadlineMissed = 11,
  kUnavailable = 12,
};

/// Highest StatusCode value in use — wire decoders validating a code
/// byte check against this instead of hard-coding the last enumerator.
inline constexpr StatusCode kMaxStatusCode = StatusCode::kUnavailable;

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation: either OK or an error code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status DeadlineMissed(std::string msg) {
    return Status(StatusCode::kDeadlineMissed, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsCapacityExceeded() const {
    return code() == StatusCode::kCapacityExceeded;
  }
  bool IsDeadlineMissed() const {
    return code() == StatusCode::kDeadlineMissed;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns this status with `context + ": "` prepended to the message.
  /// OK statuses pass through unchanged.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace util
}  // namespace ff

/// Propagates a non-OK Status to the caller; `expr` is evaluated exactly
/// once. Replaces hand-rolled `if (!s.ok()) return s;` chains.
#define FF_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::ff::util::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Assigns the value of a StatusOr expression to `lhs`, or propagates the
/// error. Usage: FF_ASSIGN_OR_RETURN(auto x, ComputeX());
#define FF_ASSIGN_OR_RETURN(lhs, expr)                       \
  FF_ASSIGN_OR_RETURN_IMPL_(                                 \
      FF_STATUS_CONCAT_(_statusor_, __LINE__), lhs, expr)

#define FF_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define FF_STATUS_CONCAT_(a, b) FF_STATUS_CONCAT_IMPL_(a, b)
#define FF_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // FF_UTIL_STATUS_H_
