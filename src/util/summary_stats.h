// Streaming summary statistics and simple regression/series analysis
// primitives used by the estimator, the log analyzer and the benches.

#ifndef FF_UTIL_SUMMARY_STATS_H_
#define FF_UTIL_SUMMARY_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "util/statusor.h"

namespace ff {
namespace util {

/// Welford streaming mean/variance plus min/max.
class SummaryStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-safe reduction).
  void Merge(const SummaryStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Ordinary least squares y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0,1] (1 when all variance explained;
  /// defined as 1 when y is constant and perfectly fit).
  double r_squared = 0.0;
  double Predict(double x) const { return slope * x + intercept; }
};

/// Fits OLS; requires xs.size() == ys.size() >= 2 and non-constant x.
StatusOr<LinearFit> FitLinear(const std::vector<double>& xs,
                              const std::vector<double>& ys);

/// Exact percentile (linear interpolation) of a copy-sorted sample.
/// p in [0,100]. Requires non-empty xs.
StatusOr<double> Percentile(std::vector<double> xs, double p);

/// Median absolute deviation (robust scale estimate).
StatusOr<double> MedianAbsDeviation(const std::vector<double>& xs);

}  // namespace util
}  // namespace ff

#endif  // FF_UTIL_SUMMARY_STATS_H_
