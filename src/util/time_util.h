// Simulation-time helpers. Simulated time is seconds (double) since an
// arbitrary campaign epoch; the campaign layer interprets it as
// day-of-year + time-of-day, matching the paper's figures (x axis in days,
// walltimes in seconds, "one day is 86,400 seconds").

#ifndef FF_UTIL_TIME_UTIL_H_
#define FF_UTIL_TIME_UTIL_H_

#include <cstdint>
#include <string>

namespace ff {
namespace util {

/// Seconds per simulated day.
inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerMinute = 60.0;

/// 0-based day index containing simulated time t (t may be negative -> 0).
int64_t DayOfTime(double t_seconds);

/// Seconds since the start of the containing day, in [0, 86400).
double TimeOfDay(double t_seconds);

/// Start-of-day timestamp for a 0-based day index.
double StartOfDay(int64_t day);

/// Builds a timestamp: day index + hours/minutes/seconds within the day.
double MakeTime(int64_t day, int hour, int minute = 0, double second = 0.0);

/// "dDDD hh:mm:ss" rendering used by log files and the Gantt view.
std::string FormatTime(double t_seconds);

/// "hh:mm:ss" (duration) rendering.
std::string FormatDuration(double seconds);

}  // namespace util
}  // namespace ff

#endif  // FF_UTIL_TIME_UTIL_H_
