// RetryingClient: the resilience layer over Client — reconnects,
// exponential backoff with jitter, transparent re-prepare, and
// read-only auto-retry, built on the same fault::RetryPolicy shape the
// simulated dataflow uses (PR 6), reinterpreted on the wall clock.
//
// Retry semantics (the error taxonomy, EXPERIMENTS.md §V):
//
//  * TRANSPORT failures — connect errors, send/recv errors, expired
//    deadlines (kDeadlineMissed), torn or garbled frames (ParseError
//    from the stream, not from SQL) — mean the response never arrived.
//    For an IDEMPOTENT request (SELECT/EXPLAIN, Prepare, refresh-stats,
//    executing a prepared read) the client reconnects, re-prepares any
//    statement it needs, and retries under the policy's backoff ladder.
//
//  * SERVER-REPORTED errors — a well-formed kError frame — mean the
//    exchange worked and the answer IS the error. Retrying would just
//    recur, so these return immediately, byte-identical to in-process
//    execution. The one configurable exception is kUnavailable
//    ("overloaded" shedding / refused connection): fail-fast by
//    default, opt-in retryable via retry_unavailable for clients that
//    prefer waiting out an overload to erroring.
//
//  * MUTATIONS (INSERT/UPDATE/DELETE/CREATE/DROP) are NEVER auto-
//    retried after they may have been sent: a transport failure leaves
//    the statement's fate unknown (it may have committed before the
//    connection died), and a blind re-send could double-apply it.
//    Failures *before* the request could have reached the server
//    (connect failures) are still retried — nothing was risked yet.
//
// Backoff delays are drawn from the policy via an owned util::Rng
// stream (seeded per client), so a fleet of clients with distinct seeds
// jitters apart deterministically. RetryPolicy's delay unit is
// interpreted as SECONDS of wall time; the defaults here are
// milliseconds-scale (2 ms base, ×2, 250 ms cap), not the simulation's
// minutes-scale ladder.
//
// Like Client, a RetryingClient is single-threaded; open one per
// client thread.

#ifndef FF_NET_RETRYING_CLIENT_H_
#define FF_NET_RETRYING_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/retry.h"
#include "net/client.h"
#include "statsdb/query.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace ff {
namespace net {

/// A retry ladder sized for loopback/datacenter wall time rather than
/// simulated hours: 8 attempts, 2 ms base, doubling, 250 ms cap, 25%
/// jitter.
fault::RetryPolicy DefaultClientRetryPolicy();

struct RetryingClientOptions {
  ClientOptions client;
  fault::RetryPolicy policy = DefaultClientRetryPolicy();
  /// Seeds the jitter stream (and nothing else).
  uint64_t seed = 0x5eedbacc0ffULL;
  /// Retry requests the server shed with kUnavailable (overload
  /// admission control). Default false: shed means the server wants
  /// LESS traffic right now, and the bench's fail-fast gate depends on
  /// shed requests erroring promptly.
  bool retry_unavailable = false;
};

class RetryingClient {
 public:
  RetryingClient(std::string host, uint16_t port,
                 RetryingClientOptions options);
  RetryingClient(const RetryingClient&) = delete;
  RetryingClient& operator=(const RetryingClient&) = delete;
  RetryingClient(RetryingClient&&) = default;
  RetryingClient& operator=(RetryingClient&&) = default;

  /// Connects eagerly (with retries). The constructor alone is lazy —
  /// the first request connects on demand.
  util::Status Connect();

  /// One SQL statement, batched result framing. Reads auto-retry;
  /// mutations get exactly one wire attempt.
  util::StatusOr<statsdb::ResultSet> Query(const std::string& sql);
  /// Same, with the row-at-a-time result framing.
  util::StatusOr<statsdb::ResultSet> QueryRows(const std::string& sql);

  /// Client-local prepared-statement handle: survives reconnects (the
  /// statement is transparently re-prepared on the new session).
  struct Handle {
    uint32_t id = 0;
  };
  util::StatusOr<Handle> Prepare(const std::string& sql);
  util::StatusOr<statsdb::ResultSet> ExecutePrepared(
      Handle handle, const std::vector<statsdb::Value>& params);
  /// Forgets the handle; best-effort close on the live session.
  util::Status ClosePrepared(Handle handle);

  util::Status RefreshServerStats();

  /// Wall-clock-free counters for benches and tests.
  struct Stats {
    uint64_t connects = 0;     // successful connections (1 = no drama)
    uint64_t retries = 0;      // request attempts after the first
    uint64_t reprepared = 0;   // statements re-prepared after reconnect
    uint64_t gave_up = 0;      // requests that exhausted the ladder
    uint64_t not_retried = 0;  // failed requests refused a retry
                               //   (mutations / server-reported errors)
  };
  const Stats& stats() const { return stats_; }

  bool connected() const { return client_.connected(); }
  /// The underlying connection (tests poke at it).
  Client& raw() { return client_; }

 private:
  struct PreparedEntry {
    std::string sql;
    bool is_write = false;
    bool valid = false;  // server-side statement exists on this session
    Client::Prepared server;
  };

  /// Reconnects if needed; invalidates prepared entries on a fresh
  /// session.
  util::Status EnsureConnected();
  void DropConnection();
  /// Sleeps out the ladder delay for failure number `retry` (1-based).
  void Backoff(int retry);

  /// Runs `attempt` under the retry discipline. `idempotent` gates
  /// post-send retries; connect failures always retry.
  template <typename Fn>
  auto RunWithRetry(bool idempotent, Fn&& attempt)
      -> decltype(attempt());

  std::string host_;
  uint16_t port_ = 0;
  RetryingClientOptions options_;
  util::Rng rng_;
  Client client_;
  std::map<uint32_t, PreparedEntry> stmts_;
  uint32_t next_handle_ = 1;
  Stats stats_;
};

}  // namespace net
}  // namespace ff

#endif  // FF_NET_RETRYING_CLIENT_H_
