// ChaosTransport: seeded, deterministic network-fault injection for the
// served statsdb — PR 6's fault discipline (util::Rng::Split substreams,
// same seed => byte-identical timeline) applied to REAL sockets instead
// of the simulated cluster.
//
// The decorator wraps any Transport (either end of a loopback
// connection — it is direction-symmetric) and injects five fault kinds:
//
//   kSplit    partial reads/writes: an I/O call is capped short of what
//             was asked, exercising every resume loop above it
//   kDelay    artificial stalls of a drawn duration
//   kCorrupt  a single byte XOR-flipped in flight
//   kReset    the connection torn down mid-stream (usually mid-frame)
//   plus EOF via reset — a reset after the last request byte looks like
//   a clean close at an unfortunate moment
//
// Determinism. Faults are scheduled by BYTE OFFSET, not by wall clock
// or call count: each (direction, kind) pair owns an Rng::Split
// substream that yields a sequence of absolute stream offsets (gaps
// drawn exponential with the profile's mean). An event fires exactly
// when the stream position crosses its offset, so however the kernel or
// the caller chunks the I/O — and however slowly the peer drains — the
// same seed produces the same faulted byte stream and the same per-kind
// injection counters. bench/server_chaos gates on exactly that: two
// runs, byte-identical counter dumps.
//
// Reconnects. A transport is built with a connection index; substreams
// are Split(conn_index * kNumChaosKinds * 2 + stream) of the profile
// seed, so a RetryingClient's third connection replays the same chaos
// whether or not the second one was reset early.

#ifndef FF_NET_CHAOS_TRANSPORT_H_
#define FF_NET_CHAOS_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.h"
#include "util/rng.h"

namespace ff {
namespace net {

/// Injection rates. A kind's gap is the MEAN number of stream bytes
/// between injections (exponential gaps, minimum 1); 0 disables the
/// kind entirely — and draws nothing from its substream, so enabling
/// corruption never perturbs the delay schedule.
struct ChaosProfile {
  uint64_t seed = 0xc4a05eedULL;

  double split_gap_bytes = 0.0;    // partial read/write boundaries
  double delay_gap_bytes = 0.0;    // stalls
  double delay_min_ms = 0.2;       // stall duration drawn uniform
  double delay_max_ms = 2.0;       //   in [min, max)
  double corrupt_gap_bytes = 0.0;  // single-byte XOR flips
  double reset_gap_bytes = 0.0;    // connection teardowns

  bool any_enabled() const {
    return split_gap_bytes > 0 || delay_gap_bytes > 0 ||
           corrupt_gap_bytes > 0 || reset_gap_bytes > 0;
  }
};

/// Per-kind injection counters, shared by every connection of one
/// logical client (atomics: the bench aggregates across threads).
struct ChaosCounters {
  std::atomic<uint64_t> splits{0};
  std::atomic<uint64_t> delays{0};
  std::atomic<uint64_t> corruptions{0};
  std::atomic<uint64_t> resets{0};

  void Add(const ChaosCounters& other) {
    splits.fetch_add(other.splits.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    delays.fetch_add(other.delays.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    corruptions.fetch_add(
        other.corruptions.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    resets.fetch_add(other.resets.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }

  /// Stable rendering ("splits=12 delays=3 corruptions=1 resets=2") —
  /// the determinism gate diffs these strings across runs.
  std::string ToString() const;
};

class ChaosTransport : public Transport {
 public:
  /// Wraps `base`. `conn_index` selects this connection's substreams
  /// (see file comment); `counters` may be null (drops the counts) and
  /// is not owned.
  ChaosTransport(std::unique_ptr<Transport> base,
                 const ChaosProfile& profile, uint64_t conn_index,
                 ChaosCounters* counters);

  util::StatusOr<size_t> Send(const char* data, size_t n) override;
  util::StatusOr<size_t> Recv(char* buf, size_t n) override;
  void Close() override;

 private:
  /// One direction's fault schedule: absolute next-event offsets per
  /// kind, each advanced from its own substream.
  struct Schedule {
    util::Rng split_rng, delay_rng, corrupt_rng, reset_rng;
    uint64_t pos = 0;  // stream bytes moved so far
    uint64_t next_split = 0, next_delay = 0, next_corrupt = 0,
             next_reset = 0;
  };

  void InitSchedule(const util::Rng& root, uint64_t base_stream,
                    Schedule* s);
  /// Applies pre-I/O events at the current position (delay, reset) and
  /// returns the cap on how many bytes this call may move (to the
  /// nearest upcoming boundary). Sets *reset when the connection dies.
  size_t CapAndFire(Schedule* s, size_t want, bool* reset);
  /// Corrupts bytes in [s->pos, s->pos + n) that cross the corruption
  /// schedule, then advances the position.
  void CorruptAndAdvance(Schedule* s, char* data, size_t n);

  std::unique_ptr<Transport> base_;
  ChaosProfile profile_;
  ChaosCounters* counters_;
  Schedule out_, in_;
  bool dead_ = false;
};

/// Convenience: SocketTransport::Connect wrapped in chaos. `counters`
/// may be null; each call should pass the next connection index.
util::StatusOr<std::unique_ptr<Transport>> ConnectChaos(
    const std::string& host, uint16_t port,
    const TransportDeadlines& deadlines, const ChaosProfile& profile,
    uint64_t conn_index, ChaosCounters* counters);

}  // namespace net
}  // namespace ff

#endif  // FF_NET_CHAOS_TRANSPORT_H_
