// Byte-stream transport abstraction under the served-statsdb client.
//
// The wire protocol (wire.h) only needs two primitives — "push some
// bytes" and "pull some bytes" — so the client reads and writes through
// this interface instead of a raw fd. That buys two things:
//
//  * Deadlines. SocketTransport runs its socket non-blocking and waits
//    in poll() with explicit connect/read/write timeouts, so a stalled
//    or silent peer surfaces as kDeadlineMissed instead of hanging the
//    caller forever. Timeouts default to 0 (= wait forever), keeping
//    the fair-weather behaviour byte-identical for existing users.
//
//  * Fault injection. chaos_transport.h decorates any Transport with a
//    seeded schedule of partial I/O, delays, corruption and resets; the
//    client can be pointed at a chaotic network without knowing it.
//
// Both Send and Recv are allowed to move FEWER bytes than asked — the
// caller loops. That contract is what makes partial-I/O injection a
// pure decorator: a short count from chaos is indistinguishable from a
// short count from the kernel, which is exactly the point.

#ifndef FF_NET_TRANSPORT_H_
#define FF_NET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/statusor.h"

namespace ff {
namespace net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends up to `n` bytes; returns the count actually sent (>= 1) or an
  /// error. May send fewer than asked — callers loop.
  virtual util::StatusOr<size_t> Send(const char* data, size_t n) = 0;

  /// Receives up to `n` bytes into `buf`; returns the count received, 0
  /// for a clean end-of-stream, or an error. May return fewer than `n`.
  virtual util::StatusOr<size_t> Recv(char* buf, size_t n) = 0;

  /// Releases the underlying resources; further I/O fails.
  virtual void Close() = 0;
};

/// Deadline knobs for SocketTransport (and thereby Client). All values
/// in milliseconds; 0 means "no deadline" — block forever, the seed
/// behaviour.
struct TransportDeadlines {
  int connect_timeout_ms = 0;
  int io_timeout_ms = 0;
};

/// A TCP socket with poll()-based deadlines. The fd is non-blocking for
/// its whole life; every wait happens in poll() with the configured
/// timeout, and a wait that expires returns
/// kDeadlineMissed("... deadline (<N> ms) expired").
class SocketTransport : public Transport {
 public:
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Connects to host:port (IPv4 dotted quad). With a connect deadline,
  /// the connect itself is non-blocking + poll; without one it may block
  /// as long as the kernel lets it.
  static util::StatusOr<std::unique_ptr<SocketTransport>> Connect(
      const std::string& host, uint16_t port,
      const TransportDeadlines& deadlines);

  /// Wraps an already-connected fd (server-side accept, socketpair in
  /// tests). Takes ownership; switches the fd non-blocking.
  static util::StatusOr<std::unique_ptr<SocketTransport>> Adopt(
      int fd, const TransportDeadlines& deadlines);

  util::StatusOr<size_t> Send(const char* data, size_t n) override;
  util::StatusOr<size_t> Recv(char* buf, size_t n) override;
  void Close() override;

  int fd() const { return fd_; }

 private:
  SocketTransport(int fd, const TransportDeadlines& deadlines)
      : fd_(fd), deadlines_(deadlines) {}

  int fd_ = -1;
  TransportDeadlines deadlines_;
};

}  // namespace net
}  // namespace ff

#endif  // FF_NET_TRANSPORT_H_
