#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "net/serialize.h"
#include "obs/profiler.h"

namespace ff {
namespace net {

namespace {

using statsdb::ResultSet;
using util::Status;
using util::StatusOr;

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  // Dashboard point queries are tiny frames; Nagle would serialize every
  // request/response pair onto delayed-ACK timers and wreck tail latency.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

double Ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

thread_local int Server::ReadGate::depth_ = 0;

void Server::ReadGate::LockShared() {
  if (depth_++ == 0) mu_.lock_shared();
}

void Server::ReadGate::UnlockShared() {
  if (--depth_ == 0) mu_.unlock_shared();
}

namespace {

/// RAII over the reentrant shared gate.
class SharedLock {
 public:
  explicit SharedLock(std::function<void()> unlock) : unlock_(std::move(unlock)) {}
  ~SharedLock() { unlock_(); }

 private:
  std::function<void()> unlock_;
};

}  // namespace

bool IsWriteStatement(const std::string& sql) {
  size_t i = 0;
  const size_t n = sql.size();
  for (;;) {
    while (i < n && std::isspace(static_cast<unsigned char>(sql[i]))) ++i;
    if (i + 1 < n && sql[i] == '-' && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (i + 1 < n && sql[i] == '/' && sql[i + 1] == '*') {
      size_t end = sql.find("*/", i + 2);
      if (end == std::string::npos) return false;  // unterminated: read path
      i = end + 2;
      continue;
    }
    break;
  }
  std::string word;
  while (i < n && std::isalpha(static_cast<unsigned char>(sql[i]))) {
    word.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(sql[i]))));
    ++i;
  }
  return word == "INSERT" || word == "UPDATE" || word == "DELETE" ||
         word == "CREATE" || word == "DROP";
}

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Server::~Server() { Stop(); }

util::Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  stopping_.store(false, std::memory_order_release);

  if (config_.pool_threads == 0) config_.pool_threads = 1;
  pool_ = std::make_unique<parallel::ThreadPool>(config_.pool_threads);

  // Wire morsel parallelism onto the server's own pool so session tasks
  // and query morsels share workers (the PR 7 nested-submission
  // contract). FF_STATSDB_PARALLEL still wins on sizing when set.
  statsdb::ParallelConfig pc = db_.parallel_config();
  pc.pool = pool_.get();
  if (std::getenv("FF_STATSDB_PARALLEL") == nullptr) {
    pc.max_threads = config_.pool_threads;
    pc.morsel_chunks = config_.morsel_chunks;
    pc.min_chunks = config_.min_chunks;
  }
  db_.set_parallel_config(pc);

  // Served databases default the query cache fully on — dashboards
  // re-issue the same statements continuously. The environment variable
  // still wins: an explicit FF_STATSDB_CACHE (even "off") is an operator
  // decision this default must not override.
  if (config_.cache_default_full &&
      std::getenv("FF_STATSDB_CACHE") == nullptr) {
    statsdb::CacheConfig cc = db_.cache_config();
    cc.mode = statsdb::CacheConfig::Mode::kFull;
    db_.set_cache_config(cc);
  }

  // Pre-warm every table's lazy scan state (zone maps, null-bitmap
  // padding) before any concurrent reader can race the const-but-lazy
  // branches. Repeated after every write, under the exclusive gate.
  for (const std::string& name : db_.TableNames()) {
    auto t = db_.table(name);
    if (t.ok()) (void)(*t)->store();
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("bind");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (listen(listen_fd_, 128) < 0) {
    Status st = Errno("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) <
      0) {
    Status st = Errno("getsockname");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(bound.sin_port);
  FF_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  int pipe_fds[2];
  if (pipe(pipe_fds) < 0) {
    Status st = Errno("pipe");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  FF_RETURN_IF_ERROR(SetNonBlocking(wake_read_fd_));
  FF_RETURN_IF_ERROR(SetNonBlocking(wake_write_fd_));

  {
    std::lock_guard<std::mutex> lk(writer_mu_);
    writer_stop_ = false;
  }
  writer_thread_ = std::thread([this] { WriterLoop(); });
  event_thread_ = std::thread([this] { EventLoop(); });
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  WakeEventThread();
  if (event_thread_.joinable()) event_thread_.join();

  // Quiesce: session tasks spawn writer jobs and writer jobs spawn
  // continuation tasks, but with the event thread gone nothing NEW
  // enters the system — so "no task in flight anywhere and the writer
  // idle" is a stable fixpoint, not a race window. The event thread's
  // flushing duty moves here: parked response bytes still reach their
  // clients (the no-torn-frames drain guarantee), bounded by the
  // write-stall timeout and, for the whole backlog, drain_deadline_ms.
  const int64_t drain_start = obs::RuntimeNowNs();
  bool forced = false;
  for (;;) {
    pool_->Wait();
    bool busy = false;
    for (auto& [fd, s] : sessions_) {
      FlushOutbound(s);
      std::lock_guard<std::mutex> lk(s->mu);
      if (s->fatal) s->obuf.clear();
      busy |= s->task_in_flight || !s->pending.empty() || !s->obuf.empty();
    }
    {
      std::lock_guard<std::mutex> lk(writer_mu_);
      busy |= !writer_jobs_.empty() || writer_busy_;
    }
    if (!busy) break;
    if (!forced && config_.drain_deadline_ms > 0 &&
        obs::RuntimeNowNs() - drain_start >
            static_cast<int64_t>(config_.drain_deadline_ms) * 1000000) {
      // Deadline: drop queued-but-unstarted work and parked bytes.
      // Tasks already executing a statement still run to completion —
      // the only thing a deadline cannot do is abort SQL mid-flight.
      forced = true;
      counters_.drain_forced.fetch_add(1, std::memory_order_relaxed);
      for (auto& [fd, s] : sessions_) {
        std::lock_guard<std::mutex> lk(s->mu);
        s->fatal = true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  {
    std::lock_guard<std::mutex> lk(writer_mu_);
    writer_stop_ = true;
  }
  writer_cv_.notify_all();
  if (writer_thread_.joinable()) writer_thread_.join();

  for (auto& [fd, s] : sessions_) {
    s->state->closed.store(true, std::memory_order_release);
    close(fd);
  }
  sessions_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
}

void Server::WakeEventThread() {
  char b = 1;
  ssize_t ignored = write(wake_write_fd_, &b, 1);  // EAGAIN = already awake
  (void)ignored;
}

util::Status Server::SubmitWrite(std::function<util::Status()> job) {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server not running");
  }
  auto j = std::make_unique<WriterJob>();
  j->fn = std::move(job);
  std::future<Status> done = j->done.get_future();
  {
    std::lock_guard<std::mutex> lk(writer_mu_);
    writer_jobs_.push_back(std::move(j));
  }
  writer_cv_.notify_one();
  return done.get();
}

void Server::WriterLoop() {
  for (;;) {
    std::unique_ptr<WriterJob> job;
    {
      std::unique_lock<std::mutex> lk(writer_mu_);
      writer_cv_.wait(lk, [this] { return writer_stop_ || !writer_jobs_.empty(); });
      if (writer_jobs_.empty() && writer_stop_) return;
      job = std::move(writer_jobs_.front());
      writer_jobs_.pop_front();
      writer_busy_ = true;
    }
    Status st;
    {
      std::unique_lock<std::shared_mutex> exclusive(gate_.exclusive());
      st = job->fn();
      // Re-warm lazy scan state while still exclusive, so the read side
      // never executes the const-but-mutating zone/bitmap refresh.
      for (const std::string& name : db_.TableNames()) {
        auto t = db_.table(name);
        if (t.ok()) (void)(*t)->store();
      }
    }
    job->done.set_value(std::move(st));
    {
      std::lock_guard<std::mutex> lk(writer_mu_);
      writer_busy_ = false;
    }
  }
}

void Server::EventLoop() {
  std::vector<pollfd> fds;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    bool want_tick = false;
    for (auto& [fd, s] : sessions_) {
      short events = 0;
      {
        std::lock_guard<std::mutex> lk(s->mu);
        // A poisoned or finished stream needs no more reads; the session
        // only waits for its task to drain before reaping.
        if (!s->eof && !s->parse_dead) events = POLLIN;
        if (!s->obuf.empty() && !s->fatal) {
          events |= POLLOUT;
          want_tick = true;  // the write-stall clock is running
        }
      }
      fds.push_back({fd, events, 0});
    }
    // Idle and stall deadlines need the loop to wake even when no fd
    // fires; 20 ms bounds their detection granularity.
    if (config_.idle_timeout_ms > 0 && !sessions_.empty()) want_tick = true;
    if (poll(fds.data(), fds.size(), want_tick ? 20 : -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    if (fds[1].revents & POLLIN) AcceptNew();
    for (size_t i = 2; i < fds.size(); ++i) {
      auto it = sessions_.find(fds[i].fd);
      if (it == sessions_.end()) continue;
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        PumpSession(it->second);
      }
      if (fds[i].revents & POLLOUT) FlushOutbound(it->second);
    }
    // Deadline sweep: write-stall (also checked inside FlushOutbound,
    // but a reader that never becomes writable never fires POLLOUT) and
    // idle sessions.
    const int64_t now = obs::RuntimeNowNs();
    for (auto& [fd, s] : sessions_) {
      std::lock_guard<std::mutex> lk(s->mu);
      if (s->fatal) continue;
      if (!s->obuf.empty() && config_.write_stall_timeout_ms > 0 &&
          now - s->last_progress_ns >
              static_cast<int64_t>(config_.write_stall_timeout_ms) * 1000000) {
        counters_.stall_closed.fetch_add(1, std::memory_order_relaxed);
        s->fatal = true;
        s->obuf.clear();
        continue;
      }
      // rbuf may hold a half-received frame — a client wedged mid-frame
      // is exactly the slow-loris shape the idle timeout is for.
      if (config_.idle_timeout_ms > 0 && !s->task_in_flight &&
          s->pending.empty() && s->obuf.empty() &&
          now - s->last_activity_ns >
              static_cast<int64_t>(config_.idle_timeout_ms) * 1000000) {
        counters_.idle_closed.fetch_add(1, std::memory_order_relaxed);
        s->fatal = true;  // nothing buffered: the peer sees a clean close
      }
    }
    // Reap sessions whose tasks flagged them done/fatal. An EOF session
    // still flushing parked bytes is NOT reaped — the peer half-closed
    // and may well be reading our responses (that is what a pipelined
    // client draining its tail looks like).
    std::vector<int> reap;
    {
      std::lock_guard<std::mutex> lk(reap_mu_);
      reap.swap(reap_fds_);
    }
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      Session& s = *it->second;
      bool close_now = false;
      {
        std::lock_guard<std::mutex> lk(s.mu);
        close_now = !s.task_in_flight && s.pending.empty() &&
                    (s.fatal || (s.eof && s.obuf.empty()));
      }
      if (close_now) {
        s.state->closed.store(true, std::memory_order_release);
        close(it->first);
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Server::AcceptNew() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: poll again
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    SetNoDelay(fd);
    if (config_.max_connections > 0 &&
        sessions_.size() >= config_.max_connections) {
      // Refuse with a reason: one typed kError frame, then close. The
      // frame is a few dozen bytes into a fresh socket buffer, so the
      // non-blocking send cannot meaningfully fall short.
      counters_.refused_connections.fetch_add(1, std::memory_order_relaxed);
      WireWriter w;
      w.U8(static_cast<uint8_t>(util::StatusCode::kUnavailable));
      const std::string msg =
          "server at connection limit (" +
          std::to_string(config_.max_connections) + ")";
      w.Raw(msg.data(), msg.size());
      std::string frame = EncodeFrame(Opcode::kError, w.buffer());
      (void)send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      close(fd);
      continue;
    }
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    auto s = std::make_shared<Session>();
    s->fd = fd;
    s->state = std::make_shared<SessionState>();
    s->last_activity_ns = obs::RuntimeNowNs();
    {
      std::lock_guard<std::mutex> lk(registry_mu_);
      s->state->id = next_session_id_++;
      registry_.push_back(s->state);
    }
    sessions_.emplace(fd, std::move(s));
  }
}

void Server::PumpSession(const std::shared_ptr<Session>& s) {
  char buf[1 << 16];
  bool saw_eof = false;
  for (;;) {
    ssize_t n = read(s->fd, buf, sizeof(buf));
    if (n > 0) {
      s->rbuf.append(buf, static_cast<size_t>(n));
      s->state->bytes_in.fetch_add(static_cast<uint64_t>(n),
                                   std::memory_order_relaxed);
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    saw_eof = true;  // hard error: treat as disconnect
    break;
  }

  const int64_t now = obs::RuntimeNowNs();
  bool poisoned = false;
  {
    std::lock_guard<std::mutex> lk(s->mu);
    s->last_activity_ns = now;
    if (!s->parse_dead) {
      for (;;) {
        FrameView f;
        size_t consumed = 0;
        FrameParse p =
            ParseFrame(s->rbuf, config_.max_frame_bytes, &f, &consumed);
        if (p == FrameParse::kNeedMore) break;
        if (p == FrameParse::kBad) {
          PendingFrame bad;
          bad.poisoned = true;
          bad.enqueue_ns = now;
          s->pending.push_back(std::move(bad));
          pending_frames_.fetch_add(1, std::memory_order_relaxed);
          s->parse_dead = true;
          poisoned = true;
          break;
        }
        PendingFrame pf;
        pf.opcode = f.opcode;
        pf.body.assign(f.body.data(), f.body.size());
        pf.enqueue_ns = now;
        // Admission control: a frame arriving over the global budget is
        // queued SHED — it keeps its place in the session's order (the
        // protocol is strictly in-order per session) but will be
        // answered kUnavailable without ever reaching the engine.
        pf.shed = config_.max_pending_frames > 0 &&
                  pending_frames_.load(std::memory_order_relaxed) >=
                      config_.max_pending_frames;
        s->pending.push_back(std::move(pf));
        pending_frames_.fetch_add(1, std::memory_order_relaxed);
        s->rbuf.erase(0, consumed);
      }
      if (poisoned) s->rbuf.clear();
    }
    if (saw_eof) s->eof = true;
  }
  if (poisoned) shutdown(s->fd, SHUT_RD);
  ScheduleDrain(s);
}

void Server::ScheduleDrain(const std::shared_ptr<Session>& s) {
  bool submit = false;
  {
    std::lock_guard<std::mutex> lk(s->mu);
    if (!s->task_in_flight && !s->pending.empty() && !s->fatal) {
      s->task_in_flight = true;
      submit = true;
    }
  }
  if (submit) {
    std::shared_ptr<Session> sp = s;
    pool_->Submit([this, sp] { DrainSession(sp); });
  }
}

void Server::DrainSession(std::shared_ptr<Session> s) {
  for (;;) {
    PendingFrame frame;
    {
      std::lock_guard<std::mutex> lk(s->mu);
      if (s->pending.empty() || s->fatal) {
        if (s->fatal) {
          pending_frames_.fetch_sub(s->pending.size(),
                                    std::memory_order_relaxed);
          s->pending.clear();
        }
        s->task_in_flight = false;
        s->last_activity_ns = obs::RuntimeNowNs();
        break;
      }
      frame = std::move(s->pending.front());
      s->pending.pop_front();
    }
    pending_frames_.fetch_sub(1, std::memory_order_relaxed);
    const uint64_t wait_ns = static_cast<uint64_t>(
        std::max<int64_t>(0, obs::RuntimeNowNs() - frame.enqueue_ns));
    breakdown_.queue_wait_ns.Record(wait_ns);
    s->state->queue_wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);

    if (frame.poisoned) {
      SendError(*s, Status::ParseError(
                        "malformed frame: declared length is zero or exceeds "
                        "the server frame limit"));
      std::lock_guard<std::mutex> lk(s->mu);
      s->fatal = true;
      continue;
    }

    // Shed before classify/execute: an over-budget frame costs one
    // error frame, never engine time (and never the writer queue).
    if (frame.shed) {
      counters_.shed_frames.fetch_add(1, std::memory_order_relaxed);
      s->state->shed.fetch_add(1, std::memory_order_relaxed);
      SendError(*s, Status::Unavailable(
                        "overloaded: admission budget exceeded (" +
                        std::to_string(config_.max_pending_frames) +
                        " frames queued)"));
      continue;
    }

    // Mutating frames hand the session to the writer thread and RETURN
    // with task_in_flight still true: blocking here on the writer would
    // deadlock when this task was help-first-stolen by a worker already
    // holding the shared gate (the writer would wait on that very
    // holder). The writer sends the response and re-submits the drain.
    if (HandOffIfWrite(s, frame)) return;

    HandleFrame(*s, frame);
  }
  // Out of the loop: task slot released; tell the event thread in case
  // the session is now reapable (fatal or EOF with nothing pending).
  bool reap = false;
  {
    std::lock_guard<std::mutex> lk(s->mu);
    reap = s->fatal || s->eof;
  }
  if (reap) {
    std::lock_guard<std::mutex> lk(reap_mu_);
    reap_fds_.push_back(s->fd);
  }
  WakeEventThread();
}

bool Server::HandOffIfWrite(const std::shared_ptr<Session>& s,
                            PendingFrame& frame) {
  std::function<void()> job;
  if (frame.opcode == Opcode::kQuery) {
    WireReader r(frame.body);
    auto flags = r.U8();
    if (!flags.ok()) return false;  // malformed: read path answers it
    std::string sql(r.Rest());
    if (!IsWriteStatement(sql)) return false;
    uint8_t fl = *flags;
    job = [this, s, sql = std::move(sql), fl] {
      const int64_t t0 = obs::RuntimeNowNs();
      StatusOr<ResultSet> result = db_.Sql(sql);
      RecordExec(*s, t0);
      if (result.ok()) {
        SendResult(*s, *result, fl);
      } else {
        SendError(*s, result.status());
      }
    };
  } else if (frame.opcode == Opcode::kRefreshStats) {
    job = [this, s] {
      const int64_t t0 = obs::RuntimeNowNs();
      Status st = RefreshRuntimeTablesLocked();
      RecordExec(*s, t0);
      if (st.ok()) {
        SendFrame(*s, Opcode::kStatsOk, "");
      } else {
        SendError(*s, st);
      }
    };
  } else {
    return false;
  }

  s->state->queries.fetch_add(1, std::memory_order_relaxed);
  auto j = std::make_unique<WriterJob>();
  // The job's Status goes nowhere (the response already went over the
  // wire); fulfil the promise so the writer loop stays uniform.
  j->fn = [this, s, job = std::move(job)]() {
    job();
    std::shared_ptr<Session> sp = s;
    pool_->Submit([this, sp] { DrainSession(sp); });
    return Status::OK();
  };
  {
    std::lock_guard<std::mutex> lk(writer_mu_);
    writer_jobs_.push_back(std::move(j));
  }
  writer_cv_.notify_one();
  return true;
}

void Server::RecordExec(Session& s, int64_t start_ns) {
  const uint64_t ns = static_cast<uint64_t>(
      std::max<int64_t>(0, obs::RuntimeNowNs() - start_ns));
  breakdown_.exec_ns.Record(ns);
  s.state->exec_ns.fetch_add(ns, std::memory_order_relaxed);
}

void Server::HandleFrame(Session& s, PendingFrame& frame) {
  switch (frame.opcode) {
    case Opcode::kQuery:
      HandleQuery(s, frame);
      return;
    case Opcode::kPrepare:
      HandlePrepare(s, frame);
      return;
    case Opcode::kExecute:
      HandleExecute(s, frame);
      return;
    case Opcode::kCloseStmt: {
      WireReader r(frame.body);
      auto id = r.U32();
      if (!id.ok()) {
        SendError(s, id.status());
        return;
      }
      if (s.stmts.erase(*id) == 0) {
        SendError(s, Status::NotFound("no prepared statement with id " +
                                      std::to_string(*id)));
        return;
      }
      s.state->prepared_open.fetch_sub(1, std::memory_order_relaxed);
      SendFrame(s, Opcode::kStmtClosed, "");
      return;
    }
    default:
      SendError(s, Status::InvalidArgument(
                       "unknown opcode " +
                       std::to_string(static_cast<int>(frame.opcode))));
      return;
  }
}

void Server::HandleQuery(Session& s, const PendingFrame& frame) {
  s.state->queries.fetch_add(1, std::memory_order_relaxed);
  WireReader r(frame.body);
  auto flags = r.U8();
  if (!flags.ok()) {
    SendError(s, flags.status());
    return;
  }
  std::string sql(r.Rest());
  const int64_t t0 = obs::RuntimeNowNs();
  StatusOr<ResultSet> result = RunRead(sql);
  RecordExec(s, t0);
  if (result.ok()) {
    SendResult(s, *result, *flags);
  } else {
    SendError(s, result.status());
  }
}

void Server::HandlePrepare(Session& s, const PendingFrame& frame) {
  std::string sql(frame.body);
  StatusOr<statsdb::PreparedStatement> ps = [&] {
    gate_.LockShared();
    SharedLock guard([this] { gate_.UnlockShared(); });
    return db_.Prepare(sql);
  }();
  if (!ps.ok()) {
    SendError(s, ps.status());
    return;
  }
  const uint32_t id = s.next_stmt_id++;
  const uint32_t nparams = static_cast<uint32_t>(ps->num_params());
  s.stmts.emplace(id, std::move(*ps));
  s.state->prepared_open.fetch_add(1, std::memory_order_relaxed);
  WireWriter w;
  w.U32(id);
  w.U32(nparams);
  SendFrame(s, Opcode::kPrepared, w.buffer());
}

void Server::HandleExecute(Session& s, const PendingFrame& frame) {
  s.state->queries.fetch_add(1, std::memory_order_relaxed);
  WireReader r(frame.body);
  uint32_t id = 0;
  uint8_t flags = 0;
  std::vector<statsdb::Value> params;
  {
    auto idv = r.U32();
    if (!idv.ok()) return SendError(s, idv.status());
    id = *idv;
    auto fl = r.U8();
    if (!fl.ok()) return SendError(s, fl.status());
    flags = *fl;
    auto np = r.U16();
    if (!np.ok()) return SendError(s, np.status());
    params.reserve(*np);
    for (uint16_t i = 0; i < *np; ++i) {
      auto v = r.Value();
      if (!v.ok()) return SendError(s, v.status());
      params.push_back(std::move(*v));
    }
  }
  auto it = s.stmts.find(id);
  if (it == s.stmts.end()) {
    SendError(s, Status::NotFound("no prepared statement with id " +
                                  std::to_string(id)));
    return;
  }
  const int64_t t0 = obs::RuntimeNowNs();
  StatusOr<ResultSet> result = [&] {
    gate_.LockShared();
    SharedLock guard([this] { gate_.UnlockShared(); });
    return it->second.Execute(params);
  }();
  RecordExec(s, t0);
  if (result.ok()) {
    SendResult(s, *result, flags);
  } else {
    SendError(s, result.status());
  }
}

util::StatusOr<statsdb::ResultSet> Server::RunRead(const std::string& sql) {
  gate_.LockShared();
  SharedLock guard([this] { gate_.UnlockShared(); });
  return db_.Sql(sql);
}

util::Status Server::RefreshRuntimeTables() {
  return SubmitWrite([this] { return RefreshRuntimeTablesLocked(); });
}

util::Status Server::RefreshRuntimeTablesLocked() {
  // Snapshots first: the loads below mutate tables (and thereby the
  // cache stats they export). Self-observation is by design — clients
  // read these tables back over the wire.
  const statsdb::QueryCacheStats cache_stats = db_.cache().Stats();
  std::vector<obs::SessionRuntime> sessions;
  for (const SessionSnapshot& snap : SessionStats()) {
    obs::SessionRuntime sr;
    sr.id = snap.id;
    sr.closed = snap.closed;
    sr.queries = snap.queries;
    sr.errors = snap.errors;
    sr.shed = snap.shed;
    sr.rows_out = snap.rows_out;
    sr.bytes_in = snap.bytes_in;
    sr.bytes_out = snap.bytes_out;
    sr.prepared_open = snap.prepared_open;
    sr.queue_wait_ms = Ms(snap.queue_wait_ns);
    sr.exec_ms = Ms(snap.exec_ns);
    sr.serialize_ms = Ms(snap.serialize_ns);
    sr.send_ms = Ms(snap.send_ns);
    sessions.push_back(sr);
  }
  obs::ServerRuntime server;
  server.accepted = counters_.accepted.load(std::memory_order_relaxed);
  server.refused_connections =
      counters_.refused_connections.load(std::memory_order_relaxed);
  server.shed_frames = counters_.shed_frames.load(std::memory_order_relaxed);
  server.stall_closed = counters_.stall_closed.load(std::memory_order_relaxed);
  server.overflow_closed =
      counters_.overflow_closed.load(std::memory_order_relaxed);
  server.idle_closed = counters_.idle_closed.load(std::memory_order_relaxed);
  server.drain_forced = counters_.drain_forced.load(std::memory_order_relaxed);
  FF_RETURN_IF_ERROR(obs::LoadRuntimeCache(cache_stats, &db_).status());
  FF_RETURN_IF_ERROR(obs::LoadRuntimeSessions(sessions, &db_).status());
  FF_RETURN_IF_ERROR(obs::LoadRuntimeServer(server, &db_).status());
  return Status::OK();
}

std::vector<SessionSnapshot> Server::SessionStats() const {
  std::vector<std::shared_ptr<SessionState>> states;
  {
    std::lock_guard<std::mutex> lk(registry_mu_);
    states = registry_;
  }
  std::vector<SessionSnapshot> out;
  out.reserve(states.size());
  for (const auto& st : states) {
    SessionSnapshot s;
    s.id = st->id;
    s.closed = st->closed.load(std::memory_order_acquire);
    s.queries = st->queries.load(std::memory_order_relaxed);
    s.errors = st->errors.load(std::memory_order_relaxed);
    s.shed = st->shed.load(std::memory_order_relaxed);
    s.rows_out = st->rows_out.load(std::memory_order_relaxed);
    s.bytes_in = st->bytes_in.load(std::memory_order_relaxed);
    s.bytes_out = st->bytes_out.load(std::memory_order_relaxed);
    s.prepared_open = st->prepared_open.load(std::memory_order_relaxed);
    s.queue_wait_ns = st->queue_wait_ns.load(std::memory_order_relaxed);
    s.exec_ns = st->exec_ns.load(std::memory_order_relaxed);
    s.serialize_ns = st->serialize_ns.load(std::memory_order_relaxed);
    s.send_ns = st->send_ns.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

void Server::SendResult(Session& s, const statsdb::ResultSet& rs,
                        uint8_t flags) {
  s.state->rows_out.fetch_add(rs.rows.size(), std::memory_order_relaxed);
  if ((flags & kFlagRowAtATime) == 0) {
    // Batched path: one columnar frame, one send.
    const int64_t t0 = obs::RuntimeNowNs();
    WireWriter body;
    EncodeResultSet(rs, &body);
    std::string frame = EncodeFrame(Opcode::kResultSet, body.buffer());
    RecordSerialize(s, t0);
    (void)SendAll(s, frame);
    return;
  }
  // Naive baseline: header frame, one frame AND one send per row, then a
  // trailer. Kept deliberately write-per-row so perf_server can measure
  // what batching buys.
  {
    const int64_t t0 = obs::RuntimeNowNs();
    WireWriter header;
    EncodeSchema(rs.schema, &header);
    std::string frame = EncodeFrame(Opcode::kRowHeader, header.buffer());
    RecordSerialize(s, t0);
    if (!SendAll(s, frame).ok()) return;
  }
  const size_t ncols = rs.schema.num_columns();
  for (const statsdb::Row& row : rs.rows) {
    const int64_t t0 = obs::RuntimeNowNs();
    WireWriter w;
    for (size_t c = 0; c < ncols; ++c) w.Value(row[c]);
    std::string frame = EncodeFrame(Opcode::kRow, w.buffer());
    RecordSerialize(s, t0);
    if (!SendAll(s, frame).ok()) return;
  }
  const int64_t t0 = obs::RuntimeNowNs();
  WireWriter trailer;
  trailer.U64(rs.rows.size());
  std::string frame = EncodeFrame(Opcode::kRowEnd, trailer.buffer());
  RecordSerialize(s, t0);
  (void)SendAll(s, frame);
}

void Server::RecordSerialize(Session& s, int64_t start_ns) {
  const uint64_t ns = static_cast<uint64_t>(
      std::max<int64_t>(0, obs::RuntimeNowNs() - start_ns));
  breakdown_.serialize_ns.Record(ns);
  s.state->serialize_ns.fetch_add(ns, std::memory_order_relaxed);
}

void Server::SendError(Session& s, const util::Status& st) {
  s.state->errors.fetch_add(1, std::memory_order_relaxed);
  WireWriter w;
  w.U8(static_cast<uint8_t>(st.code()));
  w.Raw(st.message().data(), st.message().size());
  SendFrame(s, Opcode::kError, w.buffer());
}

void Server::SendFrame(Session& s, Opcode op, std::string_view body) {
  (void)SendAll(s, EncodeFrame(op, body));
}

util::Status Server::ParkLocked(Session& s, std::string_view rest) {
  if (config_.max_outbound_buffer_bytes > 0 &&
      s.obuf.size() + rest.size() > config_.max_outbound_buffer_bytes) {
    counters_.overflow_closed.fetch_add(1, std::memory_order_relaxed);
    s.obuf.clear();  // a capped reader never gets a torn tail, just EOF
    return Status::IoError(
        "outbound buffer cap exceeded (" +
        std::to_string(config_.max_outbound_buffer_bytes) +
        " bytes): slow reader closed");
  }
  if (s.obuf.empty()) s.last_progress_ns = obs::RuntimeNowNs();
  s.obuf.append(rest.data(), rest.size());
  return Status::OK();
}

util::Status Server::SendAll(Session& s, std::string_view data) {
  const int64_t t0 = obs::RuntimeNowNs();
  size_t sent = 0;
  bool parked = false;
  Status result = Status::OK();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.fatal) return Status::IoError("session closed");
    if (!s.obuf.empty()) {
      // Bytes are already parked: append behind them (frame order) and
      // let the event thread's POLLOUT flush carry everything.
      result = ParkLocked(s, data);
      parked = result.ok();
    } else {
      size_t off = 0;
      while (off < data.size()) {
        ssize_t n = send(s.fd, data.data() + off, data.size() - off,
                         MSG_NOSIGNAL);
        if (n > 0) {
          off += static_cast<size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          // The kernel buffer is full. The old path blocked here (up
          // to 10 s) on a poll — stalling a pool worker, or worse the
          // writer thread, on ONE slow reader. Now the remainder parks
          // and this thread moves on.
          result = ParkLocked(s, data.substr(off));
          parked = result.ok();
          break;
        }
        result = Errno("send");  // EPIPE/ECONNRESET: peer went away
        break;
      }
      sent = off;
    }
    if (!result.ok()) s.fatal = true;
  }
  const uint64_t ns = static_cast<uint64_t>(
      std::max<int64_t>(0, obs::RuntimeNowNs() - t0));
  breakdown_.send_ns.Record(ns);
  s.state->send_ns.fetch_add(ns, std::memory_order_relaxed);
  if (sent > 0) {
    s.state->bytes_out.fetch_add(sent, std::memory_order_relaxed);
  }
  // The event thread must learn about new POLLOUT interest (parked
  // bytes) or a newly fatal session either way.
  if (parked || !result.ok()) WakeEventThread();
  return result;
}

void Server::FlushOutbound(const std::shared_ptr<Session>& s) {
  std::lock_guard<std::mutex> lk(s->mu);
  if (s->fatal || s->obuf.empty()) return;
  size_t sent = 0;
  while (sent < s->obuf.size()) {
    ssize_t n = send(s->fd, s->obuf.data() + sent, s->obuf.size() - sent,
                     MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    s->fatal = true;  // peer went away; parked bytes die with it
    s->obuf.clear();
    return;
  }
  if (sent > 0) {
    s->obuf.erase(0, sent);
    s->last_progress_ns = obs::RuntimeNowNs();
    s->state->bytes_out.fetch_add(sent, std::memory_order_relaxed);
  }
}

}  // namespace net
}  // namespace ff
