#include "net/wire.h"

#include <bit>
#include <cstring>

namespace ff {
namespace net {

namespace {

// Value tags on the wire (distinct from DataType: wire layout contract).
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt64 = 2;
constexpr uint8_t kTagDouble = 3;
constexpr uint8_t kTagString = 4;

}  // namespace

void WireWriter::U16(uint16_t v) {
  char b[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  buf_.append(b, 2);
}

void WireWriter::U32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 4);
}

void WireWriter::U64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void WireWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void WireWriter::Raw(const void* data, size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void WireWriter::Value(const statsdb::Value& v) {
  switch (v.type()) {
    case statsdb::DataType::kNull:
      U8(kTagNull);
      break;
    case statsdb::DataType::kBool:
      U8(kTagBool);
      U8(v.bool_value() ? 1 : 0);
      break;
    case statsdb::DataType::kInt64:
      U8(kTagInt64);
      I64(v.int64_value());
      break;
    case statsdb::DataType::kDouble:
      U8(kTagDouble);
      F64(v.double_value());
      break;
    case statsdb::DataType::kString:
      U8(kTagString);
      Str(v.string_value());
      break;
  }
}

util::Status WireReader::Need(size_t n) const {
  if (data_.size() - pos_ < n) {
    return util::Status::ParseError(
        "truncated frame: need " + std::to_string(n) + " bytes, have " +
        std::to_string(data_.size() - pos_));
  }
  return util::Status::OK();
}

util::StatusOr<uint8_t> WireReader::U8() {
  FF_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

util::StatusOr<uint16_t> WireReader::U16() {
  FF_RETURN_IF_ERROR(Need(2));
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 2;
  return v;
}

util::StatusOr<uint32_t> WireReader::U32() {
  FF_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

util::StatusOr<uint64_t> WireReader::U64() {
  FF_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

util::StatusOr<int64_t> WireReader::I64() {
  FF_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

util::StatusOr<double> WireReader::F64() {
  FF_ASSIGN_OR_RETURN(uint64_t v, U64());
  return std::bit_cast<double>(v);
}

util::StatusOr<std::string> WireReader::Str() {
  FF_ASSIGN_OR_RETURN(uint32_t n, U32());
  FF_RETURN_IF_ERROR(Need(n));
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

util::StatusOr<statsdb::Value> WireReader::Value() {
  FF_ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (tag) {
    case kTagNull:
      return statsdb::Value::Null();
    case kTagBool: {
      FF_ASSIGN_OR_RETURN(uint8_t b, U8());
      return statsdb::Value::Bool(b != 0);
    }
    case kTagInt64: {
      FF_ASSIGN_OR_RETURN(int64_t i, I64());
      return statsdb::Value::Int64(i);
    }
    case kTagDouble: {
      FF_ASSIGN_OR_RETURN(double d, F64());
      return statsdb::Value::Double(d);
    }
    case kTagString: {
      FF_ASSIGN_OR_RETURN(std::string s, Str());
      return statsdb::Value::String(std::move(s));
    }
    default:
      return util::Status::ParseError("unknown value tag " +
                                      std::to_string(tag));
  }
}

util::StatusOr<std::string_view> WireReader::Bytes(size_t n) {
  FF_RETURN_IF_ERROR(Need(n));
  std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::string_view WireReader::Rest() {
  std::string_view out = data_.substr(pos_);
  pos_ = data_.size();
  return out;
}

std::string EncodeFrame(Opcode op, std::string_view body) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + 1 + body.size());
  uint32_t len = static_cast<uint32_t>(1 + body.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  frame.push_back(static_cast<char>(op));
  frame.append(body.data(), body.size());
  return frame;
}

FrameParse ParseFrame(std::string_view stream, uint32_t max_frame_bytes,
                      FrameView* out, size_t* consumed) {
  if (stream.size() < kFrameHeaderBytes) return FrameParse::kNeedMore;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(stream[i])) << (8 * i);
  }
  if (len == 0 || len > max_frame_bytes) return FrameParse::kBad;
  if (stream.size() < kFrameHeaderBytes + len) return FrameParse::kNeedMore;
  out->opcode = static_cast<Opcode>(stream[kFrameHeaderBytes]);
  out->body = stream.substr(kFrameHeaderBytes + 1, len - 1);
  *consumed = kFrameHeaderBytes + len;
  return FrameParse::kFrame;
}

}  // namespace net
}  // namespace ff
