#include "net/retrying_client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "net/server.h"  // IsWriteStatement
#include "util/status.h"

namespace ff {
namespace net {

namespace {

using statsdb::ResultSet;
using util::Status;
using util::StatusOr;

/// Uniform error access across Status and StatusOr<T> results.
inline const Status& AsStatus(const Status& s) { return s; }
template <typename T>
const Status& AsStatus(const StatusOr<T>& s) {
  return s.status();
}

}  // namespace

fault::RetryPolicy DefaultClientRetryPolicy() {
  fault::RetryPolicy p;
  p.max_attempts = 8;
  p.base_backoff = 0.002;  // seconds: 2 ms first retry
  p.backoff_multiplier = 2.0;
  p.max_backoff = 0.25;  // cap any single wait at 250 ms
  p.jitter = 0.25;
  return p;
}

RetryingClient::RetryingClient(std::string host, uint16_t port,
                               RetryingClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      rng_(options_.seed) {}

void RetryingClient::DropConnection() {
  client_.Close();
  for (auto& [id, entry] : stmts_) entry.valid = false;
}

util::Status RetryingClient::EnsureConnected() {
  if (client_.connected()) return Status::OK();
  auto c = Client::Connect(host_, port_, options_.client);
  if (!c.ok()) return c.status();
  client_ = std::move(*c);
  ++stats_.connects;
  // Server-side statement ids belong to the dead session; anything
  // prepared there must be prepared again before use.
  for (auto& [id, entry] : stmts_) entry.valid = false;
  return Status::OK();
}

void RetryingClient::Backoff(int retry) {
  const double seconds = options_.policy.NextDelay(retry, &rng_);
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

template <typename Fn>
auto RetryingClient::RunWithRetry(bool idempotent, Fn&& attempt)
    -> decltype(attempt()) {
  int failures = 0;
  for (;;) {
    bool retryable;
    decltype(attempt()) result = [&]() -> decltype(attempt()) {
      Status conn = EnsureConnected();
      if (!conn.ok()) {
        // A failed connect risked nothing — the request never left this
        // process — so even a mutation may retry it.
        retryable = true;
        return conn;
      }
      auto r = attempt();
      if (r.ok()) {
        retryable = false;
        return r;
      }
      if (client_.last_error_was_server_reported()) {
        // The exchange worked; the error IS the answer. Retrying a
        // deterministic error just repeats it — except kUnavailable,
        // which is the server asking us to come back later.
        retryable = options_.retry_unavailable && idempotent &&
                    AsStatus(r).code() == util::StatusCode::kUnavailable;
        if (retryable) DropConnection();
        return r;
      }
      // Transport failure: the connection is in an unknown state (a
      // response may be half-read, a request half-written) — it cannot
      // be reused either way.
      DropConnection();
      retryable = idempotent;
      return r;
    }();
    if (result.ok()) return result;
    if (!retryable) {
      ++stats_.not_retried;
      return result;
    }
    ++failures;
    if (!options_.policy.AllowsRetry(failures)) {
      ++stats_.gave_up;
      return result;
    }
    ++stats_.retries;
    Backoff(failures);
  }
}

util::Status RetryingClient::Connect() {
  return RunWithRetry(/*idempotent=*/true,
                      [&]() -> Status { return Status::OK(); });
}

util::StatusOr<ResultSet> RetryingClient::Query(const std::string& sql) {
  const bool write = IsWriteStatement(sql);
  return RunWithRetry(/*idempotent=*/!write, [&]() -> StatusOr<ResultSet> {
    return client_.Query(sql);
  });
}

util::StatusOr<ResultSet> RetryingClient::QueryRows(const std::string& sql) {
  const bool write = IsWriteStatement(sql);
  return RunWithRetry(/*idempotent=*/!write, [&]() -> StatusOr<ResultSet> {
    return client_.QueryRows(sql);
  });
}

util::StatusOr<RetryingClient::Handle> RetryingClient::Prepare(
    const std::string& sql) {
  // Preparing is pure parsing server-side — always idempotent, even for
  // a mutation statement (executing it is what isn't).
  auto prepared = RunWithRetry(
      /*idempotent=*/true,
      [&]() -> StatusOr<Client::Prepared> { return client_.Prepare(sql); });
  if (!prepared.ok()) return prepared.status();
  PreparedEntry entry;
  entry.sql = sql;
  entry.is_write = IsWriteStatement(sql);
  entry.valid = true;
  entry.server = *prepared;
  Handle h{next_handle_++};
  stmts_[h.id] = std::move(entry);
  return h;
}

util::StatusOr<ResultSet> RetryingClient::ExecutePrepared(
    Handle handle, const std::vector<statsdb::Value>& params) {
  auto it = stmts_.find(handle.id);
  if (it == stmts_.end()) {
    return Status::FailedPrecondition("unknown prepared-statement handle " +
                                      std::to_string(handle.id));
  }
  const bool write = it->second.is_write;
  return RunWithRetry(/*idempotent=*/!write, [&]() -> StatusOr<ResultSet> {
    PreparedEntry& entry = stmts_[handle.id];
    if (!entry.valid) {
      auto again = client_.Prepare(entry.sql);
      if (!again.ok()) return again.status();
      entry.server = *again;
      entry.valid = true;
      ++stats_.reprepared;
    }
    return client_.ExecutePrepared(entry.server, params);
  });
}

util::Status RetryingClient::ClosePrepared(Handle handle) {
  auto it = stmts_.find(handle.id);
  if (it == stmts_.end()) {
    return Status::FailedPrecondition("unknown prepared-statement handle " +
                                      std::to_string(handle.id));
  }
  Status st = Status::OK();
  if (it->second.valid && client_.connected()) {
    st = client_.ClosePrepared(it->second.server);
    if (!st.ok() && !client_.last_error_was_server_reported()) {
      // Transport died mid-close; the session (and its statements) are
      // gone with it, which closes the statement rather thoroughly.
      DropConnection();
      st = Status::OK();
    }
  }
  stmts_.erase(it);
  return st;
}

util::Status RetryingClient::RefreshServerStats() {
  return RunWithRetry(/*idempotent=*/true, [&]() -> Status {
    return client_.RefreshServerStats();
  });
}

}  // namespace net
}  // namespace ff
