// Blocking C++ client for the served statsdb wire protocol (wire.h).
//
// One Client is one connection is one session; it is NOT thread-safe —
// the protocol is strictly request/response per session, so share
// nothing and open one Client per client thread (that is exactly what
// bench/perf_server does). Errors from the server arrive as kError
// frames and surface as the original util::Status, code and message
// byte-identical to in-process Database::Execute — the equivalence
// property lane depends on that round trip.

#ifndef FF_NET_CLIENT_H_
#define FF_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire.h"
#include "statsdb/query.h"
#include "util/statusor.h"

namespace ff {
namespace net {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to a served statsdb (TCP, TCP_NODELAY).
  static util::StatusOr<Client> Connect(const std::string& host,
                                        uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Executes one SQL statement; the result arrives as a single batched
  /// kResultSet frame.
  util::StatusOr<statsdb::ResultSet> Query(const std::string& sql);
  /// Same statement, but requests the naive one-frame-per-row result
  /// framing (kRowHeader / kRow... / kRowEnd) — the perf_server
  /// baseline. Results are required to match Query() byte-for-byte.
  util::StatusOr<statsdb::ResultSet> QueryRows(const std::string& sql);

  struct Prepared {
    uint32_t id = 0;
    uint32_t num_params = 0;
  };
  util::StatusOr<Prepared> Prepare(const std::string& sql);
  util::StatusOr<statsdb::ResultSet> ExecutePrepared(
      const Prepared& stmt, const std::vector<statsdb::Value>& params,
      bool row_at_a_time = false);
  util::Status ClosePrepared(const Prepared& stmt);

  /// Pipelining split of ExecutePrepared: SendExecute pushes the
  /// request frame without waiting, ReadResult collects one batched
  /// response. The server executes a session's frames strictly in
  /// order, so responses arrive in send order; keeping a window of
  /// requests in flight amortizes the round trip — the throughput
  /// mode of bench/perf_server.
  util::Status SendExecute(const Prepared& stmt,
                           const std::vector<statsdb::Value>& params);
  util::StatusOr<statsdb::ResultSet> ReadResult();

  /// Asks the server to rebuild its runtime_cache / runtime_sessions
  /// tables, so a following Query() can read them.
  util::Status RefreshServerStats();

  /// Escape hatches for the malformed-frame hardening tests: push raw
  /// bytes at the server / read one raw frame back.
  util::Status SendRaw(std::string_view bytes);
  util::StatusOr<std::pair<Opcode, std::string>> ReadFrame();

 private:
  util::StatusOr<statsdb::ResultSet> RoundTrip(Opcode op,
                                               std::string_view body,
                                               bool row_at_a_time);
  util::StatusOr<statsdb::ResultSet> ReadRowStream();

  int fd_ = -1;
  std::string rbuf_;  // bytes received but not yet framed
};

}  // namespace net
}  // namespace ff

#endif  // FF_NET_CLIENT_H_
