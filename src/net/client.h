// Blocking C++ client for the served statsdb wire protocol (wire.h).
//
// One Client is one connection is one session; it is NOT thread-safe —
// the protocol is strictly request/response per session, so share
// nothing and open one Client per client thread (that is exactly what
// bench/perf_server does). Errors from the server arrive as kError
// frames and surface as the original util::Status, code and message
// byte-identical to in-process Database::Execute — the equivalence
// property lane depends on that round trip.
//
// I/O goes through a Transport (transport.h): by default a
// SocketTransport with the ClientOptions deadlines (all default 0 =
// wait forever, the fair-weather seed behaviour), optionally wrapped by
// the caller (chaos_transport.h injects faults this way). A read
// deadline turns a silent or wedged server into kDeadlineMissed
// instead of a hang; a connection that closes in the middle of a frame
// surfaces as ParseError("connection closed mid-frame") — distinct
// from the clean between-frames close — so retry logic can tell a torn
// response from an orderly goodbye.
//
// For resilience (reconnects, backoff, re-prepare, read-only
// auto-retry) layer RetryingClient (retrying_client.h) on top.

#ifndef FF_NET_CLIENT_H_
#define FF_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"
#include "statsdb/query.h"
#include "util/statusor.h"

namespace ff {
namespace net {

struct ClientOptions {
  /// Deadline on establishing the TCP connection; 0 = block forever.
  int connect_timeout_ms = 0;
  /// Deadline on any single read/write wait; 0 = block forever. An
  /// expired wait surfaces as kDeadlineMissed.
  int io_timeout_ms = 0;
  /// Optional decorator applied to the freshly connected transport
  /// (e.g. wrap in a ChaosTransport). Called once per successful
  /// connect — a RetryingClient's reconnects call it again, so a
  /// stateful wrapper can hand out per-connection fault schedules.
  std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)>
      wrap_transport;
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to a served statsdb (TCP, TCP_NODELAY).
  static util::StatusOr<Client> Connect(const std::string& host,
                                        uint16_t port);
  static util::StatusOr<Client> Connect(const std::string& host,
                                        uint16_t port,
                                        const ClientOptions& options);

  bool connected() const { return transport_ != nullptr; }
  void Close();

  /// Executes one SQL statement; the result arrives as a single batched
  /// kResultSet frame.
  util::StatusOr<statsdb::ResultSet> Query(const std::string& sql);
  /// Same statement, but requests the naive one-frame-per-row result
  /// framing (kRowHeader / kRow... / kRowEnd) — the perf_server
  /// baseline. Results are required to match Query() byte-for-byte.
  util::StatusOr<statsdb::ResultSet> QueryRows(const std::string& sql);

  struct Prepared {
    uint32_t id = 0;
    uint32_t num_params = 0;
  };
  util::StatusOr<Prepared> Prepare(const std::string& sql);
  util::StatusOr<statsdb::ResultSet> ExecutePrepared(
      const Prepared& stmt, const std::vector<statsdb::Value>& params,
      bool row_at_a_time = false);
  util::Status ClosePrepared(const Prepared& stmt);

  /// Pipelining split of ExecutePrepared: SendExecute pushes the
  /// request frame without waiting, ReadResult collects one batched
  /// response. The server executes a session's frames strictly in
  /// order, so responses arrive in send order; keeping a window of
  /// requests in flight amortizes the round trip — the throughput
  /// mode of bench/perf_server.
  util::Status SendExecute(const Prepared& stmt,
                           const std::vector<statsdb::Value>& params);
  util::StatusOr<statsdb::ResultSet> ReadResult();

  /// Asks the server to rebuild its runtime_cache / runtime_sessions /
  /// runtime_server tables, so a following Query() can read them.
  util::Status RefreshServerStats();

  /// True when the last failed operation's error was REPORTED BY THE
  /// SERVER as a typed kError frame (the request/response exchange
  /// itself worked); false when the failure was local or in transit
  /// (connect/send/recv error, deadline, torn or malformed frame).
  /// RetryingClient keys its retry decision on this: a server-reported
  /// error would just recur, a transport error is worth a reconnect.
  bool last_error_was_server_reported() const { return remote_error_; }

  /// Escape hatches for the malformed-frame hardening tests: push raw
  /// bytes at the server / read one raw frame back.
  util::Status SendRaw(std::string_view bytes);
  util::StatusOr<std::pair<Opcode, std::string>> ReadFrame();

 private:
  util::StatusOr<statsdb::ResultSet> RoundTrip(Opcode op,
                                               std::string_view body,
                                               bool row_at_a_time);
  util::StatusOr<statsdb::ResultSet> ReadRowStream();
  /// Decodes a kError frame body into the server's Status and flags it
  /// as server-reported.
  util::Status RemoteError(std::string_view body);

  std::unique_ptr<Transport> transport_;
  std::string rbuf_;  // bytes received but not yet framed
  bool remote_error_ = false;
};

}  // namespace net
}  // namespace ff

#endif  // FF_NET_CLIENT_H_
