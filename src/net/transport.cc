#include "net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/status.h"

namespace ff {
namespace net {

namespace {

using util::Status;

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Status Deadline(const char* what, int timeout_ms) {
  return Status::DeadlineMissed(std::string(what) + " deadline (" +
                                std::to_string(timeout_ms) + " ms) expired");
}

/// poll() for `events` on `fd`. timeout_ms 0 = wait forever. Returns OK
/// when ready, kDeadlineMissed on expiry, IoError on poll failure.
Status WaitFor(int fd, short events, int timeout_ms, const char* what) {
  pollfd p{fd, events, 0};
  for (;;) {
    int pr = poll(&p, 1, timeout_ms > 0 ? timeout_ms : -1);
    if (pr > 0) return Status::OK();
    if (pr == 0) return Deadline(what, timeout_ms);
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

}  // namespace

SocketTransport::~SocketTransport() { Close(); }

void SocketTransport::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
}

util::StatusOr<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const std::string& host, uint16_t port,
    const TransportDeadlines& deadlines) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (Status st = SetNonBlocking(fd); !st.ok()) {
    close(fd);
    return st;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      Status st = Errno("connect");
      close(fd);
      return st;
    }
    // Non-blocking connect: wait for writability, then read the final
    // verdict out of SO_ERROR (POLLOUT alone also fires on failure).
    Status st =
        WaitFor(fd, POLLOUT, deadlines.connect_timeout_ms, "connect");
    if (st.ok()) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
        st = Errno("getsockopt(SO_ERROR)");
      } else if (err != 0) {
        st = Status::IoError(std::string("connect: ") + std::strerror(err));
      }
    }
    if (!st.ok()) {
      close(fd);
      return st;
    }
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<SocketTransport>(
      new SocketTransport(fd, deadlines));
}

util::StatusOr<std::unique_ptr<SocketTransport>> SocketTransport::Adopt(
    int fd, const TransportDeadlines& deadlines) {
  if (fd < 0) return Status::InvalidArgument("Adopt: negative fd");
  if (Status st = SetNonBlocking(fd); !st.ok()) {
    close(fd);
    return st;
  }
  return std::unique_ptr<SocketTransport>(
      new SocketTransport(fd, deadlines));
}

util::StatusOr<size_t> SocketTransport::Send(const char* data, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("transport closed");
  for (;;) {
    ssize_t sent = send(fd_, data, n, MSG_NOSIGNAL);
    if (sent > 0) return static_cast<size_t>(sent);
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      FF_RETURN_IF_ERROR(
          WaitFor(fd_, POLLOUT, deadlines_.io_timeout_ms, "write"));
      continue;
    }
    return Errno("send");
  }
}

util::StatusOr<size_t> SocketTransport::Recv(char* buf, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("transport closed");
  for (;;) {
    ssize_t got = recv(fd_, buf, n, 0);
    if (got >= 0) return static_cast<size_t>(got);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      FF_RETURN_IF_ERROR(
          WaitFor(fd_, POLLIN, deadlines_.io_timeout_ms, "read"));
      continue;
    }
    return Errno("recv");
  }
}

}  // namespace net
}  // namespace ff
