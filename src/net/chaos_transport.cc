#include "net/chaos_transport.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "util/status.h"

namespace ff {
namespace net {

namespace {

using util::Status;

constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

/// Next event gap in bytes: exponential with the given mean, floored at
/// one byte so consecutive events land on distinct offsets.
uint64_t DrawGap(util::Rng* rng, double mean_bytes) {
  double g = rng->Exponential(1.0 / mean_bytes);
  if (g < 1.0) return 1;
  if (g > 1e15) return static_cast<uint64_t>(1e15);
  return static_cast<uint64_t>(g);
}

void Bump(std::atomic<uint64_t>* c) {
  c->fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::string ChaosCounters::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "splits=%llu delays=%llu corruptions=%llu resets=%llu",
                static_cast<unsigned long long>(
                    splits.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    delays.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    corruptions.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    resets.load(std::memory_order_relaxed)));
  return buf;
}

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> base,
                               const ChaosProfile& profile,
                               uint64_t conn_index,
                               ChaosCounters* counters)
    : base_(std::move(base)), profile_(profile), counters_(counters) {
  const util::Rng root(profile_.seed);
  // Eight substreams per connection: {split, delay, corrupt, reset} x
  // {outbound, inbound}. Split() is a pure function of (state, i), so a
  // connection's schedule is independent of how many connections came
  // before it — index conn_index replays identically across runs.
  InitSchedule(root, conn_index * 8, &out_);
  InitSchedule(root, conn_index * 8 + 4, &in_);
}

void ChaosTransport::InitSchedule(const util::Rng& root,
                                  uint64_t base_stream, Schedule* s) {
  s->split_rng = root.Split(base_stream + 0);
  s->delay_rng = root.Split(base_stream + 1);
  s->corrupt_rng = root.Split(base_stream + 2);
  s->reset_rng = root.Split(base_stream + 3);
  s->next_split = profile_.split_gap_bytes > 0
                      ? DrawGap(&s->split_rng, profile_.split_gap_bytes)
                      : kNever;
  s->next_delay = profile_.delay_gap_bytes > 0
                      ? DrawGap(&s->delay_rng, profile_.delay_gap_bytes)
                      : kNever;
  s->next_corrupt =
      profile_.corrupt_gap_bytes > 0
          ? DrawGap(&s->corrupt_rng, profile_.corrupt_gap_bytes)
          : kNever;
  s->next_reset = profile_.reset_gap_bytes > 0
                      ? DrawGap(&s->reset_rng, profile_.reset_gap_bytes)
                      : kNever;
}

size_t ChaosTransport::CapAndFire(Schedule* s, size_t want, bool* reset) {
  *reset = false;
  // Events whose offset has been reached fire BEFORE the I/O moves any
  // further bytes; the caps below guarantee the position lands exactly
  // on each pending offset, so every scheduled event fires exactly once
  // no matter how the kernel or the caller chunk the stream.
  if (s->next_reset != kNever && s->pos >= s->next_reset) {
    if (counters_ != nullptr) Bump(&counters_->resets);
    *reset = true;
    return 0;
  }
  while (s->next_delay != kNever && s->pos >= s->next_delay) {
    const double ms =
        s->delay_rng.Uniform(profile_.delay_min_ms, profile_.delay_max_ms);
    if (counters_ != nullptr) Bump(&counters_->delays);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    s->next_delay += DrawGap(&s->delay_rng, profile_.delay_gap_bytes);
  }
  while (s->next_split != kNever && s->pos >= s->next_split) {
    if (counters_ != nullptr) Bump(&counters_->splits);
    s->next_split += DrawGap(&s->split_rng, profile_.split_gap_bytes);
  }
  size_t cap = want;
  for (uint64_t boundary : {s->next_split, s->next_delay, s->next_reset}) {
    if (boundary != kNever && boundary - s->pos < cap) {
      cap = static_cast<size_t>(boundary - s->pos);
    }
  }
  return cap;
}

void ChaosTransport::CorruptAndAdvance(Schedule* s, char* data, size_t n) {
  while (s->next_corrupt != kNever && s->next_corrupt < s->pos + n) {
    // next_corrupt >= pos always holds: offsets only advance past bytes
    // that actually moved.
    data[s->next_corrupt - s->pos] ^= 0xFF;
    if (counters_ != nullptr) Bump(&counters_->corruptions);
    s->next_corrupt += DrawGap(&s->corrupt_rng, profile_.corrupt_gap_bytes);
  }
  s->pos += n;
}

util::StatusOr<size_t> ChaosTransport::Send(const char* data, size_t n) {
  if (dead_) return Status::IoError("chaos: connection reset");
  if (n == 0) return static_cast<size_t>(0);
  bool reset = false;
  size_t cap = CapAndFire(&out_, n, &reset);
  if (reset) {
    dead_ = true;
    base_->Close();
    return Status::IoError("chaos: connection reset");
  }
  // Corruption flips bytes on their way out; work on a copy so a short
  // send re-flips the same offsets to the same values next call.
  const char* payload = data;
  std::vector<char> scratch;
  if (out_.next_corrupt != kNever && out_.next_corrupt < out_.pos + cap) {
    scratch.assign(data, data + cap);
    uint64_t probe = out_.next_corrupt;
    util::Rng probe_rng = out_.corrupt_rng;  // peek without committing
    while (probe != kNever && probe < out_.pos + cap) {
      scratch[probe - out_.pos] ^= 0xFF;
      probe += DrawGap(&probe_rng, profile_.corrupt_gap_bytes);
    }
    payload = scratch.data();
  }
  auto sent = base_->Send(payload, cap);
  if (!sent.ok()) return sent.status();
  // Commit schedule advancement only over bytes that actually moved.
  uint64_t pos_before = out_.pos;
  while (out_.next_corrupt != kNever &&
         out_.next_corrupt < pos_before + *sent) {
    if (counters_ != nullptr) Bump(&counters_->corruptions);
    out_.next_corrupt +=
        DrawGap(&out_.corrupt_rng, profile_.corrupt_gap_bytes);
  }
  out_.pos += *sent;
  return *sent;
}

util::StatusOr<size_t> ChaosTransport::Recv(char* buf, size_t n) {
  if (dead_) return Status::IoError("chaos: connection reset");
  if (n == 0) return static_cast<size_t>(0);
  bool reset = false;
  size_t cap = CapAndFire(&in_, n, &reset);
  if (reset) {
    dead_ = true;
    base_->Close();
    return Status::IoError("chaos: connection reset");
  }
  auto got = base_->Recv(buf, cap);
  if (!got.ok()) return got.status();
  if (*got == 0) return static_cast<size_t>(0);  // clean EOF from the peer
  CorruptAndAdvance(&in_, buf, *got);
  return *got;
}

void ChaosTransport::Close() {
  dead_ = true;
  base_->Close();
}

util::StatusOr<std::unique_ptr<Transport>> ConnectChaos(
    const std::string& host, uint16_t port,
    const TransportDeadlines& deadlines, const ChaosProfile& profile,
    uint64_t conn_index, ChaosCounters* counters) {
  auto sock = SocketTransport::Connect(host, port, deadlines);
  if (!sock.ok()) return sock.status();
  if (!profile.any_enabled()) {
    return std::unique_ptr<Transport>(std::move(*sock));
  }
  return std::unique_ptr<Transport>(std::make_unique<ChaosTransport>(
      std::move(*sock), profile, conn_index, counters));
}

}  // namespace net
}  // namespace ff
