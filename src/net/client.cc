#include "net/client.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/serialize.h"
#include "util/status.h"

namespace ff {
namespace net {

namespace {

using statsdb::ResultSet;
using util::Status;
using util::StatusCode;
using util::StatusOr;

/// Reconstructs the server-side Status from a kError frame body.
/// *decoded says whether the frame was well-formed — a kError frame
/// that itself fails to decode is a garbled stream, not a server
/// answer, and the retry layer must treat it as a transport failure.
Status DecodeError(std::string_view body, bool* decoded) {
  *decoded = false;
  WireReader r(body);
  auto code = r.U8();
  if (!code.ok()) return code.status();
  if (*code == 0 || *code > static_cast<uint8_t>(util::kMaxStatusCode)) {
    return Status::ParseError("error frame carries invalid status code " +
                              std::to_string(*code));
  }
  *decoded = true;
  std::string_view msg = r.Rest();
  return Status(static_cast<StatusCode>(*code), std::string(msg));
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : transport_(std::move(other.transport_)),
      rbuf_(std::move(other.rbuf_)),
      remote_error_(other.remote_error_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    transport_ = std::move(other.transport_);
    rbuf_ = std::move(other.rbuf_);
    remote_error_ = other.remote_error_;
  }
  return *this;
}

void Client::Close() {
  if (transport_ != nullptr) transport_->Close();
  transport_.reset();
  rbuf_.clear();
}

util::StatusOr<Client> Client::Connect(const std::string& host,
                                       uint16_t port) {
  return Connect(host, port, ClientOptions{});
}

util::StatusOr<Client> Client::Connect(const std::string& host,
                                       uint16_t port,
                                       const ClientOptions& options) {
  TransportDeadlines deadlines;
  deadlines.connect_timeout_ms = options.connect_timeout_ms;
  deadlines.io_timeout_ms = options.io_timeout_ms;
  auto sock = SocketTransport::Connect(host, port, deadlines);
  if (!sock.ok()) return sock.status();
  std::unique_ptr<Transport> transport = std::move(*sock);
  if (options.wrap_transport) {
    transport = options.wrap_transport(std::move(transport));
  }
  Client c;
  c.transport_ = std::move(transport);
  return c;
}

util::Status Client::RemoteError(std::string_view body) {
  bool decoded = false;
  Status st = DecodeError(body, &decoded);
  remote_error_ = decoded;
  return st;
}

util::Status Client::SendRaw(std::string_view bytes) {
  remote_error_ = false;
  if (transport_ == nullptr) {
    return Status::FailedPrecondition("client not connected");
  }
  size_t off = 0;
  while (off < bytes.size()) {
    auto n = transport_->Send(bytes.data() + off, bytes.size() - off);
    if (!n.ok()) return n.status();
    off += *n;
  }
  return Status::OK();
}

util::StatusOr<std::pair<Opcode, std::string>> Client::ReadFrame() {
  remote_error_ = false;
  if (transport_ == nullptr) {
    return Status::FailedPrecondition("client not connected");
  }
  for (;;) {
    FrameView f;
    size_t consumed = 0;
    FrameParse p = ParseFrame(rbuf_, kDefaultMaxFrameBytes, &f, &consumed);
    if (p == FrameParse::kBad) {
      return Status::ParseError("malformed frame from server");
    }
    if (p == FrameParse::kFrame) {
      std::pair<Opcode, std::string> out{f.opcode, std::string(f.body)};
      rbuf_.erase(0, consumed);
      return out;
    }
    char buf[1 << 16];
    auto n = transport_->Recv(buf, sizeof(buf));
    if (!n.ok()) return n.status();
    if (*n == 0) {
      // EOF between frames is an orderly close; EOF with a partial
      // frame buffered means the response was torn mid-flight — a
      // poisoned stream the retry layer treats as retryable transport
      // failure, never as a server answer.
      if (rbuf_.empty()) {
        return Status::IoError("server closed the connection");
      }
      return Status::ParseError("connection closed mid-frame (" +
                                std::to_string(rbuf_.size()) +
                                " bytes of a partial frame buffered)");
    }
    rbuf_.append(buf, *n);
  }
}

util::StatusOr<statsdb::ResultSet> Client::ReadRowStream() {
  auto header = ReadFrame();
  if (!header.ok()) return header.status();
  if (header->first == Opcode::kError) return RemoteError(header->second);
  if (header->first != Opcode::kRowHeader) {
    return Status::ParseError("expected row header frame, got opcode " +
                              std::to_string(static_cast<int>(header->first)));
  }
  ResultSet rs;
  {
    WireReader r(header->second);
    FF_ASSIGN_OR_RETURN(rs.schema, DecodeSchema(&r));
  }
  const size_t ncols = rs.schema.num_columns();
  for (;;) {
    auto frame = ReadFrame();
    if (!frame.ok()) return frame.status();
    if (frame->first == Opcode::kError) return RemoteError(frame->second);
    if (frame->first == Opcode::kRowEnd) {
      WireReader r(frame->second);
      FF_ASSIGN_OR_RETURN(uint64_t count, r.U64());
      if (count != rs.rows.size()) {
        return Status::ParseError(
            "row stream trailer declares " + std::to_string(count) +
            " rows but " + std::to_string(rs.rows.size()) + " arrived");
      }
      return rs;
    }
    if (frame->first != Opcode::kRow) {
      return Status::ParseError("expected row frame, got opcode " +
                                std::to_string(static_cast<int>(frame->first)));
    }
    WireReader r(frame->second);
    statsdb::Row row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      FF_ASSIGN_OR_RETURN(statsdb::Value v, r.Value());
      row.push_back(std::move(v));
    }
    if (!r.AtEnd()) {
      return Status::ParseError("trailing bytes after row values");
    }
    rs.rows.push_back(std::move(row));
  }
}

util::StatusOr<statsdb::ResultSet> Client::RoundTrip(Opcode op,
                                                     std::string_view body,
                                                     bool row_at_a_time) {
  FF_RETURN_IF_ERROR(SendRaw(EncodeFrame(op, body)));
  if (row_at_a_time) return ReadRowStream();
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->first == Opcode::kError) return RemoteError(frame->second);
  if (frame->first != Opcode::kResultSet) {
    return Status::ParseError("expected result frame, got opcode " +
                              std::to_string(static_cast<int>(frame->first)));
  }
  WireReader r(frame->second);
  return DecodeResultSet(&r);
}

util::StatusOr<statsdb::ResultSet> Client::Query(const std::string& sql) {
  WireWriter w;
  w.U8(0);
  w.Raw(sql.data(), sql.size());
  return RoundTrip(Opcode::kQuery, w.buffer(), /*row_at_a_time=*/false);
}

util::StatusOr<statsdb::ResultSet> Client::QueryRows(const std::string& sql) {
  WireWriter w;
  w.U8(kFlagRowAtATime);
  w.Raw(sql.data(), sql.size());
  return RoundTrip(Opcode::kQuery, w.buffer(), /*row_at_a_time=*/true);
}

util::StatusOr<Client::Prepared> Client::Prepare(const std::string& sql) {
  FF_RETURN_IF_ERROR(SendRaw(EncodeFrame(Opcode::kPrepare, sql)));
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->first == Opcode::kError) return RemoteError(frame->second);
  if (frame->first != Opcode::kPrepared) {
    return Status::ParseError("expected prepared frame, got opcode " +
                              std::to_string(static_cast<int>(frame->first)));
  }
  WireReader r(frame->second);
  Prepared p;
  FF_ASSIGN_OR_RETURN(p.id, r.U32());
  FF_ASSIGN_OR_RETURN(p.num_params, r.U32());
  return p;
}

util::StatusOr<statsdb::ResultSet> Client::ExecutePrepared(
    const Prepared& stmt, const std::vector<statsdb::Value>& params,
    bool row_at_a_time) {
  WireWriter w;
  w.U32(stmt.id);
  w.U8(row_at_a_time ? kFlagRowAtATime : 0);
  w.U16(static_cast<uint16_t>(params.size()));
  for (const statsdb::Value& v : params) w.Value(v);
  return RoundTrip(Opcode::kExecute, w.buffer(), row_at_a_time);
}

util::Status Client::SendExecute(const Prepared& stmt,
                                 const std::vector<statsdb::Value>& params) {
  WireWriter w;
  w.U32(stmt.id);
  w.U8(0);
  w.U16(static_cast<uint16_t>(params.size()));
  for (const statsdb::Value& v : params) w.Value(v);
  return SendRaw(EncodeFrame(Opcode::kExecute, w.buffer()));
}

util::StatusOr<statsdb::ResultSet> Client::ReadResult() {
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->first == Opcode::kError) return RemoteError(frame->second);
  if (frame->first != Opcode::kResultSet) {
    return Status::ParseError("expected result frame, got opcode " +
                              std::to_string(static_cast<int>(frame->first)));
  }
  WireReader r(frame->second);
  return DecodeResultSet(&r);
}

util::Status Client::ClosePrepared(const Prepared& stmt) {
  WireWriter w;
  w.U32(stmt.id);
  FF_RETURN_IF_ERROR(SendRaw(EncodeFrame(Opcode::kCloseStmt, w.buffer())));
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->first == Opcode::kError) return RemoteError(frame->second);
  if (frame->first != Opcode::kStmtClosed) {
    return Status::ParseError("expected close-ack frame, got opcode " +
                              std::to_string(static_cast<int>(frame->first)));
  }
  return Status::OK();
}

util::Status Client::RefreshServerStats() {
  FF_RETURN_IF_ERROR(SendRaw(EncodeFrame(Opcode::kRefreshStats, "")));
  auto frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->first == Opcode::kError) return RemoteError(frame->second);
  if (frame->first != Opcode::kStatsOk) {
    return Status::ParseError("expected stats-ack frame, got opcode " +
                              std::to_string(static_cast<int>(frame->first)));
  }
  return Status::OK();
}

}  // namespace net
}  // namespace ff
