// Columnar serialization of statsdb ResultSets for the wire protocol.
//
// A kResultSet frame body is:
//
//   u32 ncols
//   ncols x { u32-len name | u8 declared DataType }
//   u64 nrows
//   ncols x column block
//
// Column block:
//   u8 encoding (ColumnEncoding)
//   u8 has_nulls; when 1, ceil(nrows/64) u64 null-bitmap words (bit set
//      => NULL). kAllNull requires has_nulls=1 whenever nrows > 0 so a
//      decoder can bound nrows by actual payload; kTagged never writes a
//      bitmap (nulls travel as value tags).
//   encoding-specific data:
//     kAllNull   nothing
//     kBool      ceil(nrows/8) bit-packed bytes
//     kInt64     nrows x 8B LE
//     kDouble    nrows x 8B IEEE-754 bit pattern
//     kDict      u32 dict_size | dict_size x u32-len string |
//                nrows x u32 LE code (only codes actually used ship;
//                they are remapped to a frame-local dictionary)
//     kTagged    nrows x tagged Value (wire.h codec; exact runtime types)
//
// Data bytes at null positions of fixed encodings are unspecified and
// ignored by the decoder — that is what lets the encoder memcpy chunk
// storage wholesale instead of compacting around NULLs.
//
// The encoder picks the encoding by scanning the column's *actual* cell
// types, not the declared schema type: post-aggregation columns can hold
// runtime types that differ from the declaration (e.g. an int column
// averaged into doubles), and the equivalence lane requires the decoded
// ResultSet to render byte-identical CSV. A column whose non-null cells
// are uniformly one primitive type gets the native encoding; mixed
// columns fall back to kTagged.
//
// EncodeColumnVector ships contiguous i64/f64/codes/null-word views with
// single memcpys — a SELECT that scans straight off ColumnStore chunks
// serializes without per-cell work.

#ifndef FF_NET_SERIALIZE_H_
#define FF_NET_SERIALIZE_H_

#include <cstdint>

#include "net/wire.h"
#include "statsdb/batch.h"
#include "statsdb/query.h"
#include "util/statusor.h"

namespace ff {
namespace net {

enum class ColumnEncoding : uint8_t {
  kAllNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kDict = 4,
  kTagged = 5,
};

/// Appends the schema header (ncols + name/type pairs) to `w`.
void EncodeSchema(const statsdb::Schema& schema, WireWriter* w);

/// Reads a schema header.
util::StatusOr<statsdb::Schema> DecodeSchema(WireReader* r);

/// Serializes a full ResultSet (schema + rows) into `w`.
void EncodeResultSet(const statsdb::ResultSet& rs, WireWriter* w);

/// Inverse of EncodeResultSet. Decoded Values are bit-exact copies of
/// the originals (doubles included), so ToCsv() matches byte-for-byte.
util::StatusOr<statsdb::ResultSet> DecodeResultSet(WireReader* r);

/// Serializes one column of `n` cells from a ColumnVector. Contiguous
/// i64/f64/codes storage (chunk-borrowed or owned) is block-copied.
void EncodeColumnVector(const statsdb::ColumnVector& col, size_t n,
                        WireWriter* w);

/// Decodes one column block into `n` materialized Values. Allocation is
/// bounded by bytes actually present in the frame (every encoding's
/// payload is Need()-checked before buffers are sized), so truncated or
/// lying headers fail with ParseError instead of over-allocating.
util::Status DecodeColumn(WireReader* r, size_t n,
                          std::vector<statsdb::Value>* out);

}  // namespace net
}  // namespace ff

#endif  // FF_NET_SERIALIZE_H_
