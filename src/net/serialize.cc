#include "net/serialize.h"

#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "statsdb/column_store.h"

namespace ff {
namespace net {

namespace {

using statsdb::DataType;
using statsdb::ResultSet;
using statsdb::Row;
using statsdb::Schema;
using statsdb::Value;
using util::Status;
using util::StatusOr;

size_t NullWords(size_t n) { return (n + 63) / 64; }

// Writes has_nulls + the bitmap from a per-cell predicate.
template <typename IsNullFn>
void WriteNullBitmap(size_t n, bool any_null, IsNullFn is_null,
                     WireWriter* w) {
  if (!any_null) {
    w->U8(0);
    return;
  }
  w->U8(1);
  std::vector<uint64_t> words(NullWords(n), 0);
  for (size_t i = 0; i < n; ++i) {
    if (is_null(i)) words[i >> 6] |= uint64_t{1} << (i & 63);
  }
  w->Raw(words.data(), words.size() * sizeof(uint64_t));
}

// Generic per-cell encoder for vectors without contiguous typed storage
// (broadcast constants and `vals`-mode columns). `cell` must return the
// exact Value at each index.
template <typename CellFn>
void EncodeCells(size_t n, CellFn cell, WireWriter* w) {
  bool any_null = false;
  DataType t = DataType::kNull;
  bool uniform = true;
  for (size_t i = 0; i < n; ++i) {
    Value v = cell(i);
    if (v.is_null()) {
      any_null = true;
    } else if (t == DataType::kNull) {
      t = v.type();
    } else if (v.type() != t) {
      uniform = false;
    }
  }
  if (t == DataType::kNull) {  // no non-null cells (or n == 0)
    w->U8(static_cast<uint8_t>(ColumnEncoding::kAllNull));
    WriteNullBitmap(n, n > 0, [](size_t) { return true; }, w);
    return;
  }
  if (!uniform) {
    w->U8(static_cast<uint8_t>(ColumnEncoding::kTagged));
    w->U8(0);  // nulls travel as value tags
    for (size_t i = 0; i < n; ++i) w->Value(cell(i));
    return;
  }
  auto is_null = [&](size_t i) { return cell(i).is_null(); };
  switch (t) {
    case DataType::kBool: {
      w->U8(static_cast<uint8_t>(ColumnEncoding::kBool));
      WriteNullBitmap(n, any_null, is_null, w);
      std::vector<uint8_t> bits((n + 7) / 8, 0);
      for (size_t i = 0; i < n; ++i) {
        Value v = cell(i);
        if (!v.is_null() && v.bool_value()) bits[i >> 3] |= 1u << (i & 7);
      }
      w->Raw(bits.data(), bits.size());
      break;
    }
    case DataType::kInt64: {
      w->U8(static_cast<uint8_t>(ColumnEncoding::kInt64));
      WriteNullBitmap(n, any_null, is_null, w);
      for (size_t i = 0; i < n; ++i) {
        Value v = cell(i);
        w->I64(v.is_null() ? 0 : v.int64_value());
      }
      break;
    }
    case DataType::kDouble: {
      w->U8(static_cast<uint8_t>(ColumnEncoding::kDouble));
      WriteNullBitmap(n, any_null, is_null, w);
      for (size_t i = 0; i < n; ++i) {
        Value v = cell(i);
        w->F64(v.is_null() ? 0.0 : v.double_value());
      }
      break;
    }
    case DataType::kString: {
      w->U8(static_cast<uint8_t>(ColumnEncoding::kDict));
      WriteNullBitmap(n, any_null, is_null, w);
      std::unordered_map<std::string, uint32_t> intern;
      std::vector<const std::string*> order;
      std::vector<uint32_t> local(n, 0);
      for (size_t i = 0; i < n; ++i) {
        Value v = cell(i);
        if (v.is_null()) continue;
        auto [it, inserted] = intern.try_emplace(
            v.string_value(), static_cast<uint32_t>(order.size()));
        if (inserted) order.push_back(&it->first);
        local[i] = it->second;
      }
      w->U32(static_cast<uint32_t>(order.size()));
      for (const std::string* s : order) w->Str(*s);
      w->Raw(local.data(), local.size() * sizeof(uint32_t));
      break;
    }
    case DataType::kNull:
      break;  // unreachable: t != kNull here
  }
}

}  // namespace

void EncodeSchema(const Schema& schema, WireWriter* w) {
  w->U32(static_cast<uint32_t>(schema.num_columns()));
  for (const auto& col : schema.columns()) {
    w->Str(col.name);
    w->U8(static_cast<uint8_t>(col.type));
  }
}

StatusOr<Schema> DecodeSchema(WireReader* r) {
  FF_ASSIGN_OR_RETURN(uint32_t ncols, r->U32());
  // Each column costs >= 5 bytes (u32 name length + type byte).
  if (ncols > r->remaining() / 5 + 1) {
    return Status::ParseError("schema declares more columns than frame holds");
  }
  std::vector<statsdb::Column> cols;
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    FF_ASSIGN_OR_RETURN(std::string name, r->Str());
    FF_ASSIGN_OR_RETURN(uint8_t type, r->U8());
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return Status::ParseError("unknown column type tag " +
                                std::to_string(type));
    }
    cols.push_back({std::move(name), static_cast<DataType>(type)});
  }
  return Schema(std::move(cols));
}

void EncodeColumnVector(const statsdb::ColumnVector& col, size_t n,
                        WireWriter* w) {
  if (col.is_const || col.vals != nullptr ||
      col.type == DataType::kNull) {
    EncodeCells(n, [&](size_t i) { return col.GetValue(i); }, w);
    return;
  }
  const uint64_t* nw = col.null_words;
  bool any_null = false;
  if (nw != nullptr) {
    for (size_t i = 0; i < NullWords(n) && !any_null; ++i) {
      uint64_t word = nw[i];
      // Mask bits past n in the last word: chunk bitmaps can be longer
      // than the rows this vector covers.
      if ((i + 1) * 64 > n) word &= (uint64_t{1} << (n & 63)) - 1;
      any_null = word != 0;
    }
  }
  auto write_nulls = [&] {
    WriteNullBitmap(n, any_null, [&](size_t i) { return col.IsNull(i); }, w);
  };
  switch (col.type) {
    case DataType::kBool: {
      w->U8(static_cast<uint8_t>(ColumnEncoding::kBool));
      write_nulls();
      std::vector<uint8_t> bits((n + 7) / 8, 0);
      for (size_t i = 0; i < n; ++i) {
        if (!col.IsNull(i) && col.b8[i] != 0) bits[i >> 3] |= 1u << (i & 7);
      }
      w->Raw(bits.data(), bits.size());
      break;
    }
    case DataType::kInt64:
      // Contiguous storage ships as one block copy.
      w->U8(static_cast<uint8_t>(ColumnEncoding::kInt64));
      write_nulls();
      w->Raw(col.i64, n * sizeof(int64_t));
      break;
    case DataType::kDouble:
      w->U8(static_cast<uint8_t>(ColumnEncoding::kDouble));
      write_nulls();
      w->Raw(col.f64, n * sizeof(double));
      break;
    case DataType::kString: {
      w->U8(static_cast<uint8_t>(ColumnEncoding::kDict));
      write_nulls();
      // Remap table-wide dictionary codes to a frame-local dictionary so
      // only strings this result actually references ship.
      std::unordered_map<uint32_t, uint32_t> remap;
      std::vector<uint32_t> order;
      std::vector<uint32_t> local(n, 0);
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) continue;
        auto [it, inserted] = remap.try_emplace(
            col.codes[i], static_cast<uint32_t>(order.size()));
        if (inserted) order.push_back(col.codes[i]);
        local[i] = it->second;
      }
      w->U32(static_cast<uint32_t>(order.size()));
      for (uint32_t code : order) w->Str(col.dict->at(code));
      w->Raw(local.data(), local.size() * sizeof(uint32_t));
      break;
    }
    case DataType::kNull:
      break;  // handled by the generic path above
  }
}

void EncodeResultSet(const ResultSet& rs, WireWriter* w) {
  EncodeSchema(rs.schema, w);
  const size_t n = rs.rows.size();
  w->U64(n);
  const size_t ncols = rs.schema.num_columns();
  for (size_t c = 0; c < ncols; ++c) {
    EncodeCells(n, [&](size_t i) -> const Value& { return rs.rows[i][c]; },
                w);
  }
}

util::Status DecodeColumn(WireReader* r, size_t n, std::vector<Value>* out) {
  FF_ASSIGN_OR_RETURN(uint8_t enc_byte, r->U8());
  if (enc_byte > static_cast<uint8_t>(ColumnEncoding::kTagged)) {
    return Status::ParseError("unknown column encoding " +
                              std::to_string(enc_byte));
  }
  auto enc = static_cast<ColumnEncoding>(enc_byte);
  FF_ASSIGN_OR_RETURN(uint8_t has_nulls, r->U8());
  if (has_nulls > 1) {
    return Status::ParseError("bad has_nulls byte");
  }
  const uint64_t* nulls = nullptr;
  std::string_view null_bytes;
  if (has_nulls == 1) {
    FF_ASSIGN_OR_RETURN(null_bytes, r->Bytes(NullWords(n) * 8));
    nulls = reinterpret_cast<const uint64_t*>(null_bytes.data());
  }
  // null_bytes may be unaligned for u64 loads; read through memcpy.
  auto is_null = [&](size_t i) {
    if (nulls == nullptr) return false;
    uint64_t word;
    std::memcpy(&word, null_bytes.data() + (i >> 6) * 8, 8);
    return ((word >> (i & 63)) & 1) != 0;
  };
  out->clear();
  switch (enc) {
    case ColumnEncoding::kAllNull:
      if (n > 0 && has_nulls == 0) {
        return Status::ParseError("all-null column without a null bitmap");
      }
      out->assign(n, Value::Null());
      return Status::OK();
    case ColumnEncoding::kBool: {
      FF_ASSIGN_OR_RETURN(std::string_view bits, r->Bytes((n + 7) / 8));
      out->reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (is_null(i)) {
          out->push_back(Value::Null());
        } else {
          bool b = (static_cast<uint8_t>(bits[i >> 3]) >> (i & 7)) & 1;
          out->push_back(Value::Bool(b));
        }
      }
      return Status::OK();
    }
    case ColumnEncoding::kInt64: {
      FF_ASSIGN_OR_RETURN(std::string_view data, r->Bytes(n * 8));
      out->reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (is_null(i)) {
          out->push_back(Value::Null());
        } else {
          uint64_t v;
          std::memcpy(&v, data.data() + i * 8, 8);
          out->push_back(Value::Int64(static_cast<int64_t>(v)));
        }
      }
      return Status::OK();
    }
    case ColumnEncoding::kDouble: {
      FF_ASSIGN_OR_RETURN(std::string_view data, r->Bytes(n * 8));
      out->reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (is_null(i)) {
          out->push_back(Value::Null());
        } else {
          uint64_t bits64;
          std::memcpy(&bits64, data.data() + i * 8, 8);
          out->push_back(Value::Double(std::bit_cast<double>(bits64)));
        }
      }
      return Status::OK();
    }
    case ColumnEncoding::kDict: {
      FF_ASSIGN_OR_RETURN(uint32_t dict_size, r->U32());
      // Each dictionary entry costs at least 4 bytes (its length field).
      if (dict_size > r->remaining() / 4 + 1) {
        return Status::ParseError(
            "dictionary declares more entries than frame holds");
      }
      std::vector<std::string> dict;
      dict.reserve(dict_size);
      for (uint32_t i = 0; i < dict_size; ++i) {
        FF_ASSIGN_OR_RETURN(std::string s, r->Str());
        dict.push_back(std::move(s));
      }
      FF_ASSIGN_OR_RETURN(std::string_view codes, r->Bytes(n * 4));
      out->reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (is_null(i)) {
          out->push_back(Value::Null());
          continue;
        }
        uint32_t code;
        std::memcpy(&code, codes.data() + i * 4, 4);
        if (code >= dict_size) {
          return Status::ParseError("dictionary code " + std::to_string(code) +
                                    " out of range (dict has " +
                                    std::to_string(dict_size) + " entries)");
        }
        out->push_back(Value::String(dict[code]));
      }
      return Status::OK();
    }
    case ColumnEncoding::kTagged: {
      out->reserve(std::min(n, r->remaining()));  // each value >= 1 byte
      for (size_t i = 0; i < n; ++i) {
        FF_ASSIGN_OR_RETURN(Value v, r->Value());
        out->push_back(std::move(v));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable column encoding");
}

StatusOr<ResultSet> DecodeResultSet(WireReader* r) {
  FF_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(r));
  FF_ASSIGN_OR_RETURN(uint64_t nrows64, r->U64());
  const size_t ncols = schema.num_columns();
  const size_t n = static_cast<size_t>(nrows64);
  // Decode columns first: every encoding's payload is bounds-checked
  // against the frame before buffers are sized, so a lying nrows cannot
  // drive allocation past the bytes actually present.
  std::vector<std::vector<Value>> cols(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    FF_RETURN_IF_ERROR(DecodeColumn(r, n, &cols[c]));
  }
  if (!r->AtEnd()) {
    return Status::ParseError("trailing bytes after result columns");
  }
  ResultSet rs;
  rs.schema = std::move(schema);
  rs.rows.resize(n);
  for (size_t i = 0; i < n; ++i) {
    Row& row = rs.rows[i];
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) row.push_back(std::move(cols[c][i]));
  }
  return rs;
}

}  // namespace net
}  // namespace ff
