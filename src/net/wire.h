// Length-prefixed binary wire protocol for served statsdb.
//
// Every frame on the socket is
//
//   u32 LE length   -- bytes that follow the length field (>= 1)
//   u8  opcode      -- Opcode below
//   length-1 bytes  -- opcode-specific body
//
// The framing layer is deliberately dumb: a receiver can always resolve
// frame boundaries from the length field alone, so an unknown opcode is
// a recoverable error (skip the frame, answer kError) while a declared
// length of zero or one exceeding kDefaultMaxFrameBytes is a protocol
// error that poisons the stream (the boundary can no longer be
// trusted) and closes the session.
//
// All integers are little-endian. Doubles travel as their IEEE-754 bit
// pattern (std::bit_cast through u64), so values round-trip bit-exactly
// — the equivalence property lane compares rendered CSV byte-for-byte
// against in-process execution and would catch any text-format detour.
//
// Bodies:
//   kQuery      u8 flags | SQL text (rest of frame)
//   kPrepare    SQL text
//   kExecute    u32 stmt_id | u8 flags | u16 nparams | nparams x Value
//   kCloseStmt  u32 stmt_id
//   kRefreshStats (empty)
//   kResultSet  columnar result (serialize.h)
//   kError      u8 util::StatusCode | message text (rest of frame)
//   kPrepared   u32 stmt_id | u32 num_params
//   kStmtClosed (empty)
//   kStatsOk    (empty)
//   kRowHeader  schema only (serialize.h EncodeSchema)
//   kRow        one row: ncols x Value
//   kRowEnd     u64 row_count
//
// kQuery/kExecute flags bit 0 (kFlagRowAtATime) selects the naive
// one-frame-per-row result framing (kRowHeader/kRow.../kRowEnd) that
// bench/perf_server keeps as its baseline; the default is one batched
// kResultSet frame written with a single send.

#ifndef FF_NET_WIRE_H_
#define FF_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "statsdb/value.h"
#include "util/statusor.h"

namespace ff {
namespace net {

enum class Opcode : uint8_t {
  // client -> server
  kQuery = 0x01,
  kPrepare = 0x02,
  kExecute = 0x03,
  kCloseStmt = 0x04,
  kRefreshStats = 0x05,
  // server -> client
  kResultSet = 0x81,
  kError = 0x82,
  kPrepared = 0x83,
  kStmtClosed = 0x84,
  kStatsOk = 0x85,
  kRowHeader = 0x86,
  kRow = 0x87,
  kRowEnd = 0x88,
};

/// kQuery/kExecute flag: serialize the result one row per frame (the
/// perf_server naive baseline) instead of one batched kResultSet frame.
inline constexpr uint8_t kFlagRowAtATime = 0x01;

/// Ceiling on a frame's declared length (length field value). A peer
/// declaring more is treated as a protocol error, not an allocation.
inline constexpr uint32_t kDefaultMaxFrameBytes = 64u << 20;

/// Byte count of the length prefix.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Append-only little-endian buffer writer. The buffer grows as needed;
/// Raw() is a single memcpy, which is what makes contiguous column
/// storage cheap to ship (serialize.h).
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Raw(const void* data, size_t n);
  /// u32 length + bytes.
  void Str(std::string_view s);
  void Value(const statsdb::Value& v);

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over one frame body. Every getter fails with
/// ParseError("truncated frame: ...") instead of reading past the end,
/// so a malformed body can never walk off the buffer — the wire_test
/// malformed-frame lane runs these paths under ASan.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  util::StatusOr<uint8_t> U8();
  util::StatusOr<uint16_t> U16();
  util::StatusOr<uint32_t> U32();
  util::StatusOr<uint64_t> U64();
  util::StatusOr<int64_t> I64();
  util::StatusOr<double> F64();
  /// u32 length + bytes (copies out).
  util::StatusOr<std::string> Str();
  util::StatusOr<statsdb::Value> Value();
  /// Borrowed view of the next n bytes.
  util::StatusOr<std::string_view> Bytes(size_t n);
  /// Everything left (possibly empty); consumes it.
  std::string_view Rest();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  util::Status Need(size_t n) const;
  std::string_view data_;
  size_t pos_ = 0;
};

/// Assembles one frame (header + opcode + body) into a contiguous
/// buffer, ready for a single send.
std::string EncodeFrame(Opcode op, std::string_view body);

/// Splits complete frames off the front of `stream`.
struct FrameView {
  Opcode opcode;
  std::string_view body;  // points into the caller's buffer
};

enum class FrameParse {
  kFrame,     // *out filled; *consumed bytes belong to this frame
  kNeedMore,  // fewer bytes buffered than one complete frame
  kBad,       // poisoned stream: zero or oversized declared length
};

/// Examines the front of `stream`. On kFrame, `*consumed` is the total
/// frame size (header included) and out->body points into `stream`.
FrameParse ParseFrame(std::string_view stream, uint32_t max_frame_bytes,
                      FrameView* out, size_t* consumed);

}  // namespace net
}  // namespace ff

#endif  // FF_NET_WIRE_H_
