// Served statsdb: a socket server that owns a Database and runs
// concurrent client sessions as tasks on the work-stealing ThreadPool.
//
// Threading model
// ---------------
// Three kinds of threads cooperate:
//
//  * One EVENT thread runs a poll() loop over the listen socket, a
//    self-pipe (wakeups), and every connected session. It accepts,
//    reads, and splits the byte stream into frames (wire.h); it never
//    executes SQL. Complete frames go onto the session's pending queue
//    and at most ONE pool task per session is kept in flight to drain
//    it — so frames of one session execute in order while different
//    sessions proceed concurrently, even on a one-worker pool. The
//    event thread also FLUSHES outbound buffers on POLLOUT: response
//    bytes a slow reader would not take stay parked per session (see
//    Session::obuf) instead of stalling the sender, and the event
//    thread enforces the write-stall / idle deadlines on them.
//
//  * The POOL workers run session tasks. A task drains its session's
//    queue: classify the statement, execute, serialize, send — the
//    socket is written only here, whole responses in single send()
//    batches. Read statements (SELECT/EXPLAIN, Prepare, Execute) run
//    under the shared side of a reader/writer gate; morsel-parallel
//    queries fan out on the SAME pool via TaskGroup (the documented
//    nested-submission contract), so a session task helping another
//    session's task is normal. The shared gate is therefore REENTRANT
//    per thread (a depth counter): help-first stealing can nest a
//    second shared acquisition on a thread already holding one, which
//    with a plain shared_mutex could self-deadlock behind a waiting
//    writer.
//
//  * One WRITER thread owns every mutation. Write statements
//    (CREATE/INSERT/UPDATE/DELETE) and maintenance jobs (runtime-table
//    refresh, cache reconfiguration) queue here; each job runs under
//    the exclusive side of the gate, then re-warms every table's lazy
//    scan state (Table::store(): zone maps + null-bitmap padding) BEFORE
//    releasing, so the concurrent read paths never hit the
//    const-but-lazily-mutating branches. Writes never run on the pool:
//    a pool task blocking exclusively while its worker "helps" another
//    task that takes the shared side would deadlock. For the same
//    reason a session task never BLOCKS on the writer either — it could
//    be a help-first-stolen nested task on a thread that already holds
//    the shared gate, and the writer would wait on that very holder.
//    Instead a mutating frame is handed off: the drain task returns
//    with its in-flight slot still claimed, the writer executes the
//    statement, sends the response itself (no other thread can be
//    writing that socket — the slot is claimed), and re-submits the
//    drain task to continue the session in order.
//
// The Database itself is not thread-safe by contract; this file is the
// single place that contract is widened, and the rules above are the
// whole proof: readers share, the writer excludes, lazy mutations are
// pre-warmed under exclusion, and the query cache / runtime histograms
// are internally synchronized by design.
//
// Malformed input (hardening contract, tested under ASan): a frame that
// fails to decode answers a kError frame and the session continues; a
// stream whose framing cannot be trusted (declared length zero or
// beyond max_frame_bytes) gets one kError and the session closes; a
// mid-frame disconnect just reaps the session. Nothing crashes, nothing
// hangs.

#ifndef FF_NET_SERVER_H_
#define FF_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "obs/runtime_stats.h"
#include "parallel/thread_pool.h"
#include "statsdb/database.h"

namespace ff {
namespace net {

struct ServerConfig {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with Server::port()).
  uint16_t port = 0;
  /// Worker threads for the session/morsel pool.
  size_t pool_threads = 4;
  /// Ceiling on a client frame's declared length.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Default the query cache to both tiers (FF_STATSDB_CACHE=full
  /// equivalent). The environment variable still wins when set: ops
  /// overrides beat baked-in defaults.
  bool cache_default_full = true;
  /// Morsel sizing forwarded to the database's ParallelConfig.
  size_t morsel_chunks = 1;
  size_t min_chunks = 4;

  // Overload / robustness limits. Every limit that fires is counted in
  // ServerCounters and exported through the runtime_server table, so a
  // client can read the overload ledger back over the wire.

  /// Connection ceiling; 0 = unlimited. The connection OVER the limit
  /// is still accepted, answered one typed kError frame (kUnavailable,
  /// "server at connection limit"), and closed — a refused client gets
  /// a reason, not a silent RST.
  size_t max_connections = 0;
  /// Global admission budget: total frames queued across all sessions;
  /// 0 = unlimited. A frame arriving over budget is NOT executed — the
  /// drain task answers it kUnavailable("overloaded: ...") immediately,
  /// shedding load in frame-arrival order while the session survives.
  size_t max_pending_frames = 0;
  /// Per-session cap on response bytes parked for a slow reader; 0 =
  /// unlimited. Exceeding it closes the session (overflow_closed):
  /// a reader this far behind is holding server memory hostage.
  size_t max_outbound_buffer_bytes = 0;
  /// A session whose parked outbound bytes make NO progress for this
  /// long is closed (stall_closed). Replaces the old hard-coded 10 s
  /// in-send poll: responses now park in the outbound buffer and flush
  /// asynchronously, so a stalled reader costs memory, never a thread.
  int write_stall_timeout_ms = 10000;
  /// A session with no request activity and nothing in flight for this
  /// long is closed cleanly (idle_closed); 0 = never.
  int idle_timeout_ms = 0;
  /// Stop() waits this long for in-flight work to drain before forcing
  /// sessions closed (drain_forced); 0 = wait forever. Statements
  /// already executing always run to completion — the deadline bounds
  /// the queued-but-unstarted backlog.
  int drain_deadline_ms = 0;
};

/// Server-wide robustness counters: one per configured limit, counting
/// how often it fired (plus `accepted`, the denominator). Exported as
/// the runtime_server table by RefreshRuntimeTables.
struct ServerCounters {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> refused_connections{0};
  std::atomic<uint64_t> shed_frames{0};
  std::atomic<uint64_t> stall_closed{0};
  std::atomic<uint64_t> overflow_closed{0};
  std::atomic<uint64_t> idle_closed{0};
  std::atomic<uint64_t> drain_forced{0};
};

/// Per-session counters, exported as one row of the `runtime_sessions`
/// table (obs::LoadRuntimeSessions). Written by the session's task and
/// the event thread, read by the writer thread — hence atomics.
struct SessionState {
  uint64_t id = 0;
  std::atomic<bool> closed{false};
  std::atomic<uint64_t> queries{0};      // kQuery + kExecute frames
  std::atomic<uint64_t> errors{0};       // kError frames answered
  std::atomic<uint64_t> shed{0};         // frames refused by admission
  std::atomic<uint64_t> rows_out{0};     // result rows serialized
  std::atomic<uint64_t> bytes_in{0};     // frame bytes received
  std::atomic<uint64_t> bytes_out{0};    // frame bytes sent
  std::atomic<uint64_t> prepared_open{0};
  std::atomic<uint64_t> queue_wait_ns{0};
  std::atomic<uint64_t> exec_ns{0};
  std::atomic<uint64_t> serialize_ns{0};
  std::atomic<uint64_t> send_ns{0};
};

/// Plain-data copy of one session's counters.
struct SessionSnapshot {
  uint64_t id = 0;
  bool closed = false;
  uint64_t queries = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;
  uint64_t rows_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t prepared_open = 0;
  uint64_t queue_wait_ns = 0;
  uint64_t exec_ns = 0;
  uint64_t serialize_ns = 0;
  uint64_t send_ns = 0;
};

/// Server-wide request-stage histograms (PR 8 runtime profiler
/// primitives; relaxed atomics, TSan-clean). perf_server reports these
/// as the per-stage breakdown next to client-observed latency.
struct RequestBreakdown {
  obs::RuntimeHistogram queue_wait_ns;  // frame enqueue -> task pickup
  obs::RuntimeHistogram exec_ns;        // SQL execution
  obs::RuntimeHistogram serialize_ns;   // result -> wire bytes
  obs::RuntimeHistogram send_ns;        // send() until fully written
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The owned database. Populate tables before Start(); after Start()
  /// all access must go through the wire (or SubmitWrite) — the
  /// threading contract above is only enforced for served traffic.
  statsdb::Database& db() { return db_; }

  /// Binds, listens, spawns the event/writer/pool threads. IoError on
  /// socket failures.
  util::Status Start();
  /// Graceful shutdown: stops accepting, drains in-flight session
  /// tasks, joins all threads, closes every socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound port (after Start); the configured one until then.
  uint16_t port() const { return port_; }

  /// Runs `job` on the writer thread under the exclusive gate and waits
  /// for it. The hatch benches/tests use to mutate engine state (cache
  /// config, bulk loads) while the server is live.
  util::Status SubmitWrite(std::function<util::Status()> job);

  /// Rebuilds the runtime_cache and runtime_sessions tables from
  /// current stats (on the writer thread; also triggered over the wire
  /// by kRefreshStats).
  util::Status RefreshRuntimeTables();

  /// Snapshot of every session ever accepted (closed ones included).
  std::vector<SessionSnapshot> SessionStats() const;
  const RequestBreakdown& breakdown() const { return breakdown_; }
  const ServerCounters& counters() const { return counters_; }
  parallel::ThreadPool& pool() { return *pool_; }

 private:
  struct PendingFrame {
    Opcode opcode;
    std::string body;
    int64_t enqueue_ns = 0;
    bool poisoned = false;  // framing broke; answer kError and close
    bool shed = false;      // over admission budget; answer kUnavailable
  };

  struct Session {
    int fd = -1;
    std::shared_ptr<SessionState> state;
    std::string rbuf;  // event-thread only: unparsed stream bytes

    std::mutex mu;
    std::deque<PendingFrame> pending;
    bool task_in_flight = false;
    bool fatal = false;       // set by the task: close once drained
    bool eof = false;         // peer closed its end
    bool parse_dead = false;  // framing broke: stop parsing the stream

    // Outbound buffer: response bytes the kernel would not take
    // immediately. SendAll parks them here and the event thread
    // flushes on POLLOUT — no server thread ever blocks on a slow
    // reader. Guarded by mu, like the pending queue; the send side is
    // serialized BY mu now (task / writer-thread sends and event-thread
    // flushes interleave whole send() calls, and frame order is
    // preserved because a send appends behind a non-empty obuf).
    std::string obuf;
    int64_t last_progress_ns = 0;  // last time obuf bytes reached the fd
    int64_t last_activity_ns = 0;  // last read / completed drain

    // Task-side state; only the single in-flight task touches these.
    std::map<uint32_t, statsdb::PreparedStatement> stmts;
    uint32_t next_stmt_id = 1;
  };

  // Reentrant-shared reader/writer gate (see file comment).
  class ReadGate {
   public:
    void LockShared();
    void UnlockShared();
    std::shared_mutex& exclusive() { return mu_; }

   private:
    std::shared_mutex mu_;
    // One depth per OS thread: a process serves at most one Server's
    // pool per thread at a time (worker threads belong to one pool).
    static thread_local int depth_;
  };

  void EventLoop();
  void WriterLoop();
  void AcceptNew();
  /// Reads whatever the socket has, slices frames, schedules the task.
  void PumpSession(const std::shared_ptr<Session>& s);
  void ScheduleDrain(const std::shared_ptr<Session>& s);
  /// Pool task body: drains the pending queue.
  void DrainSession(std::shared_ptr<Session> s);
  /// Executes one frame and sends the response(s).
  void HandleFrame(Session& s, PendingFrame& frame);
  void HandleQuery(Session& s, const PendingFrame& frame);
  void HandleExecute(Session& s, const PendingFrame& frame);
  void HandlePrepare(Session& s, const PendingFrame& frame);

  /// Runs a read statement under the shared gate.
  util::StatusOr<statsdb::ResultSet> RunRead(const std::string& sql);
  /// If `frame` mutates (write statement / kRefreshStats), queues it to
  /// the writer thread — which will respond and re-submit the drain —
  /// and returns true; the drain task must then return WITHOUT
  /// releasing its in-flight slot. See the file comment for why the
  /// task must not block here.
  bool HandOffIfWrite(const std::shared_ptr<Session>& s, PendingFrame& frame);
  util::Status RefreshRuntimeTablesLocked();
  void RecordExec(Session& s, int64_t start_ns);
  void RecordSerialize(Session& s, int64_t start_ns);

  /// Serializes `rs` per `flags` and sends it, recording the
  /// serialize/send breakdown into `s` and the server histograms.
  void SendResult(Session& s, const statsdb::ResultSet& rs, uint8_t flags);
  void SendError(Session& s, const util::Status& st);
  void SendFrame(Session& s, Opcode op, std::string_view body);
  /// Queues `data` for the session: sends what the kernel takes now,
  /// parks the rest in the outbound buffer (flushed by the event
  /// thread on POLLOUT). Never blocks. Fails — and marks the session
  /// fatal — on a hard socket error or the outbound-buffer cap.
  util::Status SendAll(Session& s, std::string_view data);
  /// Appends to the outbound buffer under s.mu, enforcing
  /// max_outbound_buffer_bytes.
  util::Status ParkLocked(Session& s, std::string_view rest);
  /// Drains as much of the outbound buffer as the kernel takes;
  /// enforces write_stall_timeout_ms on no-progress sessions.
  void FlushOutbound(const std::shared_ptr<Session>& s);

  void WakeEventThread();

  ServerConfig config_;
  statsdb::Database db_;
  std::unique_ptr<parallel::ThreadPool> pool_;
  ReadGate gate_;
  RequestBreakdown breakdown_;
  ServerCounters counters_;
  /// Frames queued across ALL sessions — the admission-control level.
  std::atomic<size_t> pending_frames_{0};

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread event_thread_;

  // Event-thread-owned session table; other threads only reach sessions
  // through the shared_ptrs captured in their tasks.
  std::map<int, std::shared_ptr<Session>> sessions_;
  // Reap requests from tasks (fds whose session turned fatal).
  std::mutex reap_mu_;
  std::vector<int> reap_fds_;

  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<SessionState>> registry_;
  uint64_t next_session_id_ = 1;

  struct WriterJob {
    std::function<util::Status()> fn;
    std::promise<util::Status> done;
  };
  std::thread writer_thread_;
  std::mutex writer_mu_;
  std::condition_variable writer_cv_;
  std::deque<std::unique_ptr<WriterJob>> writer_jobs_;
  bool writer_stop_ = false;
  bool writer_busy_ = false;  // a job is executing (Stop's quiesce check)
};

/// True when the first keyword of `sql` names a mutating statement
/// (INSERT/UPDATE/DELETE/CREATE/DROP), skipping whitespace and SQL
/// comments. Everything else — SELECT, EXPLAIN, garbage — is routed to
/// the read path, where a non-statement fails with the engine's own
/// parse error, byte-identical to in-process execution.
bool IsWriteStatement(const std::string& sql);

}  // namespace net
}  // namespace ff

#endif  // FF_NET_SERVER_H_
