// Discrete-event simulation engine.
//
// Single-threaded virtual-time kernel with a total order on events
// (time, priority, insertion sequence), so a given seed and scenario always
// produce byte-identical traces. All higher layers (cluster machines,
// network links, data-flow processes, the factory campaign) are built as
// event callbacks on this kernel.
//
// The queue is an owned binary heap (std::vector + std::push_heap /
// std::pop_heap) rather than std::priority_queue: events are *moved* out at
// dispatch, so popping never copies the std::function payload or touches
// the handle-state refcount. Cancelled events stay in the heap as
// tombstones and are skipped at dispatch; when tombstones outnumber live
// events the heap is compacted in one O(n) pass, keeping amortized
// per-event cost at O(log n) even under heavy cancellation (every
// PsResource reschedule cancels an event).

#ifndef FF_SIM_SIMULATOR_H_
#define FF_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/status.h"

namespace ff {
namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace obs

namespace sim {

/// Simulated time in seconds since the scenario epoch.
using Time = double;

/// Opaque handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True when the handle refers to an event that has neither fired nor
  /// been cancelled.
  bool pending() const;

 private:
  friend class Simulator;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  std::shared_ptr<State> state_;
};

/// The event-queue kernel.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()). Events with
  /// equal time fire in ascending `priority`, then insertion order.
  EventHandle ScheduleAt(Time t, std::function<void()> fn, int priority = 0);

  /// Schedules `fn` after `delay` seconds (must be >= 0).
  EventHandle ScheduleAfter(Time delay, std::function<void()> fn,
                            int priority = 0);

  /// Cancels a pending event; returns false when it already fired or was
  /// already cancelled.
  bool Cancel(EventHandle& handle);

  /// Runs until the queue empties or Stop() is called.
  void Run();

  /// Runs until the queue empties, Stop() is called, or virtual time would
  /// pass `t_end`; afterwards now() == min(t_end, completion time).
  void RunUntil(Time t_end);

  /// Processes exactly one event if any is pending; returns false when the
  /// queue is empty.
  bool Step();

  /// Requests Run()/RunUntil() to return after the current event.
  void Stop() { stopped_ = true; }

  /// Number of events dispatched so far (diagnostics / determinism tests).
  uint64_t events_processed() const { return events_processed_; }

  /// Number of events currently queued, including cancelled tombstones not
  /// yet skipped or compacted away.
  size_t queue_size() const { return queue_.size(); }

 private:
  struct QueuedEvent {
    Time time;
    int priority;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  // Pops the heap top (which must exist) into a movable value.
  QueuedEvent PopTop();
  // Rebuilds the heap without tombstones once they exceed half the queue.
  void MaybeCompact();

  // Kernel metrics (events dispatched, tombstone compactions, queue
  // depth), resolved once per observability install (epoch) and then one
  // integer compare per event; dead code entirely when no registry is
  // installed.
  struct MetricsCache {
    uint64_t epoch = 0;
    obs::Counter* events = nullptr;
    obs::Counter* compactions = nullptr;
    obs::Gauge* queue_depth = nullptr;
  };
  void RefreshMetricsCache(obs::MetricsRegistry* m);

  std::vector<QueuedEvent> queue_;
  MetricsCache metrics_;
  size_t cancelled_in_queue_ = 0;
  Time now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  bool stopped_ = false;
};

}  // namespace sim
}  // namespace ff

#endif  // FF_SIM_SIMULATOR_H_
