#include "sim/series.h"

#include <algorithm>

#include "util/csv.h"
#include "util/logging.h"
#include "util/strings.h"

namespace ff {
namespace sim {

void SeriesRecorder::Record(const std::string& series, Time t, double value) {
  auto& pts = series_[series];
  FF_CHECK(pts.empty() || pts.back().time <= t)
      << "series " << series << " recorded out of order";
  pts.push_back(SeriesPoint{t, value});
}

std::vector<std::string> SeriesRecorder::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, _] : series_) names.push_back(name);
  return names;
}

bool SeriesRecorder::Has(const std::string& series) const {
  return series_.count(series) > 0;
}

util::StatusOr<std::vector<SeriesPoint>> SeriesRecorder::Get(
    const std::string& series) const {
  auto it = series_.find(series);
  if (it == series_.end()) {
    return util::Status::NotFound("series " + series);
  }
  return it->second;
}

util::StatusOr<double> SeriesRecorder::LastValue(
    const std::string& series) const {
  auto it = series_.find(series);
  if (it == series_.end() || it->second.empty()) {
    return util::Status::NotFound("series " + series);
  }
  return it->second.back().value;
}

util::StatusOr<Time> SeriesRecorder::FirstTimeAtLeast(
    const std::string& series, double threshold) const {
  auto it = series_.find(series);
  if (it == series_.end() || it->second.empty()) {
    return util::Status::NotFound("series " + series);
  }
  const auto& pts = it->second;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].value >= threshold) {
      if (i == 0 || pts[i - 1].value >= threshold) return pts[i].time;
      // Linear interpolation between i-1 and i.
      const auto& a = pts[i - 1];
      const auto& b = pts[i];
      if (b.value == a.value || b.time == a.time) return b.time;
      double frac = (threshold - a.value) / (b.value - a.value);
      return a.time + frac * (b.time - a.time);
    }
  }
  return util::Status::NotFound(
      util::StrFormat("series %s never reached %g", series.c_str(),
                      threshold));
}

void SeriesRecorder::WriteCsv(std::ostream* out) const {
  util::CsvWriter writer(out, {"series", "time", "value"});
  for (const auto& [name, pts] : series_) {
    for (const auto& p : pts) {
      writer
          .WriteRow({name, util::StrFormat("%.3f", p.time),
                     util::StrFormat("%.6g", p.value)})
          .ok();
    }
  }
}

void SeriesRecorder::WriteCsvGrid(std::ostream* out, Time t_end,
                                  Time dt) const {
  FF_CHECK(dt > 0.0) << "WriteCsvGrid: dt must be positive";
  std::vector<std::string> header{"time"};
  auto names = SeriesNames();
  header.insert(header.end(), names.begin(), names.end());
  util::CsvWriter writer(out, header);
  std::vector<size_t> cursor(names.size(), 0);
  for (Time t = 0.0; t <= t_end + dt * 0.5; t += dt) {
    std::vector<std::string> row{util::StrFormat("%.3f", t)};
    for (size_t i = 0; i < names.size(); ++i) {
      const auto& pts = series_.at(names[i]);
      while (cursor[i] + 1 < pts.size() && pts[cursor[i] + 1].time <= t) {
        ++cursor[i];
      }
      double v = 0.0;
      if (!pts.empty() && pts[cursor[i]].time <= t) v = pts[cursor[i]].value;
      row.push_back(util::StrFormat("%.6g", v));
    }
    writer.WriteRow(row).ok();
  }
}

}  // namespace sim
}  // namespace ff
