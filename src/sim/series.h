// Named time-series recording, used to capture the curves plotted in the
// paper's figures (e.g. "percentage of data at server" per file/directory,
// per-day walltimes) and dump them as CSV.

#ifndef FF_SIM_SERIES_H_
#define FF_SIM_SERIES_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/statusor.h"

namespace ff {
namespace sim {

/// One sample of a series.
struct SeriesPoint {
  Time time;
  double value;
};

/// Collects named (time, value) series.
class SeriesRecorder {
 public:
  /// Appends a sample. Samples within a series must be recorded in
  /// non-decreasing time order (the DES guarantees this naturally).
  void Record(const std::string& series, Time t, double value);

  /// Names in lexicographic order.
  std::vector<std::string> SeriesNames() const;

  bool Has(const std::string& series) const;

  /// Samples of a series; NotFound when absent.
  util::StatusOr<std::vector<SeriesPoint>> Get(
      const std::string& series) const;

  /// Last recorded value; NotFound when absent/empty.
  util::StatusOr<double> LastValue(const std::string& series) const;

  /// First time at which the series reached `threshold` (values are
  /// interpolated linearly between samples); NotFound when never reached.
  util::StatusOr<Time> FirstTimeAtLeast(const std::string& series,
                                        double threshold) const;

  /// Writes long-format CSV: series,time,value.
  void WriteCsv(std::ostream* out) const;

  /// Writes wide-format CSV sampled on a fixed grid [0, t_end] with step
  /// `dt`; each series is carried forward from its last sample (step
  /// interpolation). Header: time,<series...>.
  void WriteCsvGrid(std::ostream* out, Time t_end, Time dt) const;

  void Clear() { series_.clear(); }

 private:
  std::map<std::string, std::vector<SeriesPoint>> series_;
};

}  // namespace sim
}  // namespace ff

#endif  // FF_SIM_SERIES_H_
