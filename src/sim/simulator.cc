#include "sim/simulator.h"

#include "util/logging.h"

namespace ff {
namespace sim {

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle Simulator::ScheduleAt(Time t, std::function<void()> fn,
                                  int priority) {
  FF_CHECK(t >= now_) << "ScheduleAt in the past: t=" << t
                      << " now=" << now_;
  EventHandle handle;
  handle.state_ = std::make_shared<EventHandle::State>();
  queue_.push(QueuedEvent{t, priority, next_seq_++, std::move(fn),
                          handle.state_});
  return handle;
}

EventHandle Simulator::ScheduleAfter(Time delay, std::function<void()> fn,
                                     int priority) {
  FF_CHECK(delay >= 0.0) << "negative delay " << delay;
  return ScheduleAt(now_ + delay, std::move(fn), priority);
}

bool Simulator::Cancel(EventHandle& handle) {
  if (!handle.pending()) return false;
  handle.state_->cancelled = true;
  return true;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    QueuedEvent ev = queue_.top();
    queue_.pop();
    if (ev.state->cancelled) continue;  // tombstone
    FF_CHECK(ev.time >= now_) << "event queue time went backwards";
    now_ = ev.time;
    ev.state->fired = true;
    ++events_processed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Simulator::RunUntil(Time t_end) {
  stopped_ = false;
  while (!stopped_) {
    // Peek past tombstones without dispatching.
    while (!queue_.empty() && queue_.top().state->cancelled) queue_.pop();
    if (queue_.empty()) break;
    if (queue_.top().time > t_end) break;
    Step();
  }
  if (now_ < t_end) now_ = t_end;
}

}  // namespace sim
}  // namespace ff
