#include "sim/simulator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ff {
namespace sim {

namespace {
// Below this size a compaction pass costs more than skipping tombstones.
constexpr size_t kMinCompactSize = 64;
}  // namespace

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

void Simulator::RefreshMetricsCache(obs::MetricsRegistry* m) {
  metrics_.epoch = obs::ObsEpoch();
  metrics_.events = m->counter("sim.events_dispatched");
  metrics_.compactions = m->counter("sim.queue_compactions");
  metrics_.queue_depth = m->gauge("sim.queue_depth");
}

EventHandle Simulator::ScheduleAt(Time t, std::function<void()> fn,
                                  int priority) {
  FF_DCHECK(t >= now_) << "ScheduleAt in the past: t=" << t
                       << " now=" << now_;
  EventHandle handle;
  handle.state_ = std::make_shared<EventHandle::State>();
  queue_.push_back(QueuedEvent{t, priority, next_seq_++, std::move(fn),
                               handle.state_});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  return handle;
}

EventHandle Simulator::ScheduleAfter(Time delay, std::function<void()> fn,
                                     int priority) {
  FF_DCHECK(delay >= 0.0) << "negative delay " << delay;
  return ScheduleAt(now_ + delay, std::move(fn), priority);
}

bool Simulator::Cancel(EventHandle& handle) {
  if (!handle.pending()) return false;
  handle.state_->cancelled = true;
  ++cancelled_in_queue_;
  MaybeCompact();
  return true;
}

Simulator::QueuedEvent Simulator::PopTop() {
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  QueuedEvent ev = std::move(queue_.back());
  queue_.pop_back();
  return ev;
}

void Simulator::MaybeCompact() {
  if (queue_.size() < kMinCompactSize ||
      cancelled_in_queue_ * 2 <= queue_.size()) {
    return;
  }
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [](const QueuedEvent& ev) {
                                return ev.state->cancelled;
                              }),
               queue_.end());
  std::make_heap(queue_.begin(), queue_.end(), Later{});
  cancelled_in_queue_ = 0;
  if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
    if (obs::ObsEpoch() != metrics_.epoch) RefreshMetricsCache(m);
    metrics_.compactions->Increment();
  }
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    QueuedEvent ev = PopTop();
    if (ev.state->cancelled) {  // tombstone
      --cancelled_in_queue_;
      continue;
    }
    FF_DCHECK(ev.time >= now_) << "event queue time went backwards";
    now_ = ev.time;
    ev.state->fired = true;
    ++events_processed_;
    if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
      if (obs::ObsEpoch() != metrics_.epoch) RefreshMetricsCache(m);
      metrics_.events->Increment();
      metrics_.queue_depth->Set(static_cast<double>(queue_.size()));
    }
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Simulator::RunUntil(Time t_end) {
  stopped_ = false;
  while (!stopped_) {
    // Peek past tombstones without dispatching.
    while (!queue_.empty() && queue_.front().state->cancelled) {
      PopTop();
      --cancelled_in_queue_;
    }
    if (queue_.empty()) break;
    if (queue_.front().time > t_end) break;
    Step();
  }
  if (now_ < t_end) now_ = t_end;
}

}  // namespace sim
}  // namespace ff
