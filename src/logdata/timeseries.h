// Time-series analysis over per-day walltimes — the §4.3.1 toolkit that
// surfaces what the paper reads off Figs. 8-9: level shifts from timestep/
// code/mesh changes, contention spikes, and cascading-delay humps.

#ifndef FF_LOGDATA_TIMESERIES_H_
#define FF_LOGDATA_TIMESERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace ff {
namespace logdata {

/// A detected sustained level shift.
struct ChangePoint {
  size_t index;        // first sample of the new level
  double level_before; // mean of the window preceding the shift
  double level_after;  // mean of the window following the shift
  double shift() const { return level_after - level_before; }
};

/// A transient outlier (e.g. a one-day contention spike).
struct Spike {
  size_t index;
  double value;
  double baseline;  // local median
  double z;         // robust z-score (vs MAD)
};

/// Centered moving average with window `w` (odd recommended); edges use
/// the available samples. Requires w >= 1 and non-empty xs.
util::StatusOr<std::vector<double>> MovingAverage(
    const std::vector<double>& xs, size_t w);

/// Detects sustained level shifts: index i is a change point when the
/// means of the `window` samples before and after differ by more than
/// `min_shift` AND the shift dominates local noise. Spikes shorter than
/// `window` are not reported (use DetectSpikes). Change points are
/// separated by at least `window` samples.
util::StatusOr<std::vector<ChangePoint>> DetectChangePoints(
    const std::vector<double>& xs, size_t window, double min_shift);

/// Detects transient outliers by robust z-score against a rolling median
/// (window `w`); reports samples with |z| >= z_threshold that also
/// deviate by at least `min_relative` of the local baseline (guards
/// against near-noiseless series where any jitter has a huge z) and do
/// NOT persist (the neighbours return to baseline).
util::StatusOr<std::vector<Spike>> DetectSpikes(
    const std::vector<double>& xs, size_t w, double z_threshold,
    double min_relative = 0.10);

/// Human-readable report of both analyses ("day" labels are
/// first_day + index), the ForeMan log-analysis screen.
std::string AnalyzeSeries(const std::vector<double>& xs, int64_t first_day,
                          size_t window, double min_shift,
                          double z_threshold);

}  // namespace logdata
}  // namespace ff

#endif  // FF_LOGDATA_TIMESERIES_H_
