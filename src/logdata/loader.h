// Loader: populates the statistics database from crawled log records —
// the paper's "we populated a relational database with statistics
// extracted from forecast directories".

#ifndef FF_LOGDATA_LOADER_H_
#define FF_LOGDATA_LOADER_H_

#include <vector>

#include "logdata/log_record.h"
#include "statsdb/database.h"

namespace ff {
namespace parallel {
class ThreadPool;
}  // namespace parallel

namespace logdata {

/// Name and schema of the runs table.
inline constexpr char kRunsTable[] = "runs";

/// Schema: forecast TEXT, region TEXT, day INT, node TEXT,
/// code_version TEXT, mesh_sides INT, timesteps INT, start_time DOUBLE,
/// end_time DOUBLE, walltime DOUBLE, status TEXT. Incomplete runs carry
/// NULL end_time/walltime.
statsdb::Schema RunsSchema();

/// Creates (or replaces) the runs table from `records` and indexes the
/// columns the paper queries by (forecast, code_version, node).
///
/// With a pool, record-to-cell conversion (string formatting, Value
/// boxing) fans out across fixed record slices via a TaskGroup; the
/// BulkAppender then drains the slice buffers in slice order on the
/// calling thread, preserving statsdb's single-writer rule. Table
/// contents are byte-identical to the serial path regardless of pool
/// size. Null pool (or a 1-thread pool, or a small batch) loads inline.
util::StatusOr<statsdb::Table*> LoadRuns(
    statsdb::Database* db, const std::vector<LogRecord>& records,
    parallel::ThreadPool* pool = nullptr);

/// Appends one record to an existing runs table (incremental refresh, the
/// paper's "insert commands into the run scripts to update the database").
util::Status AppendRun(statsdb::Table* table, const LogRecord& record);

/// Inserts or replaces the (forecast, day) row — launch inserts a
/// status='running' row with NULL completion stats; completion patches
/// the same row in place, the paper's fix for "a currently executing
/// forecast will have incomplete statistics in the database".
util::Status UpsertRun(statsdb::Table* table, const LogRecord& record);

/// Converts a statsdb row back to a LogRecord (inverse of AppendRun).
util::StatusOr<LogRecord> RowToRecord(const statsdb::Schema& schema,
                                      const statsdb::Row& row);

}  // namespace logdata
}  // namespace ff

#endif  // FF_LOGDATA_LOADER_H_
