// Statistical process control for forecast run times.
//
// The paper's §1: "Plant Managers use statistical process control to
// reduce uncertainty on the factory floor. For example, process time
// variability, regardless of source, results in increased work-in-
// progress ... historical data can be used as a baseline to help
// determine possible effects of changes."
//
// Implements an individuals/moving-range (X-mR) control chart: the
// baseline window establishes the center line and 3-sigma control limits
// (sigma estimated as mean moving range / 1.128); subsequent samples are
// screened with Western Electric-style rules. Out-of-control signals are
// what should trigger a ForeMan re-plan *before* the Fig. 8 cascade
// builds.

#ifndef FF_LOGDATA_SPC_H_
#define FF_LOGDATA_SPC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace ff {
namespace logdata {

/// Why a sample was flagged.
enum class SpcRule {
  kBeyondLimits,     // rule 1: single point beyond a 3-sigma limit
  kRunOfEight,       // rule 4: 8 consecutive points on one side of center
  kTwoOfThreeBeyond2Sigma,  // rule 2: 2 of 3 beyond the same 2-sigma line
};

const char* SpcRuleName(SpcRule rule);

/// One out-of-control signal.
struct SpcSignal {
  size_t index;   // sample index within the monitored series
  double value;
  SpcRule rule;
  bool above;     // signal direction relative to the center line
};

/// The fitted chart.
struct ControlChart {
  double center = 0.0;      // baseline mean
  double sigma = 0.0;       // moving-range sigma estimate
  double ucl = 0.0;         // center + 3 sigma
  double lcl = 0.0;         // max(0, center - 3 sigma): walltimes >= 0
  size_t baseline_samples = 0;

  bool InControl(double x) const { return x <= ucl && x >= lcl; }
};

/// Fits an X-mR chart from a baseline window. Requires >= 5 samples and
/// non-identical values (a zero moving range would put the limits on the
/// center line; in that degenerate case sigma is taken as 0 and every
/// differing sample signals).
util::StatusOr<ControlChart> FitControlChart(
    const std::vector<double>& baseline);

/// Screens `samples` against the chart with the three implemented rules;
/// returns signals ordered by index. Indices refer to `samples`.
std::vector<SpcSignal> Monitor(const ControlChart& chart,
                               const std::vector<double>& samples);

/// Convenience: fit on the first `baseline_n` samples of `series`,
/// monitor the rest (signal indices are series-relative), and render a
/// short report with day labels starting at `first_day + baseline_n`.
util::StatusOr<std::string> SpcReport(const std::vector<double>& series,
                                      size_t baseline_n,
                                      int64_t first_day);

}  // namespace logdata
}  // namespace ff

#endif  // FF_LOGDATA_SPC_H_
