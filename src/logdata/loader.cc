#include "logdata/loader.h"

#include <algorithm>

#include "parallel/thread_pool.h"

namespace ff {
namespace logdata {

using statsdb::Column;
using statsdb::DataType;
using statsdb::Row;
using statsdb::Schema;
using statsdb::Table;
using statsdb::Value;

Schema RunsSchema() {
  return Schema({
      {"forecast", DataType::kString},
      {"region", DataType::kString},
      {"day", DataType::kInt64},
      {"node", DataType::kString},
      {"code_version", DataType::kString},
      {"mesh_sides", DataType::kInt64},
      {"timesteps", DataType::kInt64},
      {"start_time", DataType::kDouble},
      {"end_time", DataType::kDouble},
      {"walltime", DataType::kDouble},
      {"status", DataType::kString},
  });
}

namespace {

Row RecordToRow(const LogRecord& r) {
  bool finished = r.status == RunStatus::kCompleted;
  return Row{
      Value::String(r.forecast),
      Value::String(r.region),
      Value::Int64(r.day),
      Value::String(r.node),
      Value::String(r.code_version),
      Value::Int64(r.mesh_sides),
      Value::Int64(r.timesteps),
      Value::Double(r.start_time),
      finished ? Value::Double(r.end_time) : Value::Null(),
      finished ? Value::Double(r.walltime) : Value::Null(),
      Value::String(RunStatusName(r.status)),
  };
}

// Below this, slicing overhead beats the conversion work saved.
constexpr size_t kParallelLoadMinRecords = 4096;

}  // namespace

util::StatusOr<Table*> LoadRuns(statsdb::Database* db,
                                const std::vector<LogRecord>& records,
                                parallel::ThreadPool* pool) {
  if (db->HasTable(kRunsTable)) {
    FF_RETURN_IF_ERROR(db->DropTable(kRunsTable));
  }
  FF_ASSIGN_OR_RETURN(Table * table, db->CreateTable(kRunsTable,
                                                     RunsSchema()));
  if (pool != nullptr && pool->num_threads() > 1 &&
      records.size() >= kParallelLoadMinRecords) {
    // Convert fixed record slices to rows in parallel (slice boundaries
    // depend only on the record count, never on worker scheduling), then
    // drain the buffers in slice order under the single writer. Same
    // bytes in the table as the inline path below.
    const size_t slice = kParallelLoadMinRecords / 4;
    const size_t num_slices = (records.size() + slice - 1) / slice;
    std::vector<std::vector<Row>> buffers(num_slices);
    parallel::TaskGroup group(pool);
    group.ParallelFor(num_slices, [&](size_t s) {
      size_t begin = s * slice;
      size_t end = std::min(begin + slice, records.size());
      buffers[s].reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        buffers[s].push_back(RecordToRow(records[i]));
      }
    });
    Table::BulkAppender app(table);
    app.Reserve(records.size());
    for (const auto& buf : buffers) {
      for (const Row& row : buf) {
        for (const Value& v : row) app.Cell(v);
        FF_RETURN_IF_ERROR(app.EndRow());
      }
    }
    FF_RETURN_IF_ERROR(app.Finish());
  } else {
    // Bulk columnar append: cells go straight into the typed column
    // vectors, skipping per-row Row construction and validation.
    Table::BulkAppender app(table);
    app.Reserve(records.size());
    for (const auto& r : records) {
      bool finished = r.status == RunStatus::kCompleted;
      app.String(r.forecast)
          .String(r.region)
          .Int64(r.day)
          .String(r.node)
          .String(r.code_version)
          .Int64(r.mesh_sides)
          .Int64(r.timesteps)
          .Double(r.start_time);
      if (finished) {
        app.Double(r.end_time).Double(r.walltime);
      } else {
        app.Null().Null();
      }
      app.String(RunStatusName(r.status));
      FF_RETURN_IF_ERROR(app.EndRow());
    }
    FF_RETURN_IF_ERROR(app.Finish());
  }
  FF_RETURN_IF_ERROR(table->CreateIndex("forecast"));
  FF_RETURN_IF_ERROR(table->CreateIndex("code_version"));
  FF_RETURN_IF_ERROR(table->CreateIndex("node"));
  return table;
}

util::Status AppendRun(Table* table, const LogRecord& record) {
  return table->Insert(RecordToRow(record));
}

util::Status UpsertRun(Table* table, const LogRecord& record) {
  FF_ASSIGN_OR_RETURN(
      std::vector<size_t> candidates,
      table->Lookup("forecast", Value::String(record.forecast)));
  FF_ASSIGN_OR_RETURN(size_t day_col, table->schema().IndexOf("day"));
  Row replacement = RecordToRow(record);
  for (size_t i : candidates) {
    const Row& row = table->row(i);
    if (!row[day_col].is_null() &&
        row[day_col].int64_value() == record.day) {
      for (size_t c = 0; c < replacement.size(); ++c) {
        FF_RETURN_IF_ERROR(table->UpdateCell(i, c, replacement[c]));
      }
      return util::Status::OK();
    }
  }
  return table->Insert(std::move(replacement));
}

util::StatusOr<LogRecord> RowToRecord(const Schema& schema, const Row& row) {
  LogRecord r;
  auto get = [&](const char* name) -> util::StatusOr<Value> {
    FF_ASSIGN_OR_RETURN(size_t i, schema.IndexOf(name));
    return row[i];
  };
  FF_ASSIGN_OR_RETURN(Value v, get("forecast"));
  r.forecast = v.string_value();
  FF_ASSIGN_OR_RETURN(v, get("region"));
  r.region = v.is_null() ? "" : v.string_value();
  FF_ASSIGN_OR_RETURN(v, get("day"));
  r.day = v.int64_value();
  FF_ASSIGN_OR_RETURN(v, get("node"));
  r.node = v.is_null() ? "" : v.string_value();
  FF_ASSIGN_OR_RETURN(v, get("code_version"));
  r.code_version = v.is_null() ? "" : v.string_value();
  FF_ASSIGN_OR_RETURN(v, get("mesh_sides"));
  r.mesh_sides = v.is_null() ? 0 : v.int64_value();
  FF_ASSIGN_OR_RETURN(v, get("timesteps"));
  r.timesteps = v.is_null() ? 0 : v.int64_value();
  FF_ASSIGN_OR_RETURN(v, get("start_time"));
  r.start_time = v.is_null() ? 0.0 : v.double_value();
  FF_ASSIGN_OR_RETURN(v, get("end_time"));
  r.end_time = v.is_null() ? 0.0 : v.double_value();
  FF_ASSIGN_OR_RETURN(v, get("walltime"));
  r.walltime = v.is_null() ? 0.0 : v.double_value();
  FF_ASSIGN_OR_RETURN(v, get("status"));
  if (!v.is_null()) {
    const std::string& s = v.string_value();
    if (s == "completed") r.status = RunStatus::kCompleted;
    else if (s == "running") r.status = RunStatus::kRunning;
    else if (s == "dropped") r.status = RunStatus::kDropped;
    else if (s == "failed") r.status = RunStatus::kFailed;
  }
  return r;
}

}  // namespace logdata
}  // namespace ff
