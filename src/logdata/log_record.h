// Log records harvested from per-forecast run directories (§4.3.2).
// Each forecast runs in its own directory; the factory writes one run.log
// per (forecast, day) with the statistics the paper's Perl crawlers
// extracted: code version, mesh, timesteps, node, start/end, walltime.

#ifndef FF_LOGDATA_LOG_RECORD_H_
#define FF_LOGDATA_LOG_RECORD_H_

#include <cstdint>
#include <string>

namespace ff {
namespace logdata {

/// Completion state of a logged run.
enum class RunStatus {
  kCompleted,
  kRunning,   // statistics incomplete ("does not have a completion time")
  kDropped,   // shed by ForeMan priority policy
  kFailed,    // node failure mid-run
};

const char* RunStatusName(RunStatus s);

/// One run execution = one tuple in the statistics database.
struct LogRecord {
  std::string forecast;
  std::string region;
  int64_t day = 0;  // day of year, matching Figs. 8-9's x axis
  std::string node;
  std::string code_version;
  int64_t mesh_sides = 0;
  int64_t timesteps = 0;
  double start_time = 0.0;  // campaign seconds
  double end_time = 0.0;    // 0 when not finished
  double walltime = 0.0;    // 0 when not finished
  RunStatus status = RunStatus::kCompleted;
};

}  // namespace logdata
}  // namespace ff

#endif  // FF_LOGDATA_LOG_RECORD_H_
