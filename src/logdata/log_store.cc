#include "logdata/log_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.h"
#include "util/strings.h"

namespace fs = std::filesystem;

namespace ff {
namespace logdata {

const char* RunStatusName(RunStatus s) {
  switch (s) {
    case RunStatus::kCompleted:
      return "completed";
    case RunStatus::kRunning:
      return "running";
    case RunStatus::kDropped:
      return "dropped";
    case RunStatus::kFailed:
      return "failed";
  }
  return "?";
}

namespace {

util::StatusOr<RunStatus> ParseRunStatus(const std::string& name) {
  if (name == "completed") return RunStatus::kCompleted;
  if (name == "running") return RunStatus::kRunning;
  if (name == "dropped") return RunStatus::kDropped;
  if (name == "failed") return RunStatus::kFailed;
  return util::Status::ParseError("unknown run status: " + name);
}

}  // namespace

std::string FormatRunLog(const LogRecord& r) {
  std::ostringstream os;
  os << "forecast: " << r.forecast << "\n"
     << "region: " << r.region << "\n"
     << "day: " << r.day << "\n"
     << "node: " << r.node << "\n"
     << "code_version: " << r.code_version << "\n"
     << "mesh_sides: " << r.mesh_sides << "\n"
     << "timesteps: " << r.timesteps << "\n"
     << "start_time: " << util::StrFormat("%.3f", r.start_time) << "\n"
     << "end_time: " << util::StrFormat("%.3f", r.end_time) << "\n"
     << "walltime: " << util::StrFormat("%.3f", r.walltime) << "\n"
     << "status: " << RunStatusName(r.status) << "\n";
  return os.str();
}

util::StatusOr<LogRecord> ParseRunLog(const std::string& text) {
  LogRecord r;
  bool saw_forecast = false;
  for (const auto& raw_line : util::Split(text, '\n')) {
    std::string line = util::Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;  // noise line
    std::string key = util::Trim(line.substr(0, colon));
    std::string value = util::Trim(line.substr(colon + 1));
    if (key == "forecast") {
      r.forecast = value;
      saw_forecast = true;
    } else if (key == "region") {
      r.region = value;
    } else if (key == "day") {
      FF_ASSIGN_OR_RETURN(r.day, util::ParseInt64(value));
    } else if (key == "node") {
      r.node = value;
    } else if (key == "code_version") {
      r.code_version = value;
    } else if (key == "mesh_sides") {
      FF_ASSIGN_OR_RETURN(r.mesh_sides, util::ParseInt64(value));
    } else if (key == "timesteps") {
      FF_ASSIGN_OR_RETURN(r.timesteps, util::ParseInt64(value));
    } else if (key == "start_time") {
      FF_ASSIGN_OR_RETURN(r.start_time, util::ParseDouble(value));
    } else if (key == "end_time") {
      FF_ASSIGN_OR_RETURN(r.end_time, util::ParseDouble(value));
    } else if (key == "walltime") {
      FF_ASSIGN_OR_RETURN(r.walltime, util::ParseDouble(value));
    } else if (key == "status") {
      FF_ASSIGN_OR_RETURN(r.status, ParseRunStatus(value));
    }
    // Unknown keys ignored.
  }
  if (!saw_forecast) {
    return util::Status::ParseError("run.log missing 'forecast' key");
  }
  return r;
}

LogStore::LogStore(std::string root_dir) : root_(std::move(root_dir)) {}

std::string LogStore::RunDir(const std::string& forecast,
                             int64_t day) const {
  return root_ + "/" + forecast + "/" +
         util::StrFormat("day%03lld", static_cast<long long>(day));
}

util::Status LogStore::Write(const LogRecord& record) {
  if (record.forecast.empty()) {
    return util::Status::InvalidArgument("record has empty forecast name");
  }
  std::string dir = RunDir(record.forecast, record.day);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return util::Status::IoError("create_directories " + dir + ": " +
                                 ec.message());
  }
  std::string path = dir + "/run.log";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return util::Status::IoError("cannot open " + path);
  }
  out << FormatRunLog(record);
  out.close();
  if (!out) {
    return util::Status::IoError("write failed: " + path);
  }
  return util::Status::OK();
}

Crawler::Crawler(std::string root_dir) : root_(std::move(root_dir)) {}

util::StatusOr<std::vector<LogRecord>> Crawler::CrawlAll() {
  files_seen_ = 0;
  files_skipped_ = 0;
  std::vector<LogRecord> records;
  std::error_code ec;
  if (!fs::exists(root_, ec) || ec) {
    return util::Status::NotFound("log root " + root_);
  }
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().filename() != "run.log") continue;
    ++files_seen_;
    std::ifstream in(it->path());
    if (!in) {
      ++files_skipped_;
      continue;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = ParseRunLog(buffer.str());
    if (!parsed.ok()) {
      ++files_skipped_;
      continue;
    }
    records.push_back(std::move(parsed).value());
  }
  if (ec) {
    return util::Status::IoError("crawl " + root_ + ": " + ec.message());
  }
  std::sort(records.begin(), records.end(),
            [](const LogRecord& a, const LogRecord& b) {
              if (a.forecast != b.forecast) return a.forecast < b.forecast;
              return a.day < b.day;
            });
  return records;
}

}  // namespace logdata
}  // namespace ff
