#include "logdata/spc.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.h"

namespace ff {
namespace logdata {

const char* SpcRuleName(SpcRule rule) {
  switch (rule) {
    case SpcRule::kBeyondLimits:
      return "beyond-3-sigma";
    case SpcRule::kRunOfEight:
      return "run-of-8";
    case SpcRule::kTwoOfThreeBeyond2Sigma:
      return "2-of-3-beyond-2-sigma";
  }
  return "?";
}

util::StatusOr<ControlChart> FitControlChart(
    const std::vector<double>& baseline) {
  if (baseline.size() < 5) {
    return util::Status::InvalidArgument(
        "control chart needs at least 5 baseline samples");
  }
  ControlChart chart;
  chart.baseline_samples = baseline.size();
  double sum = 0.0;
  for (double x : baseline) sum += x;
  chart.center = sum / static_cast<double>(baseline.size());
  // Mean moving range; d2 = 1.128 for subgroup size 2.
  double mr_sum = 0.0;
  for (size_t i = 1; i < baseline.size(); ++i) {
    mr_sum += std::fabs(baseline[i] - baseline[i - 1]);
  }
  double mr_mean = mr_sum / static_cast<double>(baseline.size() - 1);
  chart.sigma = mr_mean / 1.128;
  chart.ucl = chart.center + 3.0 * chart.sigma;
  chart.lcl = std::max(0.0, chart.center - 3.0 * chart.sigma);
  return chart;
}

std::vector<SpcSignal> Monitor(const ControlChart& chart,
                               const std::vector<double>& samples) {
  std::vector<SpcSignal> signals;
  int run_side = 0;   // +1 above center, -1 below
  int run_length = 0;
  // For rule 2, remember which of the last 3 samples crossed 2 sigma.
  std::vector<int> beyond2;  // per-sample: +1/-1/0
  beyond2.reserve(samples.size());

  for (size_t i = 0; i < samples.size(); ++i) {
    double x = samples[i];
    // Rule 1.
    if (!chart.InControl(x)) {
      signals.push_back(SpcSignal{i, x, SpcRule::kBeyondLimits,
                                  x > chart.center});
    }
    // Rule 4 bookkeeping.
    int side = x > chart.center ? 1 : (x < chart.center ? -1 : 0);
    if (side != 0 && side == run_side) {
      ++run_length;
    } else {
      run_side = side;
      run_length = side == 0 ? 0 : 1;
    }
    if (run_length == 8) {
      signals.push_back(
          SpcSignal{i, x, SpcRule::kRunOfEight, run_side > 0});
    }
    // Rule 2 bookkeeping.
    double two_sigma_hi = chart.center + 2.0 * chart.sigma;
    double two_sigma_lo = chart.center - 2.0 * chart.sigma;
    int b2 = x > two_sigma_hi ? 1 : (x < two_sigma_lo ? -1 : 0);
    beyond2.push_back(b2);
    if (beyond2.size() >= 3 && b2 != 0) {
      int same = 0;
      for (size_t k = beyond2.size() - 3; k < beyond2.size(); ++k) {
        if (beyond2[k] == b2) ++same;
      }
      bool already_rule1 =
          !signals.empty() && signals.back().index == i &&
          signals.back().rule == SpcRule::kBeyondLimits;
      if (same >= 2 && !already_rule1) {
        signals.push_back(SpcSignal{
            i, x, SpcRule::kTwoOfThreeBeyond2Sigma, b2 > 0});
      }
    }
  }
  return signals;
}

util::StatusOr<std::string> SpcReport(const std::vector<double>& series,
                                      size_t baseline_n,
                                      int64_t first_day) {
  if (baseline_n >= series.size()) {
    return util::Status::InvalidArgument(
        "baseline consumes the whole series");
  }
  std::vector<double> baseline(series.begin(),
                               series.begin() +
                                   static_cast<ptrdiff_t>(baseline_n));
  FF_ASSIGN_OR_RETURN(ControlChart chart, FitControlChart(baseline));
  std::vector<double> monitored(
      series.begin() + static_cast<ptrdiff_t>(baseline_n), series.end());
  auto signals = Monitor(chart, monitored);

  std::ostringstream os;
  os << util::StrFormat(
      "X-mR chart: center %.0f s, sigma %.0f s, limits [%.0f, %.0f] "
      "(baseline %zu days)\n",
      chart.center, chart.sigma, chart.lcl, chart.ucl,
      chart.baseline_samples);
  if (signals.empty()) {
    os << "  process in control over " << monitored.size() << " days\n";
  }
  for (const auto& s : signals) {
    os << util::StrFormat(
        "  day %lld: %.0f s %s (%s)\n",
        static_cast<long long>(first_day +
                               static_cast<int64_t>(baseline_n + s.index)),
        s.value, s.above ? "high" : "low", SpcRuleName(s.rule));
  }
  return os.str();
}

}  // namespace logdata
}  // namespace ff
