#include "logdata/timeseries.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.h"
#include "util/summary_stats.h"

namespace ff {
namespace logdata {

namespace {

double MeanOf(const std::vector<double>& xs, size_t begin, size_t end) {
  double s = 0.0;
  for (size_t i = begin; i < end; ++i) s += xs[i];
  return end > begin ? s / static_cast<double>(end - begin) : 0.0;
}

double MedianOf(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

util::StatusOr<std::vector<double>> MovingAverage(
    const std::vector<double>& xs, size_t w) {
  if (xs.empty()) return util::Status::InvalidArgument("empty series");
  if (w < 1) return util::Status::InvalidArgument("window must be >= 1");
  std::vector<double> out(xs.size());
  size_t half = w / 2;
  for (size_t i = 0; i < xs.size(); ++i) {
    size_t b = i >= half ? i - half : 0;
    size_t e = std::min(xs.size(), i + half + 1);
    out[i] = MeanOf(xs, b, e);
  }
  return out;
}

util::StatusOr<std::vector<ChangePoint>> DetectChangePoints(
    const std::vector<double>& xs, size_t window, double min_shift) {
  if (window < 2) {
    return util::Status::InvalidArgument("window must be >= 2");
  }
  if (min_shift <= 0.0) {
    return util::Status::InvalidArgument("min_shift must be positive");
  }
  std::vector<ChangePoint> out;
  if (xs.size() < 2 * window) return out;
  size_t last_cp = 0;
  bool has_last = false;
  for (size_t i = window; i + window <= xs.size(); ++i) {
    double before = MeanOf(xs, i - window, i);
    double after = MeanOf(xs, i, i + window);
    double shift = after - before;
    if (std::fabs(shift) < min_shift) continue;
    // Require the shift to dominate the noise of both windows.
    util::SummaryStats sb, sa;
    for (size_t k = i - window; k < i; ++k) sb.Add(xs[k]);
    for (size_t k = i; k < i + window; ++k) sa.Add(xs[k]);
    double noise = std::max(sb.stddev(), sa.stddev());
    if (std::fabs(shift) < 2.0 * noise) continue;
    if (has_last && i - last_cp < window) {
      // Within the exclusion zone of the previous change point; keep the
      // one with the larger shift.
      if (std::fabs(shift) > std::fabs(out.back().shift())) {
        out.back() = ChangePoint{i, before, after};
        last_cp = i;
      }
      continue;
    }
    out.push_back(ChangePoint{i, before, after});
    last_cp = i;
    has_last = true;
  }
  return out;
}

util::StatusOr<std::vector<Spike>> DetectSpikes(
    const std::vector<double>& xs, size_t w, double z_threshold,
    double min_relative) {
  if (w < 3) return util::Status::InvalidArgument("window must be >= 3");
  if (z_threshold <= 0.0) {
    return util::Status::InvalidArgument("z_threshold must be positive");
  }
  std::vector<Spike> out;
  if (xs.size() < w) return out;
  size_t half = w / 2;
  for (size_t i = 0; i < xs.size(); ++i) {
    size_t b = i >= half ? i - half : 0;
    size_t e = std::min(xs.size(), b + w);
    if (e - b < 3) continue;
    // Local neighbourhood excluding the candidate itself.
    std::vector<double> neigh;
    neigh.reserve(e - b);
    for (size_t k = b; k < e; ++k) {
      if (k != i) neigh.push_back(xs[k]);
    }
    double med = MedianOf(neigh);
    std::vector<double> devs;
    devs.reserve(neigh.size());
    for (double v : neigh) devs.push_back(std::fabs(v - med));
    double mad = MedianOf(devs);
    double scale = mad > 1e-12 ? 1.4826 * mad : 1e-12;
    double z = (xs[i] - med) / scale;
    if (std::fabs(z) < z_threshold) continue;
    if (std::fabs(med) > 1e-12 &&
        std::fabs(xs[i] - med) < min_relative * std::fabs(med)) {
      continue;
    }
    // Transience: immediate neighbours must sit near the baseline, which
    // distinguishes a spike from a level shift.
    bool left_ok = i == 0 || std::fabs(xs[i - 1] - med) <
                                 0.5 * std::fabs(xs[i] - med);
    bool right_ok = i + 1 >= xs.size() ||
                    std::fabs(xs[i + 1] - med) <
                        0.5 * std::fabs(xs[i] - med);
    if (left_ok && right_ok) {
      out.push_back(Spike{i, xs[i], med, z});
    }
  }
  return out;
}

std::string AnalyzeSeries(const std::vector<double>& xs, int64_t first_day,
                          size_t window, double min_shift,
                          double z_threshold) {
  std::ostringstream os;
  os << "series: " << xs.size() << " samples, days " << first_day << ".."
     << first_day + static_cast<int64_t>(xs.size()) - 1 << "\n";
  auto cps = DetectChangePoints(xs, window, min_shift);
  if (cps.ok()) {
    for (const auto& cp : *cps) {
      os << util::StrFormat(
          "  level shift at day %lld: %.0f -> %.0f (%+.0f s)\n",
          static_cast<long long>(first_day +
                                 static_cast<int64_t>(cp.index)),
          cp.level_before, cp.level_after, cp.shift());
    }
  }
  auto spikes = DetectSpikes(xs, window | 1, z_threshold);
  if (spikes.ok()) {
    for (const auto& sp : *spikes) {
      os << util::StrFormat(
          "  spike at day %lld: %.0f (baseline %.0f, z=%.1f)\n",
          static_cast<long long>(first_day +
                                 static_cast<int64_t>(sp.index)),
          sp.value, sp.baseline, sp.z);
    }
  }
  return os.str();
}

}  // namespace logdata
}  // namespace ff
