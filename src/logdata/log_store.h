// LogStore: writes run.log files into the paper's flat per-forecast
// directory layout —
//     <root>/<forecast>/<day NNN>/run.log
// — and Crawler: walks that layout back into LogRecords (the paper's
// "scripts to crawl all existing directories to parse log files").

#ifndef FF_LOGDATA_LOG_STORE_H_
#define FF_LOGDATA_LOG_STORE_H_

#include <string>
#include <vector>

#include "logdata/log_record.h"
#include "util/statusor.h"

namespace ff {
namespace logdata {

/// Serializes a record to run.log's "key: value" format.
std::string FormatRunLog(const LogRecord& record);

/// Parses run.log text; unknown keys are ignored (real logs carry extra
/// noise), missing keys default.
util::StatusOr<LogRecord> ParseRunLog(const std::string& text);

/// Filesystem-backed store of run directories.
class LogStore {
 public:
  explicit LogStore(std::string root_dir);

  /// Writes (or overwrites, e.g. when a running forecast completes)
  /// <root>/<forecast>/dayNNN/run.log.
  util::Status Write(const LogRecord& record);

  /// Path helpers.
  const std::string& root() const { return root_; }
  std::string RunDir(const std::string& forecast, int64_t day) const;

 private:
  std::string root_;
};

/// Crawls a LogStore-layout tree into records, sorted by (forecast, day).
class Crawler {
 public:
  explicit Crawler(std::string root_dir);

  /// Parses every run.log under the root. Unreadable or malformed files
  /// are skipped and counted (the factory's real logs have partial days).
  util::StatusOr<std::vector<LogRecord>> CrawlAll();

  size_t files_seen() const { return files_seen_; }
  size_t files_skipped() const { return files_skipped_; }

 private:
  std::string root_;
  size_t files_seen_ = 0;
  size_t files_skipped_ = 0;
};

}  // namespace logdata
}  // namespace ff

#endif  // FF_LOGDATA_LOG_STORE_H_
