// ForecastRun: executes one forecast end to end on the simulated plant,
// under either of the paper's §4.2 data-flow architectures:
//
//   Architecture 1 (kProductsAtNode): the simulation and the
//   master-process product generator run on the compute node; rsync
//   incrementally copies model outputs AND products to the server.
//
//   Architecture 2 (kProductsAtServer): only the simulation runs on the
//   compute node; rsync copies model outputs to the server, where the
//   master process generates products (no product transfer needed).
//
// The run records, per tracked file/directory, the fraction of its bytes
// resident at the server over time — the y-axis of Figs. 6-7.

#ifndef FF_DATAFLOW_FORECAST_RUN_H_
#define FF_DATAFLOW_FORECAST_RUN_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "fault/injector.h"
#include "fault/retry.h"
#include "obs/trace.h"
#include "sim/series.h"
#include "util/rng.h"
#include "workload/cost_model.h"
#include "workload/forecast_spec.h"

namespace ff {
namespace dataflow {

/// The two data-flow architectures of §4.2.
enum class Architecture {
  kProductsAtNode = 1,   // paper's Figure 4 / Figure 6
  kProductsAtServer = 2, // paper's Figure 5 / Figure 7
};

const char* ArchitectureName(Architecture a);

/// Tunables of a run (defaults reproduce the paper's testbed behaviour).
struct RunConfig {
  Architecture arch = Architecture::kProductsAtNode;
  workload::CostModel cost_model;

  /// rsync wake-up period (the paper stages results "periodically").
  double rsync_interval = 300.0;
  /// Master-process poll period for launching product tasks.
  double poll_interval = 300.0;
  /// Cap on concurrently running product tasks per run (master_process.pl
  /// style throttle).
  int max_concurrent_products = 4;
  /// Architecture 2 only: the server-side master process admits a product
  /// task only when its working set still fits the server's RAM. This is
  /// what lets the paper run four product sets concurrently "increasing
  /// the completion time by only a small amount"; the legacy node-side
  /// script (Architecture 1) has no such throttle.
  bool server_admission_control = true;

  /// Resident memory of the simulation and of one product task; drives
  /// Machine-level thrashing when the combined working set exceeds RAM.
  double sim_mem_bytes = 700e6;
  double product_mem_bytes = 300e6;

  /// Multiplier on product-task CPU cost when the task is colocated with
  /// a still-running simulation (disk/page-cache interference — the
  /// paper's stated reason "running them concurrently may increase the
  /// running times of both"). Applies only in Architecture 1.
  double colocated_io_penalty = 3.3;

  /// Record per-entity series into the recorder under
  /// "<series_prefix><entity>" (empty prefix = raw entity names).
  std::string series_prefix;
  bool record_series = true;

  /// Fault handling. When `injector` is set the run subscribes to
  /// kTaskTransient faults on its hosts and kTransferCorruption faults on
  /// its uplink; `retry` governs backoff and attempt budgets, and `rng`
  /// (required then) supplies kill decisions and backoff jitter from the
  /// run's own stream. retry.transfer_timeout > 0 additionally arms a
  /// watchdog that cancels and re-sends a stuck rsync transfer from its
  /// acked bytes. With injector == nullptr and transfer_timeout == 0 the
  /// run schedules no extra events and draws nothing — behavior is
  /// byte-identical to a fault-unaware configuration.
  fault::RetryPolicy retry;
  util::Rng* rng = nullptr;
  fault::FaultInjector* injector = nullptr;
};

/// One forecast run in flight.
class ForecastRun {
 public:
  /// `node` runs the simulation; `uplink` connects it to `server`.
  /// `recorder` may be null when cfg.record_series is false.
  ForecastRun(sim::Simulator* sim, cluster::Machine* node,
              cluster::Link* uplink, cluster::Machine* server,
              sim::SeriesRecorder* recorder,
              const workload::ForecastSpec& spec, RunConfig cfg);

  /// Schedules the run to begin now. Call at most once.
  void Start();

  /// Invoked once, when every byte of every output and product is at the
  /// server and all product increments are processed.
  void set_on_complete(std::function<void()> fn) {
    on_complete_ = std::move(fn);
  }

  bool started() const { return started_; }
  bool done() const { return done_; }
  bool sim_done() const { return increments_done_ == spec_.increments; }

  /// True once a task or transfer exhausted its retry budget: the run is
  /// abandoned, done() stays false, and on_complete never fires.
  bool failed() const { return failed_; }

  /// Retries performed (task restarts, transfer re-sends, corruption
  /// re-sends) and reference-speed CPU-seconds burned by killed attempts.
  int retries() const { return retries_; }
  double wasted_cpu_seconds() const { return wasted_cpu_seconds_; }

  sim::Time start_time() const { return start_time_; }
  sim::Time sim_finish_time() const { return sim_finish_time_; }
  sim::Time finish_time() const { return finish_time_; }

  /// Byte accounting (experiment T2: bandwidth saving of Architecture 2).
  double model_bytes_generated() const;
  double product_bytes_generated() const;
  double bytes_transferred() const { return bytes_transferred_; }

  const workload::ForecastSpec& spec() const { return spec_; }

  /// The run's kRun span while a recorder is active (0 otherwise). Child
  /// task/transfer spans hang off it.
  obs::SpanId span() const { return span_; }

 private:
  struct FileState {
    const workload::OutputFileSpec* spec;
    std::vector<double> cum;  // cum[i] = bytes present after increment i
    double generated = 0.0;
    double sent = 0.0;       // handed to an rsync transfer
    double at_server = 0.0;
  };
  struct ProductState {
    const workload::ProductSpec* spec;
    int ready = 0;      // increments whose inputs are available
    int processed = 0;  // increments fully processed
    int launched = 0;   // increments handed to a running task
    int running = 0;    // tasks in flight
    double generated = 0.0;  // bytes produced (at node for arch 1)
    double sent = 0.0;
    double at_server = 0.0;
    cluster::TaskId task = 0;    // in-flight task (0 when none)
    double work = 0.0;           // CPU-seconds assigned to that task
    int failures = 0;            // transient kills of the current increment
    double backoff_until = 0.0;  // no relaunch before this instant
  };

  void StartSimIncrement(int index);
  void OnSimIncrementDone(int index);
  void PollProducts();
  void TryLaunchProducts();
  void OnProductTaskDone(size_t product_index);
  void RsyncCycle();
  void IssueTransfer(double wire_bytes);
  void OnTransferDone();
  void OnTransferTimeout();
  void UpdateServerSideReadiness();
  void RecordEntity(const std::string& name, double at, double total);
  void CheckDone();

  // Fault-reaction path (active only when cfg_.injector is set).
  void OnFault(const fault::FaultNotice& notice);
  void KillSimTask();
  void KillProductTask(size_t product_index);
  void HandleCorruption(double fraction);
  void Fail(const std::string& reason);
  cluster::Machine* ProductHost() const;

  double SimWorkPerIncrement() const;

  sim::Simulator* sim_;
  cluster::Machine* node_;
  cluster::Link* uplink_;
  cluster::Machine* server_;
  sim::SeriesRecorder* recorder_;
  workload::ForecastSpec spec_;
  RunConfig cfg_;

  std::vector<FileState> files_;
  std::vector<ProductState> products_;

  obs::SpanId span_ = 0;
  bool started_ = false;
  bool done_ = false;
  bool failed_ = false;
  int increments_done_ = 0;
  int running_products_total_ = 0;
  bool transfer_in_flight_ = false;
  bool rsync_scheduled_ = false;
  double bytes_transferred_ = 0.0;

  // Simulation-task bookkeeping for transient kills.
  cluster::TaskId sim_task_ = 0;
  bool sim_task_running_ = false;
  int sim_failures_ = 0;

  // In-flight rsync transfer; amounts are credited when the (possibly
  // re-issued) wire transfer finally completes.
  std::vector<double> tx_file_amounts_;
  std::vector<double> tx_product_amounts_;
  double tx_wire_total_ = 0.0;
  cluster::TransferId tx_id_ = 0;
  int tx_failures_ = 0;
  sim::EventHandle tx_watchdog_;

  int retries_ = 0;
  double wasted_cpu_seconds_ = 0.0;

  sim::Time start_time_ = 0.0;
  sim::Time sim_finish_time_ = 0.0;
  sim::Time finish_time_ = 0.0;

  std::function<void()> on_complete_;
};

}  // namespace dataflow
}  // namespace ff

#endif  // FF_DATAFLOW_FORECAST_RUN_H_
