#include "dataflow/forecast_run.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ff {
namespace dataflow {

namespace {
constexpr double kByteEpsilon = 1.0;  // byte-accounting slack
}

const char* ArchitectureName(Architecture a) {
  switch (a) {
    case Architecture::kProductsAtNode:
      return "arch1-products-at-node";
    case Architecture::kProductsAtServer:
      return "arch2-products-at-server";
  }
  return "?";
}

ForecastRun::ForecastRun(sim::Simulator* sim, cluster::Machine* node,
                         cluster::Link* uplink, cluster::Machine* server,
                         sim::SeriesRecorder* recorder,
                         const workload::ForecastSpec& spec, RunConfig cfg)
    : sim_(sim),
      node_(node),
      uplink_(uplink),
      server_(server),
      recorder_(recorder),
      spec_(spec),
      cfg_(std::move(cfg)) {
  FF_CHECK(spec_.increments > 0) << spec_.name << ": needs increments";
  const int n = spec_.increments;
  files_.reserve(spec_.output_files.size());
  for (const auto& f : spec_.output_files) {
    FileState fs;
    fs.spec = &f;
    fs.cum.assign(static_cast<size_t>(n) + 1, 0.0);
    // Count increments whose progress lies inside (start, end].
    int in_window = 0;
    for (int i = 1; i <= n; ++i) {
      double p = static_cast<double>(i) / n;
      if (p > f.start_progress + 1e-12 && p <= f.end_progress + 1e-12) {
        ++in_window;
      }
    }
    double per = in_window > 0 ? f.total_bytes / in_window : 0.0;
    double acc = 0.0;
    for (int i = 1; i <= n; ++i) {
      double p = static_cast<double>(i) / n;
      if (p > f.start_progress + 1e-12 && p <= f.end_progress + 1e-12) {
        acc += per;
      }
      fs.cum[static_cast<size_t>(i)] = acc;
    }
    // Snap the final cumulative value to the exact total.
    if (in_window > 0) fs.cum[static_cast<size_t>(n)] = f.total_bytes;
    files_.push_back(std::move(fs));
  }
  products_.reserve(spec_.products.size());
  for (const auto& p : spec_.products) {
    ProductState ps;
    ps.spec = &p;
    products_.push_back(ps);
  }
}

double ForecastRun::SimWorkPerIncrement() const {
  return cfg_.cost_model.SimulationCpuSeconds(spec_) /
         static_cast<double>(spec_.increments);
}

void ForecastRun::Start() {
  FF_CHECK(!started_) << spec_.name << ": started twice";
  started_ = true;
  start_time_ = sim_->now();
  if (cfg_.injector != nullptr) {
    FF_CHECK(cfg_.rng != nullptr)
        << spec_.name << ": fault-aware run needs an RNG stream";
    cfg_.injector->AddListener(
        [this](const fault::FaultNotice& n) { OnFault(n); });
  }
  if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
    span_ = tr->BeginSpan(sim_->now(), obs::SpanCategory::kRun, spec_.name,
                          "runs");
    tr->SpanArg(span_, "arch", ArchitectureName(cfg_.arch));
    tr->SpanArg(span_, "node", node_->name());
    tr->SpanArg(span_, "increments",
                static_cast<double>(spec_.increments));
  }
  StartSimIncrement(1);
  // Kick off the rsync and master-process cycles.
  rsync_scheduled_ = true;
  sim_->ScheduleAfter(cfg_.rsync_interval, [this] { RsyncCycle(); });
  sim_->ScheduleAfter(cfg_.poll_interval, [this] { PollProducts(); });
}

void ForecastRun::StartSimIncrement(int index) {
  std::string label;
  if (span_ != 0) label = spec_.name + ":sim";
  sim_task_ = node_->StartTask(
      SimWorkPerIncrement(), [this, index] { OnSimIncrementDone(index); },
      cfg_.sim_mem_bytes, label, span_);
  sim_task_running_ = true;
}

void ForecastRun::OnSimIncrementDone(int index) {
  sim_task_running_ = false;
  sim_task_ = 0;
  sim_failures_ = 0;
  increments_done_ = index;
  for (auto& fs : files_) {
    fs.generated = fs.cum[static_cast<size_t>(index)];
  }
  if (cfg_.arch == Architecture::kProductsAtNode) {
    for (auto& ps : products_) ps.ready = index;
  }
  if (index < spec_.increments) {
    StartSimIncrement(index + 1);
  } else {
    sim_finish_time_ = sim_->now();
    // Wake the product launcher immediately for the tail.
    TryLaunchProducts();
    CheckDone();
  }
}

void ForecastRun::PollProducts() {
  if (done_ || failed_) return;
  TryLaunchProducts();
  bool more_work = false;
  for (const auto& ps : products_) {
    if (ps.processed < spec_.increments) more_work = true;
  }
  if (more_work) {
    sim_->ScheduleAfter(cfg_.poll_interval, [this] { PollProducts(); });
  }
}

cluster::Machine* ForecastRun::ProductHost() const {
  return cfg_.arch == Architecture::kProductsAtNode ? node_ : server_;
}

void ForecastRun::TryLaunchProducts() {
  if (done_ || failed_) return;
  cluster::Machine* host = ProductHost();
  bool at_server = cfg_.arch == Architecture::kProductsAtServer;
  for (size_t pi = 0; pi < products_.size(); ++pi) {
    ProductState& ps = products_[pi];
    if (sim_->now() + 1e-9 < ps.backoff_until) continue;
    while (running_products_total_ < cfg_.max_concurrent_products &&
           ps.launched < ps.ready && ps.running == 0) {
      if (at_server && cfg_.server_admission_control &&
          host->resident_bytes() + cfg_.product_mem_bytes >
              host->ram_bytes()) {
        return;  // retry on the next poll or task completion
      }
      // Serialize per product (one master-process task per product class
      // at a time); each task processes one increment.
      ++ps.launched;
      ++ps.running;
      ++running_products_total_;
      double work = ps.spec->cpu_per_increment;
      if (cfg_.arch == Architecture::kProductsAtNode &&
          increments_done_ < spec_.increments) {
        work *= cfg_.colocated_io_penalty;
      }
      std::string label;
      if (span_ != 0) label = spec_.name + ":" + ps.spec->name;
      ps.work = work;
      ps.task = host->StartTask(
          work, [this, pi] { OnProductTaskDone(pi); },
          cfg_.product_mem_bytes, label, span_);
    }
  }
}

void ForecastRun::OnProductTaskDone(size_t product_index) {
  ProductState& ps = products_[product_index];
  ps.task = 0;
  ps.failures = 0;
  --ps.running;
  --running_products_total_;
  ++ps.processed;
  ps.generated += ps.spec->bytes_per_increment;
  if (cfg_.arch == Architecture::kProductsAtServer) {
    // Product bytes are born at the server; no transfer needed.
    ps.at_server = ps.generated;
    double total = ps.spec->bytes_per_increment *
                   static_cast<double>(spec_.increments);
    RecordEntity(ps.spec->name, ps.at_server, total);
  }
  TryLaunchProducts();
  CheckDone();
}

void ForecastRun::RsyncCycle() {
  if (done_ || failed_) {
    rsync_scheduled_ = false;
    return;
  }
  if (!transfer_in_flight_) {
    // Gather deltas per file (and per product directory in arch 1).
    std::vector<double> file_amounts(files_.size(), 0.0);
    std::vector<double> product_amounts(products_.size(), 0.0);
    double total = 0.0;
    for (size_t i = 0; i < files_.size(); ++i) {
      double delta = files_[i].generated - files_[i].sent;
      if (delta > kByteEpsilon) {
        file_amounts[i] = delta;
        files_[i].sent += delta;
        total += delta;
      }
    }
    if (cfg_.arch == Architecture::kProductsAtNode) {
      for (size_t i = 0; i < products_.size(); ++i) {
        double delta = products_[i].generated - products_[i].sent;
        if (delta > kByteEpsilon) {
          product_amounts[i] = delta;
          products_[i].sent += delta;
          total += delta;
        }
      }
    }
    if (total > 0.0) {
      transfer_in_flight_ = true;
      tx_file_amounts_ = std::move(file_amounts);
      tx_product_amounts_ = std::move(product_amounts);
      tx_failures_ = 0;
      IssueTransfer(total);
    }
  }
  sim_->ScheduleAfter(cfg_.rsync_interval, [this] { RsyncCycle(); });
}

void ForecastRun::IssueTransfer(double wire_bytes) {
  tx_wire_total_ = wire_bytes;
  std::string label;
  if (span_ != 0) label = spec_.name + ":rsync";
  tx_id_ = uplink_->StartTransfer(wire_bytes, [this] { OnTransferDone(); },
                                  label, span_);
  if (cfg_.retry.transfer_timeout > 0.0) {
    tx_watchdog_ = sim_->ScheduleAfter(cfg_.retry.transfer_timeout,
                                       [this] { OnTransferTimeout(); });
  }
}

void ForecastRun::OnTransferDone() {
  if (tx_watchdog_.pending()) sim_->Cancel(tx_watchdog_);
  transfer_in_flight_ = false;
  tx_id_ = 0;
  std::vector<double> file_amounts = std::move(tx_file_amounts_);
  std::vector<double> product_amounts = std::move(tx_product_amounts_);
  tx_file_amounts_.clear();
  tx_product_amounts_.clear();
  for (size_t i = 0; i < files_.size(); ++i) {
    if (file_amounts[i] <= 0.0) continue;
    files_[i].at_server += file_amounts[i];
    bytes_transferred_ += file_amounts[i];
    RecordEntity(files_[i].spec->name, files_[i].at_server,
                 files_[i].spec->total_bytes);
  }
  for (size_t i = 0; i < products_.size(); ++i) {
    if (product_amounts[i] <= 0.0) continue;
    products_[i].at_server += product_amounts[i];
    bytes_transferred_ += product_amounts[i];
    double total = products_[i].spec->bytes_per_increment *
                   static_cast<double>(spec_.increments);
    RecordEntity(products_[i].spec->name, products_[i].at_server, total);
  }
  if (cfg_.arch == Architecture::kProductsAtServer) {
    UpdateServerSideReadiness();
    TryLaunchProducts();
  }
  CheckDone();
}

void ForecastRun::UpdateServerSideReadiness() {
  // A product's increment i is ready once every input file's cumulative
  // bytes through increment i have arrived at the server.
  for (auto& ps : products_) {
    int ready = ps.ready;
    while (ready < spec_.increments) {
      int next = ready + 1;
      bool ok = true;
      for (int fi : ps.spec->input_files) {
        const FileState& fs = files_[static_cast<size_t>(fi)];
        if (fs.at_server + kByteEpsilon <
            fs.cum[static_cast<size_t>(next)]) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
      ready = next;
    }
    ps.ready = ready;
  }
}

void ForecastRun::RecordEntity(const std::string& name, double at,
                               double total) {
  if (!cfg_.record_series || recorder_ == nullptr || total <= 0.0) return;
  recorder_->Record(cfg_.series_prefix + name, sim_->now(), at / total);
}

void ForecastRun::CheckDone() {
  if (done_ || failed_) return;
  if (increments_done_ < spec_.increments) return;
  for (const auto& fs : files_) {
    if (fs.at_server + kByteEpsilon < fs.spec->total_bytes) return;
  }
  for (const auto& ps : products_) {
    if (ps.processed < spec_.increments) return;
    double total = ps.spec->bytes_per_increment *
                   static_cast<double>(spec_.increments);
    if (ps.at_server + kByteEpsilon < total) return;
  }
  done_ = true;
  finish_time_ = sim_->now();
  if (span_ != 0) {
    if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
      tr->SpanArg(span_, "bytes_transferred", bytes_transferred_);
      tr->EndSpan(span_, sim_->now());
    }
  }
  if (on_complete_) on_complete_();
}

void ForecastRun::OnFault(const fault::FaultNotice& notice) {
  if (notice.repair || !started_ || done_ || failed_) return;
  const fault::FaultEvent& ev = *notice.event;
  switch (ev.kind) {
    case fault::FaultKind::kTaskTransient: {
      // Each of this run's tasks on the faulted machine dies with
      // probability `magnitude`; decisions draw from the run's stream in
      // a fixed order (sim task, then products by index).
      if (sim_task_running_ && ev.target == node_->name() &&
          cfg_.rng->Bernoulli(ev.magnitude)) {
        KillSimTask();
      }
      if (failed_) return;
      if (ev.target == ProductHost()->name()) {
        for (size_t pi = 0; pi < products_.size(); ++pi) {
          if (products_[pi].task != 0 &&
              cfg_.rng->Bernoulli(ev.magnitude)) {
            KillProductTask(pi);
            if (failed_) return;
          }
        }
      }
      break;
    }
    case fault::FaultKind::kTransferCorruption:
      if (transfer_in_flight_ && tx_id_ != 0 &&
          ev.target == uplink_->name()) {
        HandleCorruption(ev.magnitude);
      }
      break;
    default:
      // Crashes/outages are mechanical (machine/link state); the PS
      // resources stall without losing progress, so no reaction needed.
      break;
  }
}

void ForecastRun::KillSimTask() {
  auto remaining = node_->RemoveTask(sim_task_);
  FF_CHECK(remaining.ok()) << spec_.name << ": killing unknown sim task";
  sim_task_ = 0;
  sim_task_running_ = false;
  wasted_cpu_seconds_ += SimWorkPerIncrement() - *remaining;
  ++sim_failures_;
  if (!cfg_.retry.AllowsRetry(sim_failures_)) {
    Fail("sim increment exhausted retries");
    return;
  }
  ++retries_;
  int index = increments_done_ + 1;
  double delay = cfg_.retry.NextDelay(sim_failures_, cfg_.rng);
  sim_->ScheduleAfter(delay, [this, index] {
    if (done_ || failed_ || sim_task_running_) return;
    if (increments_done_ < index) StartSimIncrement(index);
  });
}

void ForecastRun::KillProductTask(size_t product_index) {
  ProductState& ps = products_[product_index];
  auto remaining = ProductHost()->RemoveTask(ps.task);
  FF_CHECK(remaining.ok())
      << spec_.name << ": killing unknown product task";
  ps.task = 0;
  --ps.running;
  --running_products_total_;
  --ps.launched;  // the increment re-launches after backoff
  wasted_cpu_seconds_ += ps.work - *remaining;
  ++ps.failures;
  if (!cfg_.retry.AllowsRetry(ps.failures)) {
    Fail("product " + ps.spec->name + " exhausted retries");
    return;
  }
  ++retries_;
  double delay = cfg_.retry.NextDelay(ps.failures, cfg_.rng);
  ps.backoff_until = sim_->now() + delay;
  sim_->ScheduleAfter(delay, [this] { TryLaunchProducts(); });
}

void ForecastRun::HandleCorruption(double fraction) {
  // rsync's checksum pass rejects `fraction` of the bytes delivered so
  // far; the transfer resumes from its acked bytes minus the rejected
  // portion — a partial re-send, never a full restart.
  auto remaining = uplink_->RemainingBytes(tx_id_);
  FF_CHECK(remaining.ok()) << spec_.name << ": corrupting unknown transfer";
  double delivered = tx_wire_total_ - *remaining;
  if (delivered <= 0.0) return;  // nothing on the wire yet to corrupt
  auto unsent = uplink_->CancelTransfer(tx_id_);
  FF_CHECK(unsent.ok());
  if (tx_watchdog_.pending()) sim_->Cancel(tx_watchdog_);
  tx_id_ = 0;
  ++retries_;
  IssueTransfer(*unsent + fraction * delivered);
}

void ForecastRun::OnTransferTimeout() {
  if (!transfer_in_flight_ || tx_id_ == 0 || done_ || failed_) return;
  auto unsent = uplink_->CancelTransfer(tx_id_);
  FF_CHECK(unsent.ok()) << spec_.name << ": timing out unknown transfer";
  tx_id_ = 0;
  ++tx_failures_;
  if (!cfg_.retry.AllowsRetry(tx_failures_)) {
    Fail("rsync transfer exhausted retries");
    return;
  }
  ++retries_;
  double delay = cfg_.retry.NextDelay(tx_failures_, cfg_.rng);
  sim_->ScheduleAfter(delay, [this, remaining = *unsent] {
    if (done_ || failed_) return;
    IssueTransfer(remaining);  // resume from acked bytes
  });
}

void ForecastRun::Fail(const std::string& reason) {
  if (done_ || failed_) return;
  failed_ = true;
  if (tx_id_ != 0) {
    uplink_->CancelTransfer(tx_id_).ok();
    tx_id_ = 0;
  }
  if (tx_watchdog_.pending()) sim_->Cancel(tx_watchdog_);
  transfer_in_flight_ = false;
  if (sim_task_running_) {
    auto remaining = node_->RemoveTask(sim_task_);
    if (remaining.ok()) {
      wasted_cpu_seconds_ += SimWorkPerIncrement() - *remaining;
    }
    sim_task_ = 0;
    sim_task_running_ = false;
  }
  for (auto& ps : products_) {
    if (ps.task == 0) continue;
    auto remaining = ProductHost()->RemoveTask(ps.task);
    if (remaining.ok()) wasted_cpu_seconds_ += ps.work - *remaining;
    ps.task = 0;
    --ps.running;
    --running_products_total_;
  }
  if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
    tr->Instant(sim_->now(), obs::SpanCategory::kRun,
                "run_failed:" + spec_.name, "runs");
    if (span_ != 0) {
      tr->SpanArg(span_, "failed", reason);
      tr->EndSpan(span_, sim_->now());
    }
  }
  if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
    m->counter("run.failed")->Increment();
  }
}

double ForecastRun::model_bytes_generated() const {
  double total = 0.0;
  for (const auto& fs : files_) total += fs.generated;
  return total;
}

double ForecastRun::product_bytes_generated() const {
  double total = 0.0;
  for (const auto& ps : products_) total += ps.generated;
  return total;
}

}  // namespace dataflow
}  // namespace ff
