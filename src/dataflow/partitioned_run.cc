#include "dataflow/partitioned_run.h"

#include <algorithm>

#include "util/logging.h"

namespace ff {
namespace dataflow {

namespace {
constexpr double kByteEpsilon = 1.0;
}

PartitionedRun::PartitionedRun(sim::Simulator* sim,
                               cluster::Machine* primary,
                               cluster::Link* primary_uplink,
                               std::vector<SecondaryHost> secondaries,
                               std::vector<int> partition,
                               sim::SeriesRecorder* recorder,
                               const workload::ForecastSpec& spec,
                               PartitionedConfig cfg)
    : sim_(sim),
      primary_(primary),
      primary_uplink_(primary_uplink),
      secondaries_(std::move(secondaries)),
      recorder_(recorder),
      spec_(spec),
      cfg_(std::move(cfg)) {
  FF_CHECK(!secondaries_.empty()) << "need at least one secondary host";
  FF_CHECK(partition.size() == spec_.products.size())
      << "partition size must match product count";
  const int n = spec_.increments;
  FF_CHECK(n > 0);
  for (const auto& f : spec_.output_files) {
    FileState fs;
    fs.spec = &f;
    fs.cum.assign(static_cast<size_t>(n) + 1, 0.0);
    int in_window = 0;
    for (int i = 1; i <= n; ++i) {
      double p = static_cast<double>(i) / n;
      if (p > f.start_progress + 1e-12 && p <= f.end_progress + 1e-12) {
        ++in_window;
      }
    }
    double per = in_window > 0 ? f.total_bytes / in_window : 0.0;
    double acc = 0.0;
    for (int i = 1; i <= n; ++i) {
      double p = static_cast<double>(i) / n;
      if (p > f.start_progress + 1e-12 && p <= f.end_progress + 1e-12) {
        acc += per;
      }
      fs.cum[static_cast<size_t>(i)] = acc;
    }
    if (in_window > 0) fs.cum[static_cast<size_t>(n)] = f.total_bytes;
    files_.push_back(std::move(fs));
  }
  replicas_.resize(secondaries_.size());
  for (auto& r : replicas_) {
    r.needs_file.assign(files_.size(), 0);
    r.pulled.assign(files_.size(), 0.0);
    r.in_flight.assign(files_.size(), 0.0);
  }
  for (size_t pi = 0; pi < spec_.products.size(); ++pi) {
    ProductState ps;
    ps.spec = &spec_.products[pi];
    int host = partition[pi];
    FF_CHECK(host >= 0 &&
             host < static_cast<int>(secondaries_.size()))
        << "bad partition entry for product " << ps.spec->name;
    ps.host = host;
    for (int fi : ps.spec->input_files) {
      replicas_[static_cast<size_t>(host)]
          .needs_file[static_cast<size_t>(fi)] = 1;
    }
    products_.push_back(std::move(ps));
  }
}

void PartitionedRun::Start() {
  FF_CHECK(!started_) << spec_.name << ": started twice";
  started_ = true;
  StartSimIncrement(1);
  sim_->ScheduleAfter(cfg_.rsync_interval, [this] { PrimaryRsyncCycle(); });
  for (size_t h = 0; h < secondaries_.size(); ++h) {
    sim_->ScheduleAfter(cfg_.rsync_interval,
                        [this, h] { SecondaryPullCycle(h); });
    sim_->ScheduleAfter(cfg_.poll_interval,
                        [this, h] { TryLaunchProducts(h); });
  }
}

void PartitionedRun::StartSimIncrement(int index) {
  double work = cfg_.cost_model.SimulationCpuSeconds(spec_) /
                static_cast<double>(spec_.increments);
  primary_->StartTask(
      work, [this, index] { OnSimIncrementDone(index); },
      cfg_.sim_mem_bytes);
}

void PartitionedRun::OnSimIncrementDone(int index) {
  increments_done_ = index;
  for (auto& fs : files_) {
    fs.generated = fs.cum[static_cast<size_t>(index)];
  }
  if (index < spec_.increments) {
    StartSimIncrement(index + 1);
  } else {
    sim_finish_time_ = sim_->now();
    CheckDone();
  }
}

void PartitionedRun::PrimaryRsyncCycle() {
  if (done_) return;
  if (!primary_transfer_in_flight_) {
    std::vector<double> amounts(files_.size(), 0.0);
    double total = 0.0;
    for (size_t i = 0; i < files_.size(); ++i) {
      double delta = files_[i].generated - files_[i].sent;
      if (delta > kByteEpsilon) {
        amounts[i] = delta;
        files_[i].sent += delta;
        total += delta;
      }
    }
    if (total > 0.0) {
      primary_transfer_in_flight_ = true;
      primary_uplink_->StartTransfer(
          total, [this, a = std::move(amounts)]() mutable {
            OnPrimaryTransferDone(std::move(a));
          });
    }
  }
  sim_->ScheduleAfter(cfg_.rsync_interval, [this] { PrimaryRsyncCycle(); });
}

void PartitionedRun::OnPrimaryTransferDone(std::vector<double> amounts) {
  primary_transfer_in_flight_ = false;
  for (size_t i = 0; i < files_.size(); ++i) {
    if (amounts[i] <= 0.0) continue;
    files_[i].at_server += amounts[i];
    bytes_transferred_ += amounts[i];
    RecordEntity(files_[i].spec->name, files_[i].at_server,
                 files_[i].spec->total_bytes);
  }
  CheckDone();
}

void PartitionedRun::SecondaryPullCycle(size_t host) {
  if (done_) return;
  ReplicaState& rep = replicas_[host];
  if (!rep.transfer_in_flight) {
    std::vector<double> amounts(files_.size(), 0.0);
    double total = 0.0;
    for (size_t i = 0; i < files_.size(); ++i) {
      if (!rep.needs_file[i]) continue;
      double delta = files_[i].at_server - rep.pulled[i] -
                     rep.in_flight[i];
      if (delta > kByteEpsilon) {
        amounts[i] = delta;
        rep.in_flight[i] += delta;
        total += delta;
      }
    }
    if (total > 0.0) {
      rep.transfer_in_flight = true;
      secondaries_[host].downlink->StartTransfer(
          total, [this, host, a = std::move(amounts)]() mutable {
            OnSecondaryPullDone(host, std::move(a));
          });
    }
  }
  sim_->ScheduleAfter(cfg_.rsync_interval,
                      [this, host] { SecondaryPullCycle(host); });
}

void PartitionedRun::OnSecondaryPullDone(size_t host,
                                         std::vector<double> amounts) {
  ReplicaState& rep = replicas_[host];
  rep.transfer_in_flight = false;
  for (size_t i = 0; i < files_.size(); ++i) {
    if (amounts[i] <= 0.0) continue;
    rep.pulled[i] += amounts[i];
    rep.in_flight[i] -= amounts[i];
    bytes_transferred_ += amounts[i];
  }
  UpdateReadiness(host);
  TryLaunchProducts(host);
}

void PartitionedRun::UpdateReadiness(size_t host) {
  const ReplicaState& rep = replicas_[host];
  for (auto& ps : products_) {
    if (ps.host != static_cast<int>(host)) continue;
    int ready = ps.ready;
    while (ready < spec_.increments) {
      int next = ready + 1;
      bool ok = true;
      for (int fi : ps.spec->input_files) {
        const FileState& fs = files_[static_cast<size_t>(fi)];
        if (rep.pulled[static_cast<size_t>(fi)] + kByteEpsilon <
            fs.cum[static_cast<size_t>(next)]) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
      ready = next;
    }
    ps.ready = ready;
  }
}

void PartitionedRun::TryLaunchProducts(size_t host) {
  if (done_) return;
  for (size_t pi = 0; pi < products_.size(); ++pi) {
    ProductState& ps = products_[pi];
    if (ps.host != static_cast<int>(host)) continue;
    while (ps.launched < ps.ready && ps.running == 0) {
      ++ps.launched;
      ++ps.running;
      secondaries_[host].machine->StartTask(
          ps.spec->cpu_per_increment,
          [this, pi] { OnProductTaskDone(pi); }, cfg_.product_mem_bytes);
    }
  }
  // Keep polling while this host still has unprocessed increments.
  bool more = false;
  for (const auto& ps : products_) {
    if (ps.host == static_cast<int>(host) &&
        ps.processed < spec_.increments) {
      more = true;
    }
  }
  if (more) {
    sim_->ScheduleAfter(cfg_.poll_interval,
                        [this, host] { TryLaunchProducts(host); });
  }
}

void PartitionedRun::OnProductTaskDone(size_t product_index) {
  ProductState& ps = products_[product_index];
  --ps.running;
  ++ps.processed;
  // Push this increment's product bytes back to the server.
  double bytes = ps.spec->bytes_per_increment;
  secondaries_[static_cast<size_t>(ps.host)].uplink->StartTransfer(
      bytes, [this, product_index, bytes] {
        OnProductPushDone(product_index, bytes);
      });
  // Chain the next increment if ready (per-product serialization).
  size_t host = static_cast<size_t>(ps.host);
  if (ps.launched < ps.ready && ps.running == 0) {
    ++ps.launched;
    ++ps.running;
    secondaries_[host].machine->StartTask(
        ps.spec->cpu_per_increment,
        [this, product_index] { OnProductTaskDone(product_index); },
        cfg_.product_mem_bytes);
  }
}

void PartitionedRun::OnProductPushDone(size_t product_index,
                                       double bytes) {
  ProductState& ps = products_[product_index];
  ps.at_server_bytes += bytes;
  bytes_transferred_ += bytes;
  double total = ps.spec->bytes_per_increment *
                 static_cast<double>(spec_.increments);
  RecordEntity(ps.spec->name, ps.at_server_bytes, total);
  CheckDone();
}

void PartitionedRun::RecordEntity(const std::string& name, double at,
                                  double total) {
  if (!cfg_.record_series || recorder_ == nullptr || total <= 0.0) return;
  recorder_->Record(cfg_.series_prefix + name, sim_->now(), at / total);
}

void PartitionedRun::CheckDone() {
  if (done_) return;
  if (increments_done_ < spec_.increments) return;
  for (const auto& fs : files_) {
    if (fs.at_server + kByteEpsilon < fs.spec->total_bytes) return;
  }
  for (const auto& ps : products_) {
    double total = ps.spec->bytes_per_increment *
                   static_cast<double>(spec_.increments);
    if (ps.processed < spec_.increments) return;
    if (ps.at_server_bytes + kByteEpsilon < total) return;
  }
  done_ = true;
  finish_time_ = sim_->now();
  if (on_complete_) on_complete_();
}

}  // namespace dataflow
}  // namespace ff
