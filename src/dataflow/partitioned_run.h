// PartitionedRun — "Architecture 3": data products partitioned across
// multiple secondary nodes. The paper's §2.2: "in the current factory
// implementation, there is generally little benefit to generating data
// products for a single forecast concurrently at multiple nodes, due to
// high data transfer overhead and limited node availability. In the
// future, however, parallel code versions or increased node capacity may
// make partitioning different data products across multiple nodes a more
// attractive option, so we plan to revisit this issue."
//
// Data path: the simulation runs on the primary node; model outputs
// rsync to the public server (as in Architecture 2); each secondary node
// periodically pulls the newly-arrived increments of the input files its
// product partition needs, generates those products, and pushes the
// product bytes back to the server. The double data movement
// (server -> secondary, products -> server) is exactly the "high data
// transfer overhead" the paper flags; the A4 ablation quantifies when
// the extra CPUs win anyway.

#ifndef FF_DATAFLOW_PARTITIONED_RUN_H_
#define FF_DATAFLOW_PARTITIONED_RUN_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/link.h"
#include "cluster/machine.h"
#include "sim/series.h"
#include "workload/cost_model.h"
#include "workload/forecast_spec.h"

namespace ff {
namespace dataflow {

/// One secondary product-generation host.
struct SecondaryHost {
  cluster::Machine* machine = nullptr;
  cluster::Link* downlink = nullptr;  // server -> secondary
  cluster::Link* uplink = nullptr;    // secondary -> server
};

/// Tunables (subset of RunConfig semantics).
struct PartitionedConfig {
  workload::CostModel cost_model;
  double rsync_interval = 300.0;
  double poll_interval = 300.0;
  double sim_mem_bytes = 700e6;
  double product_mem_bytes = 300e6;
  std::string series_prefix;
  bool record_series = true;
};

/// A forecast run with its products spread over secondary nodes.
class PartitionedRun {
 public:
  /// `partition[i]` gives the secondary-host index (into `secondaries`)
  /// for product i of `spec`. `recorder` may be null when
  /// cfg.record_series is false.
  PartitionedRun(sim::Simulator* sim, cluster::Machine* primary,
                 cluster::Link* primary_uplink,
                 std::vector<SecondaryHost> secondaries,
                 std::vector<int> partition, sim::SeriesRecorder* recorder,
                 const workload::ForecastSpec& spec,
                 PartitionedConfig cfg);

  void Start();
  void set_on_complete(std::function<void()> fn) {
    on_complete_ = std::move(fn);
  }

  bool done() const { return done_; }
  sim::Time finish_time() const { return finish_time_; }
  sim::Time sim_finish_time() const { return sim_finish_time_; }

  /// Total bytes moved over any link (model to server + replication to
  /// secondaries + products back) — the architecture's transfer overhead.
  double bytes_transferred() const { return bytes_transferred_; }

 private:
  struct FileState {
    const workload::OutputFileSpec* spec;
    std::vector<double> cum;
    double generated = 0.0;
    double sent = 0.0;
    double at_server = 0.0;
  };
  struct ProductState {
    const workload::ProductSpec* spec;
    int host = 0;  // index into secondaries_
    int ready = 0;
    int launched = 0;
    int processed = 0;
    int running = 0;
    double at_server_bytes = 0.0;
  };
  // Per-secondary replica of the input files it needs.
  struct ReplicaState {
    std::vector<char> needs_file;     // per file index
    std::vector<double> pulled;       // bytes pulled per file
    std::vector<double> in_flight;    // bytes being pulled per file
    bool transfer_in_flight = false;
  };

  void StartSimIncrement(int index);
  void OnSimIncrementDone(int index);
  void PrimaryRsyncCycle();
  void OnPrimaryTransferDone(std::vector<double> amounts);
  void SecondaryPullCycle(size_t host);
  void OnSecondaryPullDone(size_t host, std::vector<double> amounts);
  void UpdateReadiness(size_t host);
  void TryLaunchProducts(size_t host);
  void OnProductTaskDone(size_t product_index);
  void OnProductPushDone(size_t product_index, double bytes);
  void RecordEntity(const std::string& name, double at, double total);
  void CheckDone();

  sim::Simulator* sim_;
  cluster::Machine* primary_;
  cluster::Link* primary_uplink_;
  std::vector<SecondaryHost> secondaries_;
  sim::SeriesRecorder* recorder_;
  workload::ForecastSpec spec_;
  PartitionedConfig cfg_;

  std::vector<FileState> files_;
  std::vector<ProductState> products_;
  std::vector<ReplicaState> replicas_;

  bool started_ = false;
  bool done_ = false;
  int increments_done_ = 0;
  bool primary_transfer_in_flight_ = false;
  double bytes_transferred_ = 0.0;
  sim::Time sim_finish_time_ = 0.0;
  sim::Time finish_time_ = 0.0;
  std::function<void()> on_complete_;
};

}  // namespace dataflow
}  // namespace ff

#endif  // FF_DATAFLOW_PARTITIONED_RUN_H_
