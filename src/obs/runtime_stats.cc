#include "obs/runtime_stats.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>

namespace ff {
namespace obs {

int64_t RuntimeNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// RuntimeHistogram

size_t RuntimeHistogram::BucketIndex(uint64_t ns) {
  const size_t b = static_cast<size_t>(std::bit_width(ns));
  return b < kBuckets ? b : kBuckets - 1;
}

uint64_t RuntimeHistogram::BucketLowNs(size_t b) {
  if (b == 0) return 0;
  return uint64_t{1} << (b - 1);
}

RuntimeHistogram::Snapshot RuntimeHistogram::Snap() const {
  Snapshot s;
  for (size_t b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  return s;
}

double RuntimeHistogram::Snapshot::QuantileNs(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t next = seen + buckets[b];
    if (static_cast<double>(next) >= target) {
      const double lo = static_cast<double>(BucketLowNs(b));
      const double hi = b + 1 < kBuckets
                            ? static_cast<double>(BucketLowNs(b + 1))
                            : lo * 2.0;
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets[b]);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    seen = next;
  }
  return static_cast<double>(BucketLowNs(kBuckets - 1)) * 2.0;
}

RuntimeHistogram::Snapshot RuntimeHistogram::Snapshot::Since(
    const Snapshot& begin) const {
  Snapshot d;
  for (size_t b = 0; b < kBuckets; ++b) {
    d.buckets[b] = buckets[b] - begin.buckets[b];
  }
  d.count = count - begin.count;
  d.sum_ns = sum_ns - begin.sum_ns;
  return d;
}

void RuntimeHistogram::Snapshot::MergeFrom(const Snapshot& other) {
  for (size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum_ns += other.sum_ns;
}

// ---------------------------------------------------------------------------
// PoolRuntimeProfile

uint64_t PoolRuntimeProfile::TotalTasks() const {
  uint64_t n = 0;
  for (const auto& w : workers) n += w.tasks_run;
  return n;
}

uint64_t PoolRuntimeProfile::TotalRunNs() const {
  uint64_t n = 0;
  for (const auto& w : workers) n += w.run_ns;
  return n;
}

uint64_t PoolRuntimeProfile::TotalIdleNs() const {
  uint64_t n = 0;
  for (const auto& w : workers) n += w.idle_ns;
  return n;
}

uint64_t PoolRuntimeProfile::TotalSteals() const {
  uint64_t n = 0;
  for (const auto& w : workers) n += w.steals;
  return n;
}

uint64_t PoolRuntimeProfile::TotalStealFails() const {
  uint64_t n = 0;
  for (const auto& w : workers) n += w.steal_fails;
  return n;
}

double PoolRuntimeProfile::Occupancy() const {
  if (num_threads == 0 || lifetime_ns == 0) return 0.0;
  return static_cast<double>(TotalRunNs()) /
         (static_cast<double>(lifetime_ns) * static_cast<double>(num_threads));
}

RuntimeHistogram::Snapshot PoolRuntimeProfile::MergedTaskNs() const {
  RuntimeHistogram::Snapshot merged;
  for (const auto& w : workers) merged.MergeFrom(w.task_ns);
  return merged;
}

PoolRuntimeProfile PoolRuntimeProfile::Since(
    const PoolRuntimeProfile& begin) const {
  PoolRuntimeProfile d;
  d.num_threads = num_threads;
  d.lifetime_ns = lifetime_ns - begin.lifetime_ns;
  d.global_queue_depth = global_queue_depth;
  d.global_queue_peak = global_queue_peak;
  d.workers.resize(workers.size());
  for (size_t i = 0; i < workers.size(); ++i) {
    const WorkerRuntimeSnapshot& now = workers[i];
    // A window may start before the pool existed (begin has no workers).
    const bool have_begin = i < begin.workers.size();
    WorkerRuntimeSnapshot& out = d.workers[i];
    if (!have_begin) {
      out = now;
      continue;
    }
    const WorkerRuntimeSnapshot& b = begin.workers[i];
    out.tasks_run = now.tasks_run - b.tasks_run;
    out.run_ns = now.run_ns - b.run_ns;
    out.idle_ns = now.idle_ns - b.idle_ns;
    out.parks = now.parks - b.parks;
    out.steals = now.steals - b.steals;
    out.steal_fails = now.steal_fails - b.steal_fails;
    out.deque_peak = now.deque_peak;  // peaks are lifetime highs, not deltas
    out.deque_depth = now.deque_depth;
    out.task_ns = now.task_ns.Since(b.task_ns);
  }
  return d;
}

// ---------------------------------------------------------------------------
// OperatorProfile / QueryProfile

OperatorProfile* OperatorProfile::AddChild() {
  children.push_back(std::make_unique<OperatorProfile>());
  return children.back().get();
}

uint64_t OperatorProfile::SelfNs() const {
  uint64_t child_ns = 0;
  for (const auto& c : children) child_ns += c->wall_ns;
  return wall_ns > child_ns ? wall_ns - child_ns : 0;
}

void OperatorProfile::MergeFrom(const OperatorProfile& other) {
  if (name.empty()) name = other.name;
  rows_out += other.rows_out;
  batches += other.batches;
  wall_ns += other.wall_ns;
  is_scan = is_scan || other.is_scan;
  chunks_scanned += other.chunks_scanned;
  chunks_pruned += other.chunks_pruned;
  index_rows += other.index_rows;
  parallel = parallel || other.parallel;
  morsels += other.morsels;
  merge_ns += other.merge_ns;
  max_morsel_ns = std::max(max_morsel_ns, other.max_morsel_ns);
  for (size_t i = 0; i < other.children.size(); ++i) {
    if (i >= children.size()) AddChild();
    children[i]->MergeFrom(*other.children[i]);
  }
}

std::string FormatNsAsMs(uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3fms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

namespace {

void RenderOperator(const OperatorProfile& op, int depth,
                    std::vector<std::string>* out) {
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += op.name.empty() ? "<unnamed>" : op.name;
  if (kProfilingCompiledIn) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "  rows=%llu batches=%llu",
                  static_cast<unsigned long long>(op.rows_out),
                  static_cast<unsigned long long>(op.batches));
    line += buf;
    if (op.is_scan) {
      std::snprintf(buf, sizeof(buf), " chunks=%llu pruned=%llu",
                    static_cast<unsigned long long>(op.chunks_scanned),
                    static_cast<unsigned long long>(op.chunks_pruned));
      line += buf;
      if (op.index_rows > 0) {
        std::snprintf(buf, sizeof(buf), " index_rows=%llu",
                      static_cast<unsigned long long>(op.index_rows));
        line += buf;
      }
    }
    if (op.parallel) {
      std::snprintf(buf, sizeof(buf), " morsels=%llu merge=%s max_morsel=%s",
                    static_cast<unsigned long long>(op.morsels),
                    FormatNsAsMs(op.merge_ns).c_str(),
                    FormatNsAsMs(op.max_morsel_ns).c_str());
      line += buf;
    }
    line += " time=" + FormatNsAsMs(op.wall_ns);
  }
  out->push_back(std::move(line));
  for (const auto& c : op.children) RenderOperator(*c, depth + 1, out);
}

}  // namespace

std::vector<std::string> QueryProfile::RenderLines() const {
  std::vector<std::string> lines;
  std::string header = "engine=" + engine;
  if (!cache.empty()) header += "  cache=" + cache;
  if (kProfilingCompiledIn) {
    header += "  total=" + FormatNsAsMs(total_ns);
  } else {
    header += "  (profiling compiled out)";
  }
  lines.push_back(std::move(header));
  if (root) RenderOperator(*root, 1, &lines);
  return lines;
}

std::string QueryProfile::Render() const {
  std::string out;
  for (const std::string& line : RenderLines()) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace obs
}  // namespace ff
