#include "obs/trace.h"

#include "util/logging.h"

namespace ff {
namespace obs {

const char* SpanCategoryName(SpanCategory c) {
  switch (c) {
    case SpanCategory::kRun:
      return "run";
    case SpanCategory::kTask:
      return "task";
    case SpanCategory::kTransfer:
      return "transfer";
    case SpanCategory::kPlan:
      return "plan";
    case SpanCategory::kSpc:
      return "spc";
    case SpanCategory::kSim:
      return "sim";
  }
  return "?";
}

TraceRecorder::TraceRecorder() {
  // Id 0 is the empty string so StrId 0 is always printable.
  strings_.emplace_back();
  intern_.emplace(std::string(), 0);
  // Skip the first few doublings: early-growth reallocs and the page
  // faults they trigger are the dominant per-span cost on short
  // recordings. Long recordings should call ReserveSpans with their
  // expected span count.
  spans_.reserve(4096);
}

StrId TraceRecorder::Intern(std::string_view s) {
  auto it = intern_.find(std::string(s));
  if (it != intern_.end()) return it->second;
  StrId id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  intern_.emplace(strings_.back(), id);
  return id;
}

void TraceRecorder::SpanArg(SpanId span, std::string_view key,
                            double value) {
  if (span == 0) return;
  num_args_.push_back(NumArgRecord{span, Intern(key), value});
}

void TraceRecorder::SpanArg(SpanId span, StrId key, double value) {
  if (span == 0) return;
  num_args_.push_back(NumArgRecord{span, key, value});
}

void TraceRecorder::SpanArg(SpanId span, std::string_view key,
                            std::string_view value) {
  if (span == 0) return;
  str_args_.push_back(StrArgRecord{span, Intern(key), Intern(value)});
}

size_t TraceRecorder::CountSpans(SpanCategory cat) const {
  size_t n = 0;
  for (const auto& s : spans_) {
    if (s.category == cat) ++n;
  }
  return n;
}

size_t TraceRecorder::OpenSpans() const {
  size_t n = 0;
  for (const auto& s : spans_) {
    if (s.end < 0.0) ++n;
  }
  return n;
}

#if !defined(FF_TRACING_DISABLED)
namespace internal {
thread_local TraceRecorder* g_trace = nullptr;
thread_local MetricsRegistry* g_metrics = nullptr;
thread_local uint64_t g_epoch = 1;
}  // namespace internal
#endif

ScopedObservability::ScopedObservability(TraceRecorder* trace,
                                         MetricsRegistry* metrics) {
#if defined(FF_TRACING_DISABLED)
  (void)trace;
  (void)metrics;
  prev_trace_ = nullptr;
  prev_metrics_ = nullptr;
#else
  prev_trace_ = internal::g_trace;
  prev_metrics_ = internal::g_metrics;
  internal::g_trace = trace;
  internal::g_metrics = metrics;
  ++internal::g_epoch;
#endif
}

ScopedObservability::~ScopedObservability() {
#if !defined(FF_TRACING_DISABLED)
  internal::g_trace = prev_trace_;
  internal::g_metrics = prev_metrics_;
  ++internal::g_epoch;
#endif
}

Span::Span(SpanCategory cat, std::string_view name, std::string_view track,
           SpanId parent) {
  if (TraceRecorder* tr = ActiveTrace()) {
    id_ = tr->BeginSpan(tr->now(), cat, name, track, parent);
  }
}

Span::~Span() {
  if (id_ == 0) return;
  if (TraceRecorder* tr = ActiveTrace()) tr->EndSpan(id_, tr->now());
}

void Span::Arg(std::string_view key, double value) {
  if (id_ == 0) return;
  if (TraceRecorder* tr = ActiveTrace()) tr->SpanArg(id_, key, value);
}

void Span::Arg(std::string_view key, std::string_view value) {
  if (id_ == 0) return;
  if (TraceRecorder* tr = ActiveTrace()) tr->SpanArg(id_, key, value);
}

}  // namespace obs
}  // namespace ff
