#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace ff {
namespace obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  FF_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  FF_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
}

void Histogram::Observe(double x) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  ++counts_[i];
  ++count_;
  sum_ += x;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, interpolated).
  double rank = q * static_cast<double>(count_ - 1) + 1.0;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    uint64_t lo_rank = seen + 1;
    seen += counts_[i];
    if (rank > static_cast<double>(seen)) continue;
    double lower = i == 0 ? 0.0 : bounds_[i - 1];
    if (i == bounds_.size()) return lower;  // overflow bucket: lower edge
    double upper = bounds_[i];
    double within =
        (rank - static_cast<double>(lo_rank) + 1.0) /
        static_cast<double>(counts_[i]);
    return lower + (upper - lower) * within;
  }
  return bounds_.back();
}

bool Histogram::MergeFrom(const Histogram& other) {
  if (bounds_ != other.bounds_) return false;
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  return true;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  FF_CHECK(!gauges_.count(name) && !histograms_.count(name))
      << "metric " << name << " already registered with another kind";
  return &counters_[name];
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  FF_CHECK(!counters_.count(name) && !histograms_.count(name))
      << "metric " << name << " already registered with another kind";
  return &gauges_[name];
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  FF_CHECK(!counters_.count(name) && !gauges_.count(name))
      << "metric " << name << " already registered with another kind";
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return &it->second;
  return &histograms_.emplace(name, Histogram(std::move(upper_bounds)))
              .first->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

uint32_t MetricsRegistry::InternName(const std::string& name) {
  auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(name);
  name_ids_.emplace(name, id);
  return id;
}

void MetricsRegistry::SampleAll(double t) {
  for (const auto& [name, c] : counters_) {
    samples_.push_back(MetricSample{t, InternName(name),
                                    static_cast<double>(c.value())});
  }
  for (const auto& [name, g] : gauges_) {
    samples_.push_back(MetricSample{t, InternName(name), g.value()});
  }
  for (const auto& [name, h] : histograms_) {
    samples_.push_back(MetricSample{t, InternName(name + ".count"),
                                    static_cast<double>(h.count())});
    samples_.push_back(MetricSample{t, InternName(name + ".sum"), h.sum()});
  }
}

void MetricsRegistry::Record(double t, const std::string& series,
                             double value) {
  samples_.push_back(MetricSample{t, InternName(series), value});
}

std::vector<MetricSample> MetricsRegistry::SeriesSamples(
    const std::string& series) const {
  std::vector<MetricSample> out;
  auto it = name_ids_.find(series);
  if (it == name_ids_.end()) return out;
  for (const auto& s : samples_) {
    if (s.metric == it->second) out.push_back(s);
  }
  return out;
}

std::vector<double> MetricsRegistry::SeriesValues(
    const std::string& series) const {
  std::vector<double> out;
  for (const auto& s : SeriesSamples(series)) out.push_back(s.value);
  return out;
}

namespace {
template <typename Map>
std::vector<std::string> Keys(const Map& m) {
  std::vector<std::string> out;
  out.reserve(m.size());
  for (const auto& [k, v] : m) out.push_back(k);
  return out;
}
}  // namespace

std::vector<std::string> MetricsRegistry::CounterNames() const {
  return Keys(counters_);
}
std::vector<std::string> MetricsRegistry::GaugeNames() const {
  return Keys(gauges_);
}
std::vector<std::string> MetricsRegistry::HistogramNames() const {
  return Keys(histograms_);
}

}  // namespace obs
}  // namespace ff
