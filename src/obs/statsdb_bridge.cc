#include "obs/statsdb_bridge.h"

#include <utility>

namespace ff {
namespace obs {

namespace {

using statsdb::Column;
using statsdb::DataType;
using statsdb::Row;
using statsdb::Schema;
using statsdb::Table;
using statsdb::Value;

util::StatusOr<Table*> FreshTable(statsdb::Database* db,
                                  const std::string& name, Schema schema) {
  if (db->HasTable(name)) {
    FF_RETURN_NOT_OK(db->DropTable(name));
  }
  return db->CreateTable(name, std::move(schema));
}

}  // namespace

util::StatusOr<Table*> LoadSpans(const TraceRecorder& trace,
                                 statsdb::Database* db,
                                 const std::string& table_name) {
  FF_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({Column{"span_id", DataType::kInt64},
                      Column{"parent_id", DataType::kInt64},
                      Column{"category", DataType::kString},
                      Column{"name", DataType::kString},
                      Column{"track", DataType::kString},
                      Column{"start_s", DataType::kDouble},
                      Column{"end_s", DataType::kDouble},
                      Column{"duration_s", DataType::kDouble}}));
  FF_ASSIGN_OR_RETURN(Table * table,
                      FreshTable(db, table_name, std::move(schema)));
  for (size_t i = 0; i < trace.spans().size(); ++i) {
    const SpanRecord& s = trace.spans()[i];
    double end = s.end < 0.0 ? s.start : s.end;
    Row row{Value::Int64(static_cast<int64_t>(i + 1)),
            Value::Int64(static_cast<int64_t>(s.parent)),
            Value::String(SpanCategoryName(s.category)),
            Value::String(trace.str(s.name)),
            Value::String(trace.str(s.track)),
            Value::Double(s.start),
            Value::Double(end),
            Value::Double(end - s.start)};
    FF_RETURN_NOT_OK(table->Insert(std::move(row)));
  }
  FF_RETURN_NOT_OK(table->CreateIndex("category"));
  return table;
}

util::StatusOr<Table*> LoadInstants(const TraceRecorder& trace,
                                    statsdb::Database* db,
                                    const std::string& table_name) {
  FF_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({Column{"time_s", DataType::kDouble},
                      Column{"category", DataType::kString},
                      Column{"name", DataType::kString},
                      Column{"track", DataType::kString}}));
  FF_ASSIGN_OR_RETURN(Table * table,
                      FreshTable(db, table_name, std::move(schema)));
  for (const auto& ev : trace.instants()) {
    Row row{Value::Double(ev.time),
            Value::String(SpanCategoryName(ev.category)),
            Value::String(trace.str(ev.name)),
            Value::String(trace.str(ev.track))};
    FF_RETURN_NOT_OK(table->Insert(std::move(row)));
  }
  return table;
}

util::StatusOr<Table*> LoadMetricSamples(const MetricsRegistry& metrics,
                                         statsdb::Database* db,
                                         const std::string& table_name) {
  FF_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({Column{"time_s", DataType::kDouble},
                      Column{"metric", DataType::kString},
                      Column{"value", DataType::kDouble}}));
  FF_ASSIGN_OR_RETURN(Table * table,
                      FreshTable(db, table_name, std::move(schema)));
  for (const auto& s : metrics.samples()) {
    Row row{Value::Double(s.time),
            Value::String(metrics.metric_name(s.metric)),
            Value::Double(s.value)};
    FF_RETURN_NOT_OK(table->Insert(std::move(row)));
  }
  FF_RETURN_NOT_OK(table->CreateIndex("metric"));
  return table;
}

}  // namespace obs
}  // namespace ff
