#include "obs/statsdb_bridge.h"

#include <utility>

namespace ff {
namespace obs {

namespace {

using statsdb::Column;
using statsdb::DataType;
using statsdb::Row;
using statsdb::Schema;
using statsdb::Table;
using statsdb::Value;

util::StatusOr<Table*> FreshTable(statsdb::Database* db,
                                  const std::string& name, Schema schema) {
  if (db->HasTable(name)) {
    FF_RETURN_IF_ERROR(db->DropTable(name));
  }
  return db->CreateTable(name, std::move(schema));
}

}  // namespace

util::StatusOr<Table*> LoadSpans(const TraceRecorder& trace,
                                 statsdb::Database* db,
                                 const std::string& table_name) {
  FF_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({Column{"span_id", DataType::kInt64},
                      Column{"parent_id", DataType::kInt64},
                      Column{"category", DataType::kString},
                      Column{"name", DataType::kString},
                      Column{"track", DataType::kString},
                      Column{"start_s", DataType::kDouble},
                      Column{"end_s", DataType::kDouble},
                      Column{"duration_s", DataType::kDouble}}));
  FF_ASSIGN_OR_RETURN(Table * table,
                      FreshTable(db, table_name, std::move(schema)));
  Table::BulkAppender app(table);
  app.Reserve(trace.spans().size());
  for (size_t i = 0; i < trace.spans().size(); ++i) {
    const SpanRecord& s = trace.spans()[i];
    double end = s.end < 0.0 ? s.start : s.end;
    app.Int64(static_cast<int64_t>(i + 1))
        .Int64(static_cast<int64_t>(s.parent))
        .String(SpanCategoryName(s.category))
        .String(trace.str(s.name))
        .String(trace.str(s.track))
        .Double(s.start)
        .Double(end)
        .Double(end - s.start);
    FF_RETURN_IF_ERROR(app.EndRow());
  }
  FF_RETURN_IF_ERROR(app.Finish());
  FF_RETURN_IF_ERROR(table->CreateIndex("category"));
  return table;
}

util::StatusOr<Table*> LoadInstants(const TraceRecorder& trace,
                                    statsdb::Database* db,
                                    const std::string& table_name) {
  FF_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({Column{"time_s", DataType::kDouble},
                      Column{"category", DataType::kString},
                      Column{"name", DataType::kString},
                      Column{"track", DataType::kString}}));
  FF_ASSIGN_OR_RETURN(Table * table,
                      FreshTable(db, table_name, std::move(schema)));
  Table::BulkAppender app(table);
  app.Reserve(trace.instants().size());
  for (const auto& ev : trace.instants()) {
    app.Double(ev.time)
        .String(SpanCategoryName(ev.category))
        .String(trace.str(ev.name))
        .String(trace.str(ev.track));
    FF_RETURN_IF_ERROR(app.EndRow());
  }
  FF_RETURN_IF_ERROR(app.Finish());
  return table;
}

util::StatusOr<Table*> LoadMetricSamples(const MetricsRegistry& metrics,
                                         statsdb::Database* db,
                                         const std::string& table_name) {
  FF_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({Column{"time_s", DataType::kDouble},
                      Column{"metric", DataType::kString},
                      Column{"value", DataType::kDouble}}));
  FF_ASSIGN_OR_RETURN(Table * table,
                      FreshTable(db, table_name, std::move(schema)));
  Table::BulkAppender app(table);
  app.Reserve(metrics.samples().size());
  for (const auto& s : metrics.samples()) {
    app.Double(s.time)
        .String(metrics.metric_name(s.metric))
        .Double(s.value);
    FF_RETURN_IF_ERROR(app.EndRow());
  }
  FF_RETURN_IF_ERROR(app.Finish());
  FF_RETURN_IF_ERROR(table->CreateIndex("metric"));
  return table;
}

statsdb::MorselHook TraceMorselHook() {
  return [](const char* op, const std::vector<statsdb::MorselStat>& stats) {
    TraceRecorder* tr = ActiveTrace();
    if (tr == nullptr) return;
    // The hook fires on the coordinating thread after the fan-out
    // barrier, so these writes are single-threaded like any other
    // instrumentation site.
    double t0 = tr->now();
    std::string track = std::string("statsdb/") + op;
    for (const auto& m : stats) {
      SpanId id = tr->BeginSpan(t0, SpanCategory::kSim, "morsel", track);
      tr->SpanArg(id, "morsel", static_cast<double>(m.morsel));
      tr->SpanArg(id, "first_chunk", static_cast<double>(m.first_chunk));
      tr->SpanArg(id, "chunks", static_cast<double>(m.chunks));
      tr->SpanArg(id, "rows", static_cast<double>(m.rows));
      tr->SpanArg(id, "wall_ms", m.wall_ms);
      tr->EndSpan(id, t0 + m.wall_ms / 1000.0);
    }
  };
}

}  // namespace obs
}  // namespace ff
