#include "obs/merge.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/logging.h"

namespace ff {
namespace obs {

namespace {

std::string LaneTrack(const MergeOptions& options, size_t replica,
                      const std::string& track) {
  return options.lane_prefix + std::to_string(replica) + "/" + track;
}

/// Sorts `order`, which arrives as a concatenation of per-replica runs
/// (run r occupies [starts[r], starts[r+1]) after the sentinel push).
/// Replica streams are recorded in virtual-time order, so each run is
/// normally already sorted: pairwise-merging runs costs O(n log k)
/// sequential passes instead of an O(n log n) comparison re-sort, which
/// is the difference between the merge being noise and being the Amdahl
/// bottleneck of a parallel sweep. Any unsorted run (a recorder fed
/// out-of-order timestamps) falls back to std::sort — same total order
/// either way, since (time, replica, index) has no duplicate keys.
template <typename Ref>
void SortRunConcatenation(std::vector<Ref>* order,
                          std::vector<size_t> starts) {
  starts.push_back(order->size());
  for (size_t r = 0; r + 1 < starts.size(); ++r) {
    if (!std::is_sorted(order->begin() + static_cast<ptrdiff_t>(starts[r]),
                        order->begin() + static_cast<ptrdiff_t>(starts[r + 1]))) {
      std::sort(order->begin(), order->end());
      return;
    }
  }
  std::vector<Ref> scratch(order->size());
  std::vector<Ref>* src = order;
  std::vector<Ref>* dst = &scratch;
  while (starts.size() > 2) {
    std::vector<size_t> next;
    next.reserve(starts.size() / 2 + 2);
    size_t b = 0;
    for (; b + 2 < starts.size(); b += 2) {
      next.push_back(starts[b]);
      std::merge(src->begin() + static_cast<ptrdiff_t>(starts[b]),
                 src->begin() + static_cast<ptrdiff_t>(starts[b + 1]),
                 src->begin() + static_cast<ptrdiff_t>(starts[b + 1]),
                 src->begin() + static_cast<ptrdiff_t>(starts[b + 2]),
                 dst->begin() + static_cast<ptrdiff_t>(starts[b]));
    }
    if (b + 2 == starts.size()) {
      // Odd run count: the last run rides along unmerged this pass.
      next.push_back(starts[b]);
      std::copy(src->begin() + static_cast<ptrdiff_t>(starts[b]),
                src->begin() + static_cast<ptrdiff_t>(starts[b + 1]),
                dst->begin() + static_cast<ptrdiff_t>(starts[b]));
    }
    next.push_back(starts.back());
    starts = std::move(next);
    std::swap(src, dst);
  }
  if (src != order) *order = std::move(*src);
}

}  // namespace

void MergeTraces(const std::vector<const TraceRecorder*>& replicas,
                 TraceRecorder* out, const MergeOptions& options) {
  FF_CHECK(out->spans().empty() && out->instants().empty())
      << "MergeTraces target must be freshly constructed";

  // Global order: (start time, replica, per-replica span sequence). A
  // span's parent is recorded before it in the same replica and starts no
  // later, so parents always sort (and get their new ids) first.
  // Sort keys are materialized into the refs so the sort touches one
  // contiguous array instead of chasing per-replica span storage on
  // every compare — at fleet scale the comparator dominates otherwise.
  struct Ref {
    double time;
    uint32_t replica;
    uint32_t index;  // into replicas[replica]->spans()
    bool operator<(const Ref& o) const {
      if (time != o.time) return time < o.time;
      if (replica != o.replica) return replica < o.replica;
      return index < o.index;
    }
  };
  std::vector<Ref> order;
  size_t total = 0;
  for (const auto* r : replicas) {
    if (r != nullptr) total += r->spans().size();
  }
  order.reserve(total);
  out->ReserveSpans(total);
  std::vector<size_t> starts;
  for (size_t ri = 0; ri < replicas.size(); ++ri) {
    if (replicas[ri] == nullptr) continue;
    starts.push_back(order.size());
    const auto& spans = replicas[ri]->spans();
    for (size_t si = 0; si < spans.size(); ++si) {
      order.push_back(Ref{spans[si].start, static_cast<uint32_t>(ri),
                          static_cast<uint32_t>(si)});
    }
  }
  SortRunConcatenation(&order, std::move(starts));

  // Pass 1: emit spans in merged order and record old-id -> new-id per
  // replica. Interned strings are re-interned into `out`; track names
  // gain the replica lane prefix.
  // Per-replica old-id -> new-id. Span ids are dense (1-based record
  // indexes), so a flat vector replaces a hash map on the per-span path.
  std::vector<std::vector<SpanId>> id_map(replicas.size());
  for (size_t ri = 0; ri < replicas.size(); ++ri) {
    if (replicas[ri] != nullptr) id_map[ri].assign(replicas[ri]->spans().size(), 0);
  }
  std::vector<std::unordered_map<StrId, StrId>> track_map(replicas.size());
  // Plain (non-lane) re-intern cache, per replica: span names and arg
  // keys repeat constantly, so pay the string hash once per distinct id.
  std::vector<std::unordered_map<StrId, StrId>> str_map(replicas.size());
  auto reintern = [&](size_t replica, StrId id) {
    auto [it, fresh] = str_map[replica].try_emplace(id, 0);
    if (fresh) it->second = out->Intern(replicas[replica]->str(id));
    return it->second;
  };
  for (const Ref& ref : order) {
    const TraceRecorder& src = *replicas[ref.replica];
    const SpanRecord& s = src.spans()[ref.index];
    StrId name = reintern(ref.replica, s.name);
    auto [tit, tnew] = track_map[ref.replica].try_emplace(s.track, 0);
    if (tnew) {
      tit->second =
          out->Intern(LaneTrack(options, ref.replica, src.str(s.track)));
    }
    StrId arg_key = s.arg_key == 0 ? 0 : reintern(ref.replica, s.arg_key);
    SpanId new_id = out->BeginSpan(s.start, s.category, name, tit->second,
                                   /*parent=*/0, arg_key, s.arg_value);
    if (s.end >= 0.0) {
      if (s.flags & kSpanFlagRemoved) {
        out->EndSpanRemoved(new_id, s.end);
      } else {
        out->EndSpan(new_id, s.end);
      }
    }
    id_map[ref.replica][ref.index] = new_id;
  }

  // Pass 2: parents (the complete id map now exists, so a parent links
  // correctly wherever it sorted). A parent id with no mapping — caller
  // passed a dangling id — degrades to "no parent" rather than aborting.
  {
    // spans() is immutable from outside; remap via the merged records'
    // positions. BeginSpan appended in `order` sequence, so merged span k
    // corresponds to order[k].
    for (size_t k = 0; k < order.size(); ++k) {
      const Ref& ref = order[k];
      const SpanRecord& s = replicas[ref.replica]->spans()[ref.index];
      if (s.parent == 0 || s.parent > id_map[ref.replica].size()) continue;
      SpanId mapped = id_map[ref.replica][s.parent - 1];
      if (mapped != 0) out->SetParent(static_cast<SpanId>(k + 1), mapped);
    }
  }

  // Pass 3: span arguments, in merged-span order (and original record
  // order within a span), so the merged arg streams are deterministic.
  {
    // Dense per-span arg index lists (span ids are 1-based record
    // indexes); args pointing at id 0 or past the span table are dropped.
    std::vector<std::vector<std::vector<size_t>>> num_by_span(replicas.size());
    std::vector<std::vector<std::vector<size_t>>> str_by_span(replicas.size());
    for (size_t ri = 0; ri < replicas.size(); ++ri) {
      if (replicas[ri] == nullptr) continue;
      size_t num_spans = replicas[ri]->spans().size();
      num_by_span[ri].resize(num_spans);
      str_by_span[ri].resize(num_spans);
      const auto& na = replicas[ri]->num_args();
      for (size_t i = 0; i < na.size(); ++i) {
        if (na[i].span == 0 || na[i].span > num_spans) continue;
        num_by_span[ri][na[i].span - 1].push_back(i);
      }
      const auto& sa = replicas[ri]->str_args();
      for (size_t i = 0; i < sa.size(); ++i) {
        if (sa[i].span == 0 || sa[i].span > num_spans) continue;
        str_by_span[ri][sa[i].span - 1].push_back(i);
      }
    }
    for (size_t k = 0; k < order.size(); ++k) {
      const Ref& ref = order[k];
      const TraceRecorder& src = *replicas[ref.replica];
      SpanId new_id = static_cast<SpanId>(k + 1);
      for (size_t i : num_by_span[ref.replica][ref.index]) {
        const NumArgRecord& a = src.num_args()[i];
        out->SpanArg(new_id, reintern(ref.replica, a.key), a.value);
      }
      for (size_t i : str_by_span[ref.replica][ref.index]) {
        const StrArgRecord& a = src.str_args()[i];
        out->SpanArg(new_id, src.str(a.key), src.str(a.value));
      }
    }
  }

  // Instants: (time, replica, sequence) order, lane-prefixed tracks.
  std::vector<Ref> iorder;
  std::vector<size_t> istarts;
  for (size_t ri = 0; ri < replicas.size(); ++ri) {
    if (replicas[ri] == nullptr) continue;
    istarts.push_back(iorder.size());
    const auto& instants = replicas[ri]->instants();
    for (size_t ii = 0; ii < instants.size(); ++ii) {
      iorder.push_back(Ref{instants[ii].time, static_cast<uint32_t>(ri),
                           static_cast<uint32_t>(ii)});
    }
  }
  SortRunConcatenation(&iorder, std::move(istarts));
  for (const Ref& ref : iorder) {
    const TraceRecorder& src = *replicas[ref.replica];
    const InstantRecord& in = src.instants()[ref.index];
    out->Instant(in.time, in.category, src.str(in.name),
                 LaneTrack(options, ref.replica, src.str(in.track)));
  }
}

void MergeMetrics(const std::vector<const MetricsRegistry*>& replicas,
                  MetricsRegistry* out, const MergeOptions& options) {
  FF_CHECK(out->samples().empty() && out->CounterNames().empty() &&
           out->GaugeNames().empty() && out->HistogramNames().empty())
      << "MergeMetrics target must be freshly constructed";

  for (size_t ri = 0; ri < replicas.size(); ++ri) {
    const MetricsRegistry* src = replicas[ri];
    if (src == nullptr) continue;
    for (const auto& name : src->CounterNames()) {
      out->counter(name)->Add(src->FindCounter(name)->value());
    }
    for (const auto& name : src->GaugeNames()) {
      out->gauge(options.lane_prefix + std::to_string(ri) + "/" + name)
          ->Set(src->FindGauge(name)->value());
    }
    for (const auto& name : src->HistogramNames()) {
      const Histogram* h = src->FindHistogram(name);
      Histogram* merged = out->histogram(name, h->upper_bounds());
      if (!merged->MergeFrom(*h)) {
        // Bucket layouts disagree across replicas: keep the replica's
        // observations under its lane instead of dropping them.
        out->histogram(
               options.lane_prefix + std::to_string(ri) + "/" + name,
               h->upper_bounds())
            ->MergeFrom(*h);
      }
    }
  }

  // Sample series: union by name, one global stream ordered by (time,
  // replica, recording sequence). Names are resolved to merged ids once
  // per (replica, series) — the per-sample cost is then an array index,
  // which matters at fleet scale (hundreds of thousands of samples).
  // Materialized sort keys (see MergeTraces): the (time, replica, index)
  // triple lives in the ref itself, so std::sort never dereferences the
  // source registries.
  struct Ref {
    double time;
    uint32_t replica;
    uint32_t index;
    bool operator<(const Ref& o) const {
      if (time != o.time) return time < o.time;
      if (replica != o.replica) return replica < o.replica;
      return index < o.index;
    }
  };
  std::vector<std::vector<uint32_t>> id_map(replicas.size());
  std::vector<Ref> order;
  size_t total = 0;
  for (const auto* r : replicas) {
    if (r != nullptr) total += r->samples().size();
  }
  order.reserve(total);
  out->ReserveSamples(total);
  std::vector<size_t> starts;
  for (size_t ri = 0; ri < replicas.size(); ++ri) {
    if (replicas[ri] == nullptr) continue;
    starts.push_back(order.size());
    id_map[ri].reserve(replicas[ri]->num_metric_names());
    for (size_t n = 0; n < replicas[ri]->num_metric_names(); ++n) {
      id_map[ri].push_back(out->series_id(
          replicas[ri]->metric_name(static_cast<uint32_t>(n))));
    }
    const auto& samples = replicas[ri]->samples();
    for (size_t si = 0; si < samples.size(); ++si) {
      order.push_back(Ref{samples[si].time, static_cast<uint32_t>(ri),
                          static_cast<uint32_t>(si)});
    }
  }
  SortRunConcatenation(&order, std::move(starts));
  for (const Ref& ref : order) {
    const MetricSample& s = replicas[ref.replica]->samples()[ref.index];
    out->RecordById(s.time, id_map[ref.replica][s.metric], s.value);
  }
}

}  // namespace obs
}  // namespace ff
