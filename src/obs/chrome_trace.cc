#include "obs/chrome_trace.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace ff {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microseconds with fixed precision — the deterministic time format.
std::string Us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Lane numbering: one tid per distinct track string, in first-use order
/// over spans then instants. tid 0 is reserved for counter events.
class Lanes {
 public:
  int Tid(StrId track) {
    auto it = tids_.find(track);
    if (it != tids_.end()) return it->second;
    int tid = static_cast<int>(order_.size()) + 1;
    tids_.emplace(track, tid);
    order_.push_back(track);
    return tid;
  }
  const std::vector<StrId>& order() const { return order_; }

 private:
  std::map<StrId, int> tids_;
  std::vector<StrId> order_;
};

struct SpanArgs {
  std::vector<const NumArgRecord*> nums;
  std::vector<const StrArgRecord*> strs;
};

/// Emits one recorder's metadata + spans + instants (+ counters) under a
/// fixed process id. `first` threads the comma separator across multiple
/// processes in one traceEvents array.
void EmitProcessEvents(const TraceRecorder& trace,
                       const MetricsRegistry* metrics, int pid,
                       const std::string& process_name, bool include_counters,
                       std::ostream* out, bool* first) {
  Lanes lanes;
  for (const auto& s : trace.spans()) lanes.Tid(s.track);
  for (const auto& i : trace.instants()) lanes.Tid(i.track);

  std::map<SpanId, SpanArgs> args;
  for (const auto& a : trace.num_args()) args[a.span].nums.push_back(&a);
  for (const auto& a : trace.str_args()) args[a.span].strs.push_back(&a);

  auto sep = [&] {
    if (!*first) *out << ",\n";
    *first = false;
  };

  sep();
  *out << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"name\":\"process_name\","
       << "\"args\":{\"name\":\"" << JsonEscape(process_name) << "\"}}";
  for (size_t i = 0; i < lanes.order().size(); ++i) {
    sep();
    *out << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << (i + 1)
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
         << JsonEscape(trace.str(lanes.order()[i])) << "\"}}";
  }

  for (size_t i = 0; i < trace.spans().size(); ++i) {
    const SpanRecord& s = trace.spans()[i];
    SpanId id = static_cast<SpanId>(i + 1);
    double end = s.end < 0.0 ? s.start : s.end;
    sep();
    *out << "{\"ph\":\"X\",\"pid\":" << pid
         << ",\"tid\":" << lanes.Tid(s.track) << ",\"cat\":\""
         << SpanCategoryName(s.category) << "\",\"name\":\""
         << JsonEscape(trace.str(s.name)) << "\",\"ts\":" << Us(s.start)
         << ",\"dur\":" << Us(end - s.start) << ",\"args\":{\"span_id\":"
         << id << ",\"parent_id\":" << s.parent;
    if (s.arg_key != 0) {
      *out << ",\"" << JsonEscape(trace.str(s.arg_key))
           << "\":" << Num(s.arg_value);
    }
    if (s.flags & kSpanFlagRemoved) *out << ",\"removed\":1";
    auto it = args.find(id);
    if (it != args.end()) {
      for (const auto* a : it->second.nums) {
        *out << ",\"" << JsonEscape(trace.str(a->key))
             << "\":" << Num(a->value);
      }
      for (const auto* a : it->second.strs) {
        *out << ",\"" << JsonEscape(trace.str(a->key)) << "\":\""
             << JsonEscape(trace.str(a->value)) << "\"";
      }
    }
    *out << "}}";
  }

  for (const auto& ev : trace.instants()) {
    sep();
    *out << "{\"ph\":\"i\",\"pid\":" << pid
         << ",\"tid\":" << lanes.Tid(ev.track) << ",\"cat\":\""
         << SpanCategoryName(ev.category) << "\",\"name\":\""
         << JsonEscape(trace.str(ev.name)) << "\",\"ts\":" << Us(ev.time)
         << ",\"s\":\"t\"}";
  }

  if (metrics != nullptr && include_counters) {
    for (const auto& s : metrics->samples()) {
      sep();
      *out << "{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":0,\"name\":\""
           << JsonEscape(metrics->metric_name(s.metric))
           << "\",\"ts\":" << Us(s.time) << ",\"args\":{\"value\":"
           << Num(s.value) << "}}";
    }
  }
}

}  // namespace

void WriteChromeTrace(const TraceRecorder& trace,
                      const MetricsRegistry* metrics, std::ostream* out,
                      const ChromeTraceOptions& options) {
  *out << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  EmitProcessEvents(trace, metrics, 1, options.process_name,
                    options.include_counters, out, &first);
  if (options.runtime_trace != nullptr) {
    // Wall-clock process: separate pid, never mixed with virtual time.
    EmitProcessEvents(*options.runtime_trace, nullptr, options.runtime_pid,
                      options.runtime_process_name,
                      /*include_counters=*/false, out, &first);
  }
  *out << "\n]\n}\n";
}

std::string ChromeTraceJson(const TraceRecorder& trace,
                            const MetricsRegistry* metrics,
                            const ChromeTraceOptions& options) {
  std::ostringstream out;
  WriteChromeTrace(trace, metrics, &out, options);
  return out.str();
}

util::Status WriteChromeTraceFile(const std::string& path,
                                  const TraceRecorder& trace,
                                  const MetricsRegistry* metrics,
                                  const ChromeTraceOptions& options) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return util::Status::Internal("cannot open " + path);
  }
  WriteChromeTrace(trace, metrics, &out, options);
  out.close();
  if (!out.good()) return util::Status::Internal("write failed: " + path);
  return util::Status::OK();
}

void WriteSpansCsv(const TraceRecorder& trace, std::ostream* out) {
  *out << "span_id,parent_id,category,name,track,start_s,end_s,"
          "duration_s\n";
  char buf[128];
  for (size_t i = 0; i < trace.spans().size(); ++i) {
    const SpanRecord& s = trace.spans()[i];
    double end = s.end < 0.0 ? s.start : s.end;
    std::snprintf(buf, sizeof(buf), "%.6f,%.6f,%.6f", s.start, end,
                  end - s.start);
    *out << (i + 1) << "," << s.parent << ","
         << SpanCategoryName(s.category) << "," << trace.str(s.name) << ","
         << trace.str(s.track) << "," << buf << "\n";
  }
}

void WriteMetricSamplesCsv(const MetricsRegistry& metrics,
                           std::ostream* out) {
  *out << "time_s,metric,value\n";
  char buf[64];
  for (const auto& s : metrics.samples()) {
    std::snprintf(buf, sizeof(buf), "%.6f", s.time);
    *out << buf << "," << metrics.metric_name(s.metric) << ",";
    std::snprintf(buf, sizeof(buf), "%.9g", s.value);
    *out << buf << "\n";
  }
}

}  // namespace obs
}  // namespace ff
