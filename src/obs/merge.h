// Deterministic merge of per-replica telemetry — the post-barrier half of
// a parallel sweep (parallel/sweep.h). Each campaign replica records into
// its own TraceRecorder/MetricsRegistry on its worker thread; afterwards
// the recordings are folded into one timeline with per-replica lanes.
//
// Determinism is the contract: the merge consumes replicas strictly in
// replica-index order and orders events by (virtual time, replica, record
// sequence), never by wall-clock completion or worker assignment, so the
// merged output is byte-identical whether the sweep ran on 1, 4 or 16
// threads (tested in tests/parallel/sweep_test.cc).

#ifndef FF_OBS_MERGE_H_
#define FF_OBS_MERGE_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ff {
namespace obs {

struct MergeOptions {
  /// Lane prefix: replica i's track `t` becomes `<prefix><i>/<t>` in the
  /// merged recorder (one group of lanes per replica in the Chrome view).
  std::string lane_prefix = "r";
};

/// Merges `replicas` (index order = replica order) into `out`, which must
/// be freshly constructed. Spans are ordered by (start time, replica,
/// span sequence) and instants by (time, replica, sequence); parent links
/// and span arguments are remapped; tracks gain per-replica lane
/// prefixes. Null entries are skipped (a replica with tracing disabled).
void MergeTraces(const std::vector<const TraceRecorder*>& replicas,
                 TraceRecorder* out, const MergeOptions& options = {});

/// Union-merges `replicas` into `out` (freshly constructed):
///   - counters: summed under their original names (commutative, so the
///     result is independent of replica completion order);
///   - histograms: bucket-wise sums under the original name when every
///     replica agrees on the bucket layout, lane-prefixed otherwise;
///   - gauges: lane-prefixed (`<prefix><i>/<name>`) — point-in-time
///     values from different replicas cannot be meaningfully combined;
///   - sample series: union of series names; samples of a series from
///     all replicas appear in one stream ordered by (time, replica,
///     recording sequence).
void MergeMetrics(const std::vector<const MetricsRegistry*>& replicas,
                  MetricsRegistry* out, const MergeOptions& options = {});

}  // namespace obs
}  // namespace ff

#endif  // FF_OBS_MERGE_H_
