// Exporters for the recorded telemetry:
//   - Chrome trace_event JSON, loadable in Perfetto / chrome://tracing
//     (spans as complete "X" events on one lane per track, instants as
//     "i" events, metric samples as "C" counter events);
//   - flat CSV (spans / metric samples) for spreadsheets and statsdb
//     ingestion via csv_io.
//
// Output is byte-deterministic for a given recorder state: lanes are
// numbered in first-use order, events are emitted in record order, and
// every floating-point field is formatted with a fixed printf format —
// a fixed-seed simulation therefore exports a byte-identical trace
// (golden-tested in tests/obs/trace_test.cc).

#ifndef FF_OBS_CHROME_TRACE_H_
#define FF_OBS_CHROME_TRACE_H_

#include <ostream>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace ff {
namespace obs {

struct ChromeTraceOptions {
  /// The "process_name" metadata shown by the viewer.
  std::string process_name = "forecast-factory";
  /// Include "C" counter events from the metrics sample series.
  bool include_counters = true;

  /// Optional second recorder whose clock is WALL time (e.g. the sweep
  /// runtime trace built by obs::FillSweepRuntimeTrace). Its events are
  /// emitted under a separate process id so Perfetto shows sim-time and
  /// run-time side by side without ever mixing the clock domains —
  /// runtime rows carry real measurements and are NOT covered by the
  /// byte-determinism contract above. Null = single-process output,
  /// byte-identical to what this exporter always produced.
  const TraceRecorder* runtime_trace = nullptr;
  std::string runtime_process_name = "runtime (wall clock)";
  int runtime_pid = 2;
};

/// Writes the Chrome trace_event JSON document. `metrics` may be null.
/// Virtual seconds map to trace microseconds (1 s = 1e6 us), so lanes are
/// labelled in wall-ish units inside the viewer.
void WriteChromeTrace(const TraceRecorder& trace,
                      const MetricsRegistry* metrics, std::ostream* out,
                      const ChromeTraceOptions& options = {});

std::string ChromeTraceJson(const TraceRecorder& trace,
                            const MetricsRegistry* metrics = nullptr,
                            const ChromeTraceOptions& options = {});

/// Writes the JSON to `path`; IO errors become util::Status.
util::Status WriteChromeTraceFile(const std::string& path,
                                  const TraceRecorder& trace,
                                  const MetricsRegistry* metrics = nullptr,
                                  const ChromeTraceOptions& options = {});

/// CSV: span_id,parent_id,category,name,track,start_s,end_s,duration_s.
/// Open spans export with end_s == start_s.
void WriteSpansCsv(const TraceRecorder& trace, std::ostream* out);

/// CSV: time_s,metric,value.
void WriteMetricSamplesCsv(const MetricsRegistry& metrics,
                           std::ostream* out);

}  // namespace obs
}  // namespace ff

#endif  // FF_OBS_CHROME_TRACE_H_
