// Wall-clock runtime profiling primitives — the *other* clock domain.
//
// Everything in obs/trace.h records VIRTUAL time: when the simulated
// factory did something. This header records RUNTIME: where the engine
// that runs the simulation spends real nanoseconds — worker threads
// running/stealing/idling, query operators pulling batches, sweep
// replicas waiting in queue. The two domains never mix: virtual-time
// traces stay byte-deterministic across thread counts, runtime profiles
// are real measurements and must never leak into determinism-gated
// artifacts (the same contract statsdb_bridge.h documents for
// MorselStat wall times).
//
// Layering: this file lives in its own library (ff_runtime_stats,
// depending only on ff_util) so that BOTH ff_parallel_core (the thread
// pool) and ff_statsdb (the executor) can link it — ff_obs itself links
// ff_statsdb and therefore cannot be a dependency of either. The
// exporters that need the rest of the obs stack (Chrome lanes, statsdb
// tables) live in obs/profiler.h inside ff_obs.
//
// Compile-out: -DFF_PROFILING=OFF defines FF_PROFILING_DISABLED and
// every timing hook guarded by `if constexpr (obs::kProfilingCompiledIn)`
// becomes dead code, mirroring the FF_TRACING pattern in obs/trace.h.
// Steal counters stay live either way (they predate the profiler and
// tests rely on ThreadPool::steals()); only clock reads, histograms and
// gauges compile out.

#ifndef FF_OBS_RUNTIME_STATS_H_
#define FF_OBS_RUNTIME_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ff {
namespace obs {

/// True when the wall-clock profiling hooks are compiled in
/// (-DFF_PROFILING=ON, the default).
#if defined(FF_PROFILING_DISABLED)
inline constexpr bool kProfilingCompiledIn = false;
#else
inline constexpr bool kProfilingCompiledIn = true;
#endif

/// Monotonic wall-clock nanoseconds (std::chrono::steady_clock). All
/// runtime profiling timestamps come from this one function so the
/// runtime clock domain has a single origin per process.
int64_t RuntimeNowNs();

// ---------------------------------------------------------------------------
// RuntimeHistogram — log2-bucketed nanosecond histogram, safe for any
// number of concurrent writers (relaxed atomic increments; TSan-clean).
// Unlike obs::Histogram (single-threaded, virtual-time), this is built
// for hot multi-threaded paths: Record() is two fetch_adds and a
// bit_width.

class RuntimeHistogram {
 public:
  /// Bucket b (b >= 1) holds values with bit_width b, i.e. ns in
  /// [2^(b-1), 2^b). Bucket 0 holds exact zeros. 40 buckets cover up to
  /// ~9 minutes; larger values clamp into the last bucket.
  static constexpr size_t kBuckets = 40;

  struct Snapshot {
    uint64_t buckets[kBuckets] = {};
    uint64_t count = 0;
    uint64_t sum_ns = 0;

    double MeanNs() const {
      return count == 0 ? 0.0 : static_cast<double>(sum_ns) / count;
    }
    /// Approximate quantile (linear interpolation inside the bucket).
    double QuantileNs(double q) const;
    /// Counter-wise difference (this - begin); for windowed profiles.
    Snapshot Since(const Snapshot& begin) const;
    void MergeFrom(const Snapshot& other);
  };

  void Record(uint64_t ns) {
    buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t SumNs() const { return sum_ns_.load(std::memory_order_relaxed); }

  Snapshot Snap() const;

  static size_t BucketIndex(uint64_t ns);
  /// Inclusive lower bound of bucket `b` in nanoseconds.
  static uint64_t BucketLowNs(size_t b);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

// ---------------------------------------------------------------------------
// Per-worker thread-pool stats. One instance per worker, cache-line
// separated; the owning worker is the only writer of the timing fields,
// thieves never write another worker's struct, and readers snapshot with
// relaxed loads — so plain relaxed atomics are exact, not approximate.

struct alignas(64) WorkerRuntimeStats {
  std::atomic<uint64_t> tasks_run{0};    // tasks executed (always on)
  std::atomic<uint64_t> run_ns{0};       // time inside task bodies
  std::atomic<uint64_t> idle_ns{0};      // time parked on the work signal
  std::atomic<uint64_t> parks{0};        // times the worker went to sleep
  std::atomic<uint64_t> steals{0};       // successful StealTop (always on)
  std::atomic<uint64_t> steal_fails{0};  // empty/lost StealTop attempts
  std::atomic<uint64_t> deque_peak{0};   // max own-deque depth observed
  RuntimeHistogram task_ns;              // per-task run duration
};

/// Plain-data copy of one worker's counters at a point in time.
struct WorkerRuntimeSnapshot {
  uint64_t tasks_run = 0;
  uint64_t run_ns = 0;
  uint64_t idle_ns = 0;
  uint64_t parks = 0;
  uint64_t steals = 0;
  uint64_t steal_fails = 0;
  uint64_t deque_peak = 0;
  uint64_t deque_depth = 0;  // approximate depth at snapshot time
  RuntimeHistogram::Snapshot task_ns;
};

/// Snapshot of a whole pool's runtime behaviour (ThreadPool::
/// RuntimeProfile()). Subtract two snapshots with Since() to profile a
/// window (e.g. one sweep) instead of the pool's whole lifetime.
struct PoolRuntimeProfile {
  size_t num_threads = 0;
  uint64_t lifetime_ns = 0;  // pool construction (or window start) to snap
  uint64_t global_queue_depth = 0;
  uint64_t global_queue_peak = 0;
  std::vector<WorkerRuntimeSnapshot> workers;

  uint64_t TotalTasks() const;
  uint64_t TotalRunNs() const;
  uint64_t TotalIdleNs() const;
  uint64_t TotalSteals() const;
  uint64_t TotalStealFails() const;
  /// Fraction of worker-seconds spent inside task bodies:
  /// sum(run_ns) / (lifetime_ns * num_threads). 0 when unknown.
  double Occupancy() const;
  /// Merged per-task latency histogram across workers.
  RuntimeHistogram::Snapshot MergedTaskNs() const;
  /// Window profile: counters accumulated after `begin` was taken.
  PoolRuntimeProfile Since(const PoolRuntimeProfile& begin) const;
};

// ---------------------------------------------------------------------------
// Sweep-level runtime profile (filled by parallel::SweepRunner; declared
// here rather than in sweep.h so ff_obs exporters can consume it without
// linking ff_parallel).

struct ReplicaRuntime {
  size_t replica = 0;
  /// Worker index that ran the replica; SIZE_MAX when run inline.
  size_t worker = SIZE_MAX;
  /// Sweep start -> replica start: time spent queued/stolen-but-not-run.
  double queue_wait_ms = 0.0;
  /// Replica function execution time.
  double wall_ms = 0.0;
};

struct SweepRuntimeProfile {
  /// Whole sweep wall time, fan-out through merge barrier.
  double wall_ms = 0.0;
  std::vector<ReplicaRuntime> replicas;
  /// Pool counters accumulated during the sweep window (empty when the
  /// sweep ran inline without a pool).
  PoolRuntimeProfile pool;
  /// Per-worker occupancy over the sweep window: run_ns / sweep wall.
  std::vector<double> worker_occupancy;
};

// ---------------------------------------------------------------------------
// Query profiling: a tree of per-operator counters mirroring a statsdb
// plan. The executor fills one of these when a query runs under EXPLAIN
// ANALYZE (or any caller of ExecutePlanProfiled); it has no statsdb
// dependencies so it can cross the ff_statsdb/ff_obs layering boundary
// in either direction.

struct OperatorProfile {
  std::string name;  // operator label, e.g. "Scan(runs, pred=..., prune=[day])"

  uint64_t rows_out = 0;  // rows in emitted batches
  uint64_t batches = 0;   // batches emitted
  uint64_t wall_ns = 0;   // cumulative time in Next(), children included

  // Scan-only counters.
  bool is_scan = false;
  uint64_t chunks_scanned = 0;  // chunks materialized and evaluated
  uint64_t chunks_pruned = 0;   // chunks skipped via zone maps
  uint64_t index_rows = 0;      // rows served by the hash-index path

  // Parallel-unit counters (a morsel fan-out that replaced a pipeline).
  bool parallel = false;
  uint64_t morsels = 0;        // morsels dispatched
  uint64_t merge_ns = 0;       // deterministic merge-cascade time
  uint64_t max_morsel_ns = 0;  // slowest morsel

  std::vector<std::unique_ptr<OperatorProfile>> children;

  OperatorProfile* AddChild();
  /// Time spent in this operator alone (wall minus children). For nodes
  /// under a parallel unit, wall_ns is CPU time summed across morsels.
  uint64_t SelfNs() const;
  /// Structural merge: sums counters of `other` into this node and
  /// recursively into positionally-matching children (creating them when
  /// absent). Used to fold per-morsel chain profiles into one.
  void MergeFrom(const OperatorProfile& other);
};

struct QueryProfile {
  std::string engine = "serial";  // "serial", "parallel", or "cache"
  uint64_t total_ns = 0;          // whole ExecutePlanProfiled call
  std::unique_ptr<OperatorProfile> root;
  /// Result-cache disposition: "hit" (served from statsdb's result
  /// cache, nothing executed, root stays null), "miss" (consulted,
  /// executed, stored), "bypass" (cache off or plan uncacheable), or
  /// "" for profiled runs that never consulted the cache layer.
  std::string cache;

  /// Annotated plan tree, one line per operator (two-space indent per
  /// depth), preceded by an `engine=... total=...` header (plus
  /// `cache=...` when the cache layer was consulted). With profiling
  /// compiled out the tree renders without counters and the header
  /// notes "(profiling compiled out)".
  std::vector<std::string> RenderLines() const;
  std::string Render() const;  // newline-joined RenderLines()
};

/// "1.234ms" fixed formatting used by every runtime renderer.
std::string FormatNsAsMs(uint64_t ns);

}  // namespace obs
}  // namespace ff

#endif  // FF_OBS_RUNTIME_STATS_H_
