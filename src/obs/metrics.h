// Named counters, gauges and fixed-bucket histograms plus a registry that
// snapshots them into a virtual-time sample series — the quantitative half
// of the observability layer (queue depths, utilization, transfer bytes,
// plan counts). Instruments are plain structs with inline mutators so a
// hot-path increment is a single add; lookup cost is paid once per
// instrument via get-or-create and cached by callers (see CachedCounter).
//
// Simulation-budget work (Bokor et al., PAPERS.md) argues instrumentation
// overhead must itself be measured and bounded; bench/perf_trace measures
// this layer's.

#ifndef FF_OBS_METRICS_H_
#define FF_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace ff {
namespace obs {

/// Monotonically increasing integer metric. Wraps modulo 2^64 like any
/// unsigned counter; consumers diff successive samples.
class Counter {
 public:
  void Increment() { ++value_; }
  void Add(uint64_t delta) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-write-wins point-in-time metric.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `upper_bounds` are ascending inclusive upper
/// edges; one implicit overflow bucket catches everything above the last
/// bound. Observe is O(log buckets).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double x);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// upper_bounds().size() + 1 buckets; the last is the overflow bucket.
  const std::vector<double>& upper_bounds() const { return bounds_; }
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// selected bucket; the overflow bucket reports its lower edge. 0 when
  /// empty.
  double Quantile(double q) const;

  /// Adds `other`'s observations bucket-wise (sweep merge path). Returns
  /// false — and leaves this histogram untouched — when the bucket
  /// layouts differ; bucket-wise addition is commutative, so a merged
  /// histogram is independent of replica completion order.
  bool MergeFrom(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// One point of the sampled telemetry stream.
struct MetricSample {
  double time;
  uint32_t metric;  // index into MetricsRegistry::metric_names()
  double value;
};

/// Owns named instruments (stable addresses; get-or-create) and the
/// virtual-time sample series. Iteration order is the name order, so
/// sampling and export are deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Fatal when the name is already used by another kind.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Snapshots every counter (as a double) and gauge into the sample
  /// series at virtual time `t`; histograms contribute "<name>.count" and
  /// "<name>.sum".
  void SampleAll(double t);

  /// Appends an explicit sample (e.g. a per-run walltime the moment it
  /// completes) without touching any instrument.
  void Record(double t, const std::string& series, double value);

  /// Bulk-append path (sweep merge): resolve a series name to its id
  /// once, then append samples by id — skips the per-sample name lookup.
  uint32_t series_id(const std::string& series) { return InternName(series); }
  void RecordById(double t, uint32_t series_id, double value) {
    samples_.push_back(MetricSample{t, series_id, value});
  }
  void ReserveSamples(size_t n) { samples_.reserve(n); }

  const std::vector<MetricSample>& samples() const { return samples_; }
  const std::string& metric_name(uint32_t id) const { return names_[id]; }
  size_t num_metric_names() const { return names_.size(); }

  /// All samples of one series, in recording order.
  std::vector<MetricSample> SeriesSamples(const std::string& series) const;
  /// Values only, for feeding analysis code (e.g. logdata::Spc).
  std::vector<double> SeriesValues(const std::string& series) const;

  std::vector<std::string> CounterNames() const;
  std::vector<std::string> GaugeNames() const;
  std::vector<std::string> HistogramNames() const;

 private:
  uint32_t InternName(const std::string& name);

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::vector<std::string> names_;
  std::map<std::string, uint32_t> name_ids_;
  std::vector<MetricSample> samples_;
};

/// Revalidating cache for a hot-path counter: one integer compare per use
/// once the active registry is stable. Revalidates on the observability
/// install epoch (see obs::ObsEpoch), not the registry address, so a
/// registry reallocated at a freed one's address cannot false-match.
struct CachedCounter {
  uint64_t epoch = 0;
  Counter* counter = nullptr;

  Counter* Get(MetricsRegistry* m, const char* name) {
    uint64_t e = ObsEpoch();
    if (e != epoch) {
      epoch = e;
      counter = m->counter(name);
    }
    return counter;
  }
};

}  // namespace obs
}  // namespace ff

#endif  // FF_OBS_METRICS_H_
