#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace ff {
namespace obs {

namespace {

using statsdb::Column;
using statsdb::DataType;
using statsdb::Schema;
using statsdb::Table;

util::StatusOr<Table*> FreshTable(statsdb::Database* db,
                                  const std::string& name, Schema schema) {
  if (db->HasTable(name)) {
    FF_RETURN_IF_ERROR(db->DropTable(name));
  }
  return db->CreateTable(name, std::move(schema));
}

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

double Ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

void FillSweepRuntimeTrace(const SweepRuntimeProfile& profile,
                           TraceRecorder* trace) {
  if (trace == nullptr) return;
  StrId replica_name = trace->Intern("replica");
  for (const ReplicaRuntime& r : profile.replicas) {
    std::string lane = r.worker == SIZE_MAX
                           ? std::string("inline")
                           : "w" + std::to_string(r.worker);
    double start_s = r.queue_wait_ms / 1000.0;
    SpanId id = trace->BeginSpan(start_s, SpanCategory::kRun, replica_name,
                                 trace->Intern(lane));
    trace->SpanArg(id, "replica", static_cast<double>(r.replica));
    trace->SpanArg(id, "queue_wait_ms", r.queue_wait_ms);
    trace->SpanArg(id, "wall_ms", r.wall_ms);
    trace->EndSpan(id, start_s + r.wall_ms / 1000.0);
  }
}

util::StatusOr<Table*> LoadRuntimeWorkers(const PoolRuntimeProfile& profile,
                                          statsdb::Database* db,
                                          const std::string& table_name) {
  FF_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({Column{"worker", DataType::kInt64},
                      Column{"tasks", DataType::kInt64},
                      Column{"run_ms", DataType::kDouble},
                      Column{"idle_ms", DataType::kDouble},
                      Column{"parks", DataType::kInt64},
                      Column{"steals", DataType::kInt64},
                      Column{"steal_fails", DataType::kInt64},
                      Column{"deque_peak", DataType::kInt64},
                      Column{"task_p50_us", DataType::kDouble},
                      Column{"task_p95_us", DataType::kDouble}}));
  FF_ASSIGN_OR_RETURN(Table * table,
                      FreshTable(db, table_name, std::move(schema)));
  Table::BulkAppender app(table);
  app.Reserve(profile.workers.size());
  for (size_t i = 0; i < profile.workers.size(); ++i) {
    const WorkerRuntimeSnapshot& w = profile.workers[i];
    app.Int64(static_cast<int64_t>(i))
        .Int64(static_cast<int64_t>(w.tasks_run))
        .Double(Ms(w.run_ns))
        .Double(Ms(w.idle_ns))
        .Int64(static_cast<int64_t>(w.parks))
        .Int64(static_cast<int64_t>(w.steals))
        .Int64(static_cast<int64_t>(w.steal_fails))
        .Int64(static_cast<int64_t>(w.deque_peak))
        .Double(w.task_ns.QuantileNs(0.5) / 1e3)
        .Double(w.task_ns.QuantileNs(0.95) / 1e3);
    FF_RETURN_IF_ERROR(app.EndRow());
  }
  FF_RETURN_IF_ERROR(app.Finish());
  return table;
}

namespace {

util::Status AppendOperators(const OperatorProfile& op, int64_t parent_id,
                             int64_t depth, int64_t* next_id,
                             Table::BulkAppender* app) {
  const int64_t id = (*next_id)++;
  app->Int64(id)
      .Int64(parent_id)
      .Int64(depth)
      .String(op.name)
      .Int64(static_cast<int64_t>(op.rows_out))
      .Int64(static_cast<int64_t>(op.batches))
      .Double(Ms(op.wall_ns))
      .Double(Ms(op.SelfNs()))
      .Int64(static_cast<int64_t>(op.chunks_scanned))
      .Int64(static_cast<int64_t>(op.chunks_pruned))
      .Int64(static_cast<int64_t>(op.morsels))
      .Double(Ms(op.merge_ns));
  FF_RETURN_IF_ERROR(app->EndRow());
  for (const auto& c : op.children) {
    FF_RETURN_IF_ERROR(AppendOperators(*c, id, depth + 1, next_id, app));
  }
  return util::Status::OK();
}

}  // namespace

util::StatusOr<Table*> LoadRuntimeOperators(const QueryProfile& profile,
                                            statsdb::Database* db,
                                            const std::string& table_name) {
  FF_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({Column{"op_id", DataType::kInt64},
                      Column{"parent_id", DataType::kInt64},
                      Column{"depth", DataType::kInt64},
                      Column{"name", DataType::kString},
                      Column{"rows", DataType::kInt64},
                      Column{"batches", DataType::kInt64},
                      Column{"time_ms", DataType::kDouble},
                      Column{"self_ms", DataType::kDouble},
                      Column{"chunks_scanned", DataType::kInt64},
                      Column{"chunks_pruned", DataType::kInt64},
                      Column{"morsels", DataType::kInt64},
                      Column{"merge_ms", DataType::kDouble}}));
  FF_ASSIGN_OR_RETURN(Table * table,
                      FreshTable(db, table_name, std::move(schema)));
  Table::BulkAppender app(table);
  if (profile.root != nullptr) {
    int64_t next_id = 1;
    FF_RETURN_IF_ERROR(
        AppendOperators(*profile.root, 0, 0, &next_id, &app));
  }
  FF_RETURN_IF_ERROR(app.Finish());
  return table;
}

util::StatusOr<Table*> LoadRuntimeReplicas(const SweepRuntimeProfile& profile,
                                           statsdb::Database* db,
                                           const std::string& table_name) {
  FF_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({Column{"replica", DataType::kInt64},
                      Column{"worker", DataType::kInt64},
                      Column{"queue_wait_ms", DataType::kDouble},
                      Column{"wall_ms", DataType::kDouble}}));
  FF_ASSIGN_OR_RETURN(Table * table,
                      FreshTable(db, table_name, std::move(schema)));
  Table::BulkAppender app(table);
  app.Reserve(profile.replicas.size());
  for (const ReplicaRuntime& r : profile.replicas) {
    app.Int64(static_cast<int64_t>(r.replica))
        .Int64(r.worker == SIZE_MAX ? int64_t{-1}
                                    : static_cast<int64_t>(r.worker))
        .Double(r.queue_wait_ms)
        .Double(r.wall_ms);
    FF_RETURN_IF_ERROR(app.EndRow());
  }
  FF_RETURN_IF_ERROR(app.Finish());
  return table;
}

util::StatusOr<Table*> LoadRuntimeCache(const statsdb::QueryCacheStats& stats,
                                        statsdb::Database* db,
                                        const std::string& table_name) {
  FF_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({Column{"tier", DataType::kString},
                      Column{"hits", DataType::kInt64},
                      Column{"misses", DataType::kInt64},
                      Column{"bypasses", DataType::kInt64},
                      Column{"invalidations", DataType::kInt64},
                      Column{"evictions", DataType::kInt64},
                      Column{"entries", DataType::kInt64},
                      Column{"bytes", DataType::kInt64}}));
  FF_ASSIGN_OR_RETURN(Table * table,
                      FreshTable(db, table_name, std::move(schema)));
  Table::BulkAppender app(table);
  app.Reserve(2);
  app.String("plan")
      .Int64(static_cast<int64_t>(stats.plan_hits))
      .Int64(static_cast<int64_t>(stats.plan_misses))
      .Int64(static_cast<int64_t>(stats.plan_bypasses))
      .Int64(static_cast<int64_t>(stats.plan_invalidations))
      .Int64(static_cast<int64_t>(stats.plan_evictions))
      .Int64(static_cast<int64_t>(stats.plan_entries))
      .Int64(0);
  FF_RETURN_IF_ERROR(app.EndRow());
  app.String("result")
      .Int64(static_cast<int64_t>(stats.result_hits))
      .Int64(static_cast<int64_t>(stats.result_misses))
      .Int64(static_cast<int64_t>(stats.result_bypasses))
      .Int64(static_cast<int64_t>(stats.result_invalidations))
      .Int64(static_cast<int64_t>(stats.result_evictions))
      .Int64(static_cast<int64_t>(stats.result_entries))
      .Int64(static_cast<int64_t>(stats.result_bytes));
  FF_RETURN_IF_ERROR(app.EndRow());
  FF_RETURN_IF_ERROR(app.Finish());
  return table;
}

util::StatusOr<Table*> LoadRuntimeSessions(
    const std::vector<SessionRuntime>& sessions, statsdb::Database* db,
    const std::string& table_name) {
  FF_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Create({Column{"session", DataType::kInt64},
                      Column{"closed", DataType::kBool},
                      Column{"queries", DataType::kInt64},
                      Column{"errors", DataType::kInt64},
                      Column{"shed", DataType::kInt64},
                      Column{"rows_out", DataType::kInt64},
                      Column{"bytes_in", DataType::kInt64},
                      Column{"bytes_out", DataType::kInt64},
                      Column{"prepared_open", DataType::kInt64},
                      Column{"queue_wait_ms", DataType::kDouble},
                      Column{"exec_ms", DataType::kDouble},
                      Column{"serialize_ms", DataType::kDouble},
                      Column{"send_ms", DataType::kDouble}}));
  FF_ASSIGN_OR_RETURN(Table * table,
                      FreshTable(db, table_name, std::move(schema)));
  Table::BulkAppender app(table);
  app.Reserve(sessions.size());
  for (const SessionRuntime& s : sessions) {
    app.Int64(static_cast<int64_t>(s.id))
        .Bool(s.closed)
        .Int64(static_cast<int64_t>(s.queries))
        .Int64(static_cast<int64_t>(s.errors))
        .Int64(static_cast<int64_t>(s.shed))
        .Int64(static_cast<int64_t>(s.rows_out))
        .Int64(static_cast<int64_t>(s.bytes_in))
        .Int64(static_cast<int64_t>(s.bytes_out))
        .Int64(static_cast<int64_t>(s.prepared_open))
        .Double(s.queue_wait_ms)
        .Double(s.exec_ms)
        .Double(s.serialize_ms)
        .Double(s.send_ms);
    FF_RETURN_IF_ERROR(app.EndRow());
  }
  FF_RETURN_IF_ERROR(app.Finish());
  return table;
}

util::StatusOr<Table*> LoadRuntimeServer(const ServerRuntime& server,
                                         statsdb::Database* db,
                                         const std::string& table_name) {
  FF_ASSIGN_OR_RETURN(Schema schema,
                      Schema::Create({Column{"counter", DataType::kString},
                                      Column{"value", DataType::kInt64}}));
  FF_ASSIGN_OR_RETURN(Table * table,
                      FreshTable(db, table_name, std::move(schema)));
  const std::pair<const char*, uint64_t> rows[] = {
      {"accepted", server.accepted},
      {"refused_connections", server.refused_connections},
      {"shed_frames", server.shed_frames},
      {"stall_closed", server.stall_closed},
      {"overflow_closed", server.overflow_closed},
      {"idle_closed", server.idle_closed},
      {"drain_forced", server.drain_forced},
  };
  Table::BulkAppender app(table);
  app.Reserve(std::size(rows));
  for (const auto& [name, value] : rows) {
    app.String(name).Int64(static_cast<int64_t>(value));
    FF_RETURN_IF_ERROR(app.EndRow());
  }
  FF_RETURN_IF_ERROR(app.Finish());
  return table;
}

std::string PoolRuntimeSummary(const PoolRuntimeProfile& profile) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "pool: threads=%zu window=%s occupancy=%s tasks=%llu "
                "steals=%llu steal_fails=%llu global_queue_peak=%llu\n",
                profile.num_threads, FormatNsAsMs(profile.lifetime_ns).c_str(),
                Fmt("%.3f", profile.Occupancy()).c_str(),
                static_cast<unsigned long long>(profile.TotalTasks()),
                static_cast<unsigned long long>(profile.TotalSteals()),
                static_cast<unsigned long long>(profile.TotalStealFails()),
                static_cast<unsigned long long>(profile.global_queue_peak));
  out += buf;
  const RuntimeHistogram::Snapshot merged = profile.MergedTaskNs();
  std::snprintf(buf, sizeof(buf),
                "tasks: p50=%.1fus p95=%.1fus p99=%.1fus mean=%.1fus\n",
                merged.QuantileNs(0.5) / 1e3, merged.QuantileNs(0.95) / 1e3,
                merged.QuantileNs(0.99) / 1e3, merged.MeanNs() / 1e3);
  out += buf;
  for (size_t i = 0; i < profile.workers.size(); ++i) {
    const WorkerRuntimeSnapshot& w = profile.workers[i];
    std::snprintf(buf, sizeof(buf),
                  "  w%zu: tasks=%llu run=%s idle=%s parks=%llu steals=%llu "
                  "steal_fails=%llu deque_peak=%llu\n",
                  i, static_cast<unsigned long long>(w.tasks_run),
                  FormatNsAsMs(w.run_ns).c_str(),
                  FormatNsAsMs(w.idle_ns).c_str(),
                  static_cast<unsigned long long>(w.parks),
                  static_cast<unsigned long long>(w.steals),
                  static_cast<unsigned long long>(w.steal_fails),
                  static_cast<unsigned long long>(w.deque_peak));
    out += buf;
  }
  return out;
}

std::string SweepRuntimeSummary(const SweepRuntimeProfile& profile) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "sweep: wall=%.3fms replicas=%zu\n",
                profile.wall_ms, profile.replicas.size());
  out += buf;
  if (!profile.replicas.empty()) {
    double max_wait = 0.0, max_wall = 0.0, sum_wall = 0.0;
    for (const ReplicaRuntime& r : profile.replicas) {
      max_wait = std::max(max_wait, r.queue_wait_ms);
      max_wall = std::max(max_wall, r.wall_ms);
      sum_wall += r.wall_ms;
    }
    std::snprintf(buf, sizeof(buf),
                  "replicas: mean_wall=%.3fms max_wall=%.3fms "
                  "max_queue_wait=%.3fms\n",
                  sum_wall / static_cast<double>(profile.replicas.size()),
                  max_wall, max_wait);
    out += buf;
  }
  if (!profile.worker_occupancy.empty()) {
    out += "occupancy:";
    for (size_t i = 0; i < profile.worker_occupancy.size(); ++i) {
      std::snprintf(buf, sizeof(buf), " w%zu=%.3f", i,
                    profile.worker_occupancy[i]);
      out += buf;
    }
    out += '\n';
  }
  if (profile.pool.num_threads > 0) out += PoolRuntimeSummary(profile.pool);
  return out;
}

void LogRuntimeSummary(std::string_view title, const std::string& summary) {
  size_t pos = 0;
  while (pos < summary.size()) {
    size_t nl = summary.find('\n', pos);
    if (nl == std::string::npos) nl = summary.size();
    if (nl > pos) {
      FF_LOG(INFO) << title << ": " << summary.substr(pos, nl - pos);
    }
    pos = nl + 1;
  }
}

}  // namespace obs
}  // namespace ff
