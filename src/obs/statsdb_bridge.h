// Ingestion bridge: loads recorded spans, instant events and metric
// samples into statsdb tables, so the SQL layer and logdata analytics
// (SPC, timeseries) run directly over live simulation telemetry — the
// paper's crawl-the-logs-into-a-database loop (§4.3.2) with the crawl
// replaced by in-memory ingestion.
//
//   spans(span_id, parent_id, category, name, track, start_s, end_s,
//         duration_s)
//   trace_events(time_s, category, name, track)
//   metric_samples(time_s, metric, value)
//
// Example: p95 task duration per node over a campaign's telemetry:
//   SELECT track, COUNT(*) AS n, P95(duration_s) AS p95_s
//   FROM spans WHERE category = 'task' GROUP BY track ORDER BY track

#ifndef FF_OBS_STATSDB_BRIDGE_H_
#define FF_OBS_STATSDB_BRIDGE_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "statsdb/database.h"

namespace ff {
namespace obs {

/// Creates (replacing any existing table of the same name) and fills the
/// spans table; open spans load with end_s == start_s. Returns the table.
util::StatusOr<statsdb::Table*> LoadSpans(
    const TraceRecorder& trace, statsdb::Database* db,
    const std::string& table_name = "spans");

/// Instant events.
util::StatusOr<statsdb::Table*> LoadInstants(
    const TraceRecorder& trace, statsdb::Database* db,
    const std::string& table_name = "trace_events");

/// Metric sample series.
util::StatusOr<statsdb::Table*> LoadMetricSamples(
    const MetricsRegistry& metrics, statsdb::Database* db,
    const std::string& table_name = "metric_samples");

}  // namespace obs
}  // namespace ff

#endif  // FF_OBS_STATSDB_BRIDGE_H_
