// Ingestion bridge: loads recorded spans, instant events and metric
// samples into statsdb tables, so the SQL layer and logdata analytics
// (SPC, timeseries) run directly over live simulation telemetry — the
// paper's crawl-the-logs-into-a-database loop (§4.3.2) with the crawl
// replaced by in-memory ingestion.
//
//   spans(span_id, parent_id, category, name, track, start_s, end_s,
//         duration_s)
//   trace_events(time_s, category, name, track)
//   metric_samples(time_s, metric, value)
//
// Example: p95 task duration per node over a campaign's telemetry:
//   SELECT track, COUNT(*) AS n, P95(duration_s) AS p95_s
//   FROM spans WHERE category = 'task' GROUP BY track ORDER BY track

#ifndef FF_OBS_STATSDB_BRIDGE_H_
#define FF_OBS_STATSDB_BRIDGE_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "statsdb/database.h"
#include "statsdb/parallel_exec.h"

namespace ff {
namespace obs {

/// Creates (replacing any existing table of the same name) and fills the
/// spans table; open spans load with end_s == start_s. Returns the table.
util::StatusOr<statsdb::Table*> LoadSpans(
    const TraceRecorder& trace, statsdb::Database* db,
    const std::string& table_name = "spans");

/// Instant events.
util::StatusOr<statsdb::Table*> LoadInstants(
    const TraceRecorder& trace, statsdb::Database* db,
    const std::string& table_name = "trace_events");

/// Metric sample series.
util::StatusOr<statsdb::Table*> LoadMetricSamples(
    const MetricsRegistry& metrics, statsdb::Database* db,
    const std::string& table_name = "metric_samples");

/// A statsdb::MorselHook that records one span per morsel of a parallel
/// query into the calling thread's ActiveTrace() — so morsel fan-out
/// shows up in the same Chrome trace as the simulation that issued the
/// query. Track "statsdb/<op>", category kSim; spans start at the
/// recorder's current virtual time and extend by the morsel's measured
/// wall time (seconds), with morsel/first_chunk/chunks/rows/wall_ms
/// attached as span args. No-op when no recorder is installed; the
/// statsdb layer cannot link obs (obs links statsdb), which is why this
/// lives here as a factory instead of inside the executor.
///
/// Note: morsel wall times are real measurements, so installing this in
/// a SweepRunner replica makes the merged trace timing-dependent — keep
/// it out of byte-determinism comparisons.
statsdb::MorselHook TraceMorselHook();

}  // namespace obs
}  // namespace ff

#endif  // FF_OBS_STATSDB_BRIDGE_H_
