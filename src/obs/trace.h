// Virtual-time tracing: structured spans and instant events recorded while
// the simulation runs, the telemetry the paper's operators manage the
// factory by (§1, §5: run logs -> statistics database -> SPC charts ->
// re-planning). A span is an interval of *virtual* time on a named track
// (a machine, a link, a run lane); parent ids give causality (a task span
// belongs to a run span). Instants mark zero-duration decisions (plan
// accepted, node down, SPC signal).
//
// Recording is designed for the DES hot path:
//   - instrumentation sites test `obs::ActiveTrace()` — one global load +
//     branch when tracing is runtime-disabled, and a constant-folded
//     nullptr (dead code) when compiled out with FF_TRACING_DISABLED;
//   - names and tracks are interned once into a string table; hot sites
//     cache the interned ids against the recorder's identity;
//   - a span record is a few words in a flat vector, no per-span
//     allocation; one numeric arg rides inline, the rest live in cold
//     side tables.
//
// The recorder is installed per-thread with ScopedObservability: each
// sim::Simulator is single-threaded, and a parallel sweep runs one
// simulator (and one recorder) per worker thread, merging the recordings
// afterwards (obs/merge.h).

#ifndef FF_OBS_TRACE_H_
#define FF_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ff {
namespace obs {

class MetricsRegistry;

/// Span/instant categories; the Chrome-trace "cat" field.
enum class SpanCategory : uint8_t {
  kRun = 0,    // one forecast run end to end
  kTask,       // one task executing on a PsResource-backed Machine
  kTransfer,   // one transfer on a Link
  kPlan,       // planner / rescheduler / foreman decisions
  kSpc,        // statistical-process-control signals
  kSim,        // kernel-internal events (compactions etc.)
};
inline constexpr int kNumSpanCategories = 6;
const char* SpanCategoryName(SpanCategory c);

/// 1-based span handle; 0 means "no span" (tracing off or no parent).
using SpanId = uint64_t;
/// Index into a TraceRecorder's interned string table.
using StrId = uint32_t;

/// One closed or open interval of virtual time. One numeric argument can
/// ride inline in the record (arg_key == 0 means none): the hot path then
/// writes a single flat record instead of touching a second side-table
/// stream, which measurably cuts full-tracing overhead on the DES kernel.
struct SpanRecord {
  double start;
  double end;  // < 0 while the span is still open
  SpanId parent;
  StrId name;
  StrId track;
  StrId arg_key;  // 0 = no inline argument
  SpanCategory category;
  uint8_t flags;  // kSpanFlag* bits
  double arg_value;
};

/// The span ended because its job was cancelled/removed, not completed.
inline constexpr uint8_t kSpanFlagRemoved = 1;

/// One zero-duration event.
struct InstantRecord {
  double time;
  StrId name;
  StrId track;
  SpanCategory category;
};

/// Cold-path span annotations (bytes moved, plan makespan, ...).
struct NumArgRecord {
  SpanId span;
  StrId key;
  double value;
};
struct StrArgRecord {
  SpanId span;
  StrId key;
  StrId value;
};

/// Collects spans and instants in virtual time.
class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Interns `s`, returning a stable id; repeated calls are one hash probe.
  StrId Intern(std::string_view s);
  const std::string& str(StrId id) const { return strings_[id]; }

  /// Opens a span at virtual time `t`. The (name, track) overloads intern
  /// on the fly; hot paths should pre-intern and pass StrIds. A single
  /// numeric argument (pre-interned key) can be attached inline for free.
  SpanId BeginSpan(double t, SpanCategory cat, StrId name, StrId track,
                   SpanId parent = 0, StrId arg_key = 0,
                   double arg_value = 0.0) {
    spans_.push_back(SpanRecord{t, kOpen, parent, name, track, arg_key, cat,
                                0, arg_value});
    return static_cast<SpanId>(spans_.size());
  }
  SpanId BeginSpan(double t, SpanCategory cat, std::string_view name,
                   std::string_view track, SpanId parent = 0) {
    return BeginSpan(t, cat, Intern(name), Intern(track), parent);
  }

  /// Closes a span; ignored for id 0 or an already-closed span.
  void EndSpan(SpanId id, double t) {
    if (id == 0) return;
    SpanRecord& s = spans_[id - 1];
    if (s.end < 0.0) s.end = t;
  }

  /// Closes a span whose job was removed rather than run to completion;
  /// a flag bit instead of a side-table arg keeps PsResource::Remove off
  /// the cold path.
  void EndSpanRemoved(SpanId id, double t) {
    if (id == 0) return;
    SpanRecord& s = spans_[id - 1];
    if (s.end < 0.0) s.end = t;
    s.flags |= kSpanFlagRemoved;
  }

  /// Rewrites a span's parent link. Used by the sweep merge (obs/merge.cc)
  /// to remap parents onto merged ids; ignored for id 0.
  void SetParent(SpanId id, SpanId parent) {
    if (id == 0) return;
    spans_[id - 1].parent = parent;
  }

  void Instant(double t, SpanCategory cat, std::string_view name,
               std::string_view track) {
    instants_.push_back(InstantRecord{t, Intern(name), Intern(track), cat});
  }

  /// Pre-sizes span storage (page-fault hygiene for long recordings).
  void ReserveSpans(size_t n) { spans_.reserve(n); }

  /// Attaches an argument to a span (cold path).
  void SpanArg(SpanId span, std::string_view key, double value);
  void SpanArg(SpanId span, std::string_view key, std::string_view value);
  /// Hot-path variant: the key is already interned (cache the StrId
  /// alongside an epoch check, like PsResource's TraceCache does).
  void SpanArg(SpanId span, StrId key, double value);

  /// Virtual-time clock for call sites without a Simulator* at hand (RAII
  /// Span guards, planner code). Installed by whoever owns the simulation;
  /// reads 0 when unset.
  void SetClock(std::function<double()> clock) { clock_ = std::move(clock); }
  double now() const { return clock_ ? clock_() : 0.0; }

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<InstantRecord>& instants() const { return instants_; }
  const std::vector<NumArgRecord>& num_args() const { return num_args_; }
  const std::vector<StrArgRecord>& str_args() const { return str_args_; }
  size_t num_strings() const { return strings_.size(); }

  /// Number of spans in a category (open and closed).
  size_t CountSpans(SpanCategory cat) const;
  /// Number of spans never closed (diagnostics; open spans export with
  /// zero duration).
  size_t OpenSpans() const;

 private:
  static constexpr double kOpen = -1.0;

  std::vector<SpanRecord> spans_;
  std::vector<InstantRecord> instants_;
  std::vector<NumArgRecord> num_args_;
  std::vector<StrArgRecord> str_args_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, StrId> intern_;
  std::function<double()> clock_;
};

#if defined(FF_TRACING_DISABLED)
/// Compiled-out fast path: the active recorder is a constant nullptr, so
/// every `if (auto* tr = obs::ActiveTrace())` site is dead code.
constexpr TraceRecorder* ActiveTrace() { return nullptr; }
constexpr MetricsRegistry* ActiveMetrics() { return nullptr; }
constexpr uint64_t ObsEpoch() { return 0; }
#else
namespace internal {
// Thread-local, not process-global: a parallel sweep installs one
// recorder per worker thread (each campaign replica records into its
// own), and a thread-local active pointer keeps the instrumentation
// sites lock-free and race-free. Single-threaded use is unchanged —
// the main thread's slot behaves exactly like the old global.
extern thread_local TraceRecorder* g_trace;
extern thread_local MetricsRegistry* g_metrics;
extern thread_local uint64_t g_epoch;
}  // namespace internal
inline TraceRecorder* ActiveTrace() { return internal::g_trace; }
inline MetricsRegistry* ActiveMetrics() { return internal::g_metrics; }
/// Bumped on every ScopedObservability install/uninstall (per thread).
/// Hot paths cache interned ids / instrument pointers against this, not
/// the recorder address (a new recorder can reuse a freed one's address).
inline uint64_t ObsEpoch() { return internal::g_epoch; }
#endif

/// True when the trace/metrics hooks are compiled in (FF_TRACING=ON).
#if defined(FF_TRACING_DISABLED)
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

/// Installs a recorder and/or metrics registry for the enclosing scope and
/// restores the previous ones on destruction. Either may be null.
class ScopedObservability {
 public:
  ScopedObservability(TraceRecorder* trace, MetricsRegistry* metrics);
  ~ScopedObservability();

  ScopedObservability(const ScopedObservability&) = delete;
  ScopedObservability& operator=(const ScopedObservability&) = delete;

 private:
  TraceRecorder* prev_trace_;
  MetricsRegistry* prev_metrics_;
};

/// RAII span over the active recorder's clock, for synchronous sections
/// (planner decisions). No-op when tracing is off.
class Span {
 public:
  Span(SpanCategory cat, std::string_view name, std::string_view track,
       SpanId parent = 0);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  SpanId id() const { return id_; }
  void Arg(std::string_view key, double value);
  void Arg(std::string_view key, std::string_view value);

 private:
  SpanId id_ = 0;
};

}  // namespace obs
}  // namespace ff

#endif  // FF_OBS_TRACE_H_
