// Exporters for wall-clock runtime profiles (obs/runtime_stats.h),
// reusing the virtual-time observability machinery: runtime spans ride
// a TraceRecorder whose "time" is wall-clock seconds and export as a
// SEPARATE Chrome-trace process (ChromeTraceOptions::runtime_trace, pid
// 2) so Perfetto shows sim-time and run-time side by side without ever
// mixing the clock domains; profiles load into a `runtime_*` statsdb
// table family for SQL; and plain-text summaries serve benches, routed
// through util logging's SetLogSink hook rather than raw stderr.
//
// Everything here is a cold-path exporter — the hot-path counters live
// in ff_runtime_stats (which ff_parallel_core and ff_statsdb link);
// this header needs the full obs + statsdb stack and so lives in ff_obs.

#ifndef FF_OBS_PROFILER_H_
#define FF_OBS_PROFILER_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/runtime_stats.h"
#include "obs/trace.h"
#include "statsdb/cache.h"
#include "statsdb/database.h"
#include "util/status.h"

namespace ff {
namespace obs {

/// Renders a sweep's runtime profile as trace spans: one span per
/// replica on its worker's lane ("w<idx>", "inline" for serial), span
/// time = wall-clock seconds from the sweep start, with queue_wait_ms /
/// wall_ms span args. Feed the result to WriteChromeTrace via
/// ChromeTraceOptions::runtime_trace for the dual-process Perfetto view.
void FillSweepRuntimeTrace(const SweepRuntimeProfile& profile,
                           TraceRecorder* trace);

/// runtime_workers(worker, tasks, run_ms, idle_ms, parks, steals,
///                 steal_fails, deque_peak, task_p50_us, task_p95_us)
util::StatusOr<statsdb::Table*> LoadRuntimeWorkers(
    const PoolRuntimeProfile& profile, statsdb::Database* db,
    const std::string& table_name = "runtime_workers");

/// runtime_operators(op_id, parent_id, depth, name, rows, batches,
///                   time_ms, self_ms, chunks_scanned, chunks_pruned,
///                   morsels, merge_ms) — pre-order walk of the profile
/// tree, op_id 1 = root, parent_id 0 = none.
util::StatusOr<statsdb::Table*> LoadRuntimeOperators(
    const QueryProfile& profile, statsdb::Database* db,
    const std::string& table_name = "runtime_operators");

/// runtime_replicas(replica, worker, queue_wait_ms, wall_ms);
/// worker == -1 for replicas run inline (no pool).
util::StatusOr<statsdb::Table*> LoadRuntimeReplicas(
    const SweepRuntimeProfile& profile, statsdb::Database* db,
    const std::string& table_name = "runtime_replicas");

/// runtime_cache(tier, hits, misses, bypasses, invalidations, evictions,
///               entries, bytes) — one row per cache tier ("plan",
/// "result"); bytes is 0 for the plan tier (plans are shared, not
/// copied). Snapshot typically via db->cache().Stats(); self-observing
/// loads (exporting a database's cache stats into that same database)
/// are fine — the snapshot is taken before the target table is touched.
util::StatusOr<statsdb::Table*> LoadRuntimeCache(
    const statsdb::QueryCacheStats& stats, statsdb::Database* db,
    const std::string& table_name = "runtime_cache");

/// One served-client session's counters, as exported by the statsdb
/// server (net/server.h converts its atomics into this plain struct —
/// ff_obs stays below ff_net in the layering, so the exporter takes
/// data, not the server type).
struct SessionRuntime {
  uint64_t id = 0;
  bool closed = false;
  uint64_t queries = 0;
  uint64_t errors = 0;
  uint64_t shed = 0;
  uint64_t rows_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t prepared_open = 0;
  double queue_wait_ms = 0.0;
  double exec_ms = 0.0;
  double serialize_ms = 0.0;
  double send_ms = 0.0;
};

/// runtime_sessions(session, closed, queries, errors, shed, rows_out,
///                  bytes_in, bytes_out, prepared_open, queue_wait_ms,
///                  exec_ms, serialize_ms, send_ms) — one row per
/// session ever accepted, alongside runtime_cache for the served
/// database's dashboard. `shed` counts frames refused by admission
/// control (answered kUnavailable without executing).
util::StatusOr<statsdb::Table*> LoadRuntimeSessions(
    const std::vector<SessionRuntime>& sessions, statsdb::Database* db,
    const std::string& table_name = "runtime_sessions");

/// Server-wide robustness counters (net/server.h overload-control
/// limits), mirrored as plain data for the same layering reason as
/// SessionRuntime.
struct ServerRuntime {
  uint64_t accepted = 0;             // connections admitted
  uint64_t refused_connections = 0;  // over max_connections
  uint64_t shed_frames = 0;          // admission budget exceeded
  uint64_t stall_closed = 0;         // write_stall_timeout expirations
  uint64_t overflow_closed = 0;      // outbound-buffer cap closes
  uint64_t idle_closed = 0;          // idle read-timeout closes
  uint64_t drain_forced = 0;         // Stop() drain deadline hit
};

/// runtime_server(counter, value) — one row per ServerRuntime field, so
/// a dashboard (or the chaos bench) can read the server's own overload
/// ledger over the wire after a kRefreshStats.
util::StatusOr<statsdb::Table*> LoadRuntimeServer(
    const ServerRuntime& server, statsdb::Database* db,
    const std::string& table_name = "runtime_server");

/// Multi-line human-readable pool summary: occupancy, per-worker
/// run/idle/steal split, task-latency quantiles, queue peaks.
std::string PoolRuntimeSummary(const PoolRuntimeProfile& profile);

/// Sweep summary: wall time, per-worker occupancy, replica queue-wait
/// and wall-time extremes, plus the pool summary for the sweep window.
std::string SweepRuntimeSummary(const SweepRuntimeProfile& profile);

/// Emits a (possibly multi-line) summary through util logging at INFO —
/// one FF_LOG line per text line, "title: line" — so embedders capture
/// profiler output via SetLogSink instead of scraping stderr. Remember
/// the default min level is kWarning; call SetMinLogLevel(kInfo) to see
/// these on stderr.
void LogRuntimeSummary(std::string_view title, const std::string& summary);

}  // namespace obs
}  // namespace ff

#endif  // FF_OBS_PROFILER_H_
