// Cluster: the forecast factory's physical plant — a set of named compute
// nodes, a public server, and per-node uplinks to the server (the paper's
// "two compute nodes connected by a local area network" scaled up to the
// production 6-node plant).

#ifndef FF_CLUSTER_CLUSTER_H_
#define FF_CLUSTER_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/link.h"
#include "cluster/machine.h"
#include "util/statusor.h"

namespace ff {
namespace cluster {

/// Static description of a node to add to the cluster.
struct NodeSpec {
  std::string name;
  int num_cpus = 2;
  double speed = 1.0;             // relative CPU speed
  double ram_bytes = 1.0e9;       // 1 GB, matching the paper's testbed
  double uplink_bps = 12.5e6;     // ~100 Mb/s LAN by default
};

/// The plant: compute nodes + one public server.
class Cluster {
 public:
  /// `server_cpus`/`server_speed` describe the public server, which in
  /// Architecture 2 also generates data products.
  Cluster(sim::Simulator* sim, int server_cpus = 2,
          double server_speed = 1.0, double server_ram_bytes = 1.0e9);

  /// Adds a compute node with a dedicated uplink to the server.
  /// AlreadyExists if the name is taken.
  util::Status AddNode(const NodeSpec& spec);

  /// Node accessors (NotFound for unknown names).
  util::StatusOr<Machine*> node(const std::string& name);
  util::StatusOr<Link*> uplink(const std::string& name);

  /// The public server machine (always present).
  Machine* server() { return server_.get(); }

  /// Names of all compute nodes, in insertion order.
  std::vector<std::string> NodeNames() const;
  size_t num_nodes() const { return order_.size(); }

  /// Marks a node (and its uplink) down/up.
  util::Status SetNodeUp(const std::string& name, bool up);

  sim::Simulator* simulator() { return sim_; }

 private:
  struct NodeEntry {
    std::unique_ptr<Machine> machine;
    std::unique_ptr<Link> uplink;
  };

  sim::Simulator* sim_;
  std::unique_ptr<Machine> server_;
  std::map<std::string, NodeEntry> nodes_;
  std::vector<std::string> order_;
};

}  // namespace cluster
}  // namespace ff

#endif  // FF_CLUSTER_CLUSTER_H_
