// Link: a bandwidth-limited network path (e.g. compute node -> public
// server over the lab LAN). Concurrent transfers share bandwidth fairly,
// which matches rsync streams multiplexed on one path.

#ifndef FF_CLUSTER_LINK_H_
#define FF_CLUSTER_LINK_H_

#include <functional>
#include <string>
#include <string_view>

#include "cluster/ps_resource.h"
#include "obs/metrics.h"

namespace ff {
namespace cluster {

/// Identifier of an in-flight transfer.
using TransferId = JobId;

/// A shared network path with fixed capacity in bytes/second.
class Link {
 public:
  Link(sim::Simulator* sim, std::string name, double bytes_per_second);

  /// Starts transferring `bytes`; `on_done` fires when the last byte lands.
  /// With a recorder active the transfer gets a kTransfer span on this
  /// link's track (`label` names it, `parent` ties it to the owning run),
  /// and the "link.transfer_bytes" counter advances by `bytes`.
  TransferId StartTransfer(double bytes, std::function<void()> on_done,
                           std::string_view label = {},
                           obs::SpanId parent = 0);

  /// Span of an in-flight transfer (0 when untraced).
  obs::SpanId TransferSpan(TransferId id) const { return res_.span_of(id); }

  /// Aborts a transfer; returns bytes still unsent.
  util::StatusOr<double> CancelTransfer(TransferId id);

  /// Failure injection. Contract (stall, no loss): while the link is down
  /// every in-flight transfer keeps its delivered-byte progress but makes
  /// none — its completion event is withheld, not cancelled. SetUp(true)
  /// resumes each transfer from exactly the bytes it had delivered when
  /// the outage began; no byte is re-sent and none is counted twice in
  /// total_bytes_transferred(). A transfer straddling an outage therefore
  /// completes after exactly `bytes / effective_rate` seconds of *up*
  /// time, regardless of how many outages interrupt it
  /// (tests/cluster/cluster_test.cc: TransferStraddlingOutage...). New
  /// transfers may start while down; they queue at zero progress.
  void SetUp(bool up);
  bool up() const { return up_; }

  /// Bandwidth degradation in (0, 1]: the link stays up but delivers
  /// `factor` of its nominal rate (flaky rsync links, half-duplex
  /// fallback). Orthogonal to SetUp — an outage during a degraded period
  /// resumes degraded. 1.0 restores the full rate.
  void SetDegrade(double factor);
  double degrade() const { return degrade_; }

  const std::string& name() const { return res_.name(); }
  double bytes_per_second() const { return bps_; }
  size_t active_transfers() const { return res_.active_jobs(); }
  double total_bytes_transferred() const { return res_.total_delivered(); }

  /// Remaining bytes of an in-flight transfer (NotFound once delivered).
  util::StatusOr<double> RemainingBytes(TransferId id) const {
    return res_.RemainingWork(id);
  }

 private:
  void ApplySpeed();

  PsResource res_;
  obs::CachedCounter bytes_counter_;
  double bps_;
  double degrade_ = 1.0;
  bool up_ = true;
};

}  // namespace cluster
}  // namespace ff

#endif  // FF_CLUSTER_LINK_H_
