// Egalitarian processor-sharing resource — the execution model the paper's
// ForeMan assumes ("if three forecasts run concurrently on a node with two
// CPUs ... each forecast gets 2/3 of the available CPU cycles").
//
// A PsResource has a capacity (CPUs for machines, bytes/s for links) and a
// per-job rate cap (1 CPU for serial forecast codes; the full bandwidth for
// transfers). K active jobs each progress at
//     rate = speed_factor * min(max_per_job, capacity / K).
// Completion events are recomputed whenever membership or speed changes.
//
// Internally the resource uses a *virtual-time* formulation: because the
// sharing is egalitarian, every resident job receives service at the same
// instantaneous rate, so a single accumulator V(t) — cumulative per-job
// service since the last idle period — advances for all of them at once. A
// job admitted with work `w` when the accumulator reads `v0` completes at
// the fixed virtual credit `v0 + w`; its remaining work at any later
// instant is `credit - V(t)`. Membership and speed changes only alter how
// fast V advances, never the credits, so the completion order is a static
// min-heap over credits with lazy deletion for removed jobs. This makes
// Advance O(1) and Add/Remove/completion O(log K) — versus the former
// O(K) sweep per event — and eliminates the per-job floating-point drift
// of repeatedly subtracting `rate * dt` from each job. V rebases to zero
// whenever the resource drains, bounding accumulator growth.

#ifndef FF_CLUSTER_PS_RESOURCE_H_
#define FF_CLUSTER_PS_RESOURCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/statusor.h"

namespace ff {
namespace cluster {

/// Identifier of a job admitted to a PsResource.
using JobId = uint64_t;

/// Processor-sharing resource on a discrete-event simulator.
class PsResource {
 public:
  /// `capacity` — total service rate available (e.g. number of CPUs);
  /// `max_per_job` — cap on a single job's service rate (e.g. 1.0 CPU).
  PsResource(sim::Simulator* sim, std::string name, double capacity,
             double max_per_job);

  PsResource(const PsResource&) = delete;
  PsResource& operator=(const PsResource&) = delete;

  /// Admits a job with `work` units of demand (capacity-units × seconds;
  /// CPU-seconds for machines, bytes for links). `on_done` fires exactly
  /// once, at the simulated completion instant. Zero/negative work
  /// completes at the current time (event still dispatched via the queue).
  JobId Add(double work, std::function<void()> on_done) {
    return AddTraced(work, std::move(on_done), {}, 0);
  }

  /// Add plus an observability span covering the job's residency, on this
  /// resource's track, named `label` (the category's name when empty) and
  /// parented under `parent`. When no recorder is active this is exactly
  /// Add.
  JobId AddTraced(double work, std::function<void()> on_done,
                  std::string_view label, obs::SpanId parent);

  /// Removes a job before completion; returns its remaining work.
  /// NotFound if the job is unknown or already completed.
  util::StatusOr<double> Remove(JobId id);

  /// Scales all service (0 = down / failed). Takes effect immediately.
  void SetSpeedFactor(double factor);
  double speed_factor() const { return speed_factor_; }

  /// Additional multiplicative slowdown in (0,1], orthogonal to the speed
  /// factor — used by Machine to model memory thrashing when the working
  /// sets of concurrent tasks exceed RAM.
  void SetCongestionFactor(double factor);
  double congestion_factor() const { return congestion_; }

  /// Remaining work of an active job (advanced to the current instant).
  util::StatusOr<double> RemainingWork(JobId id) const;

  size_t active_jobs() const { return jobs_.size(); }
  double capacity() const { return capacity_; }
  double max_per_job() const { return max_per_job_; }
  const std::string& name() const { return name_; }

  /// Per-job service rate right now (0 when idle or down).
  double CurrentRatePerJob() const;

  /// Span category for jobs on this resource (kTask for machines,
  /// kTransfer for links). Default kTask.
  void set_trace_category(obs::SpanCategory cat) { trace_category_ = cat; }

  /// Span of an active job (0 when untraced or unknown).
  obs::SpanId span_of(JobId id) const;

  /// Total work units delivered so far (for utilization accounting).
  double total_delivered() const;

  /// Integral of busy capacity over time so far; divide by
  /// (capacity * elapsed) for average utilization.
  double busy_capacity_integral() const;

 private:
  struct Job {
    double finish_credit;  // virtual time at which the job completes
    std::function<void()> on_done;
    obs::SpanId span = 0;  // open while the job is resident; 0 = untraced
  };
  struct HeapEntry {
    double credit;
    JobId id;
  };
  // Min-heap on (credit, id) under std::push_heap's max-heap convention.
  struct CreditLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.credit != b.credit) return a.credit > b.credit;
      return a.id > b.id;
    }
  };

  // Advances the virtual-time accumulator (and the delivered-work
  // integrals) to sim_->now(). O(1).
  void Advance();
  // Cancels and reschedules the next-completion event; rebases the
  // accumulator when the resource has drained.
  void Reschedule();
  // Fires completions due at the current instant.
  void OnCompletionEvent();
  // Pops heap entries whose jobs were removed (lazy deletion).
  void PruneHeapTop();
  // Rebuilds the heap without stale entries once they outnumber live jobs.
  void MaybeCompactHeap();
  // Per-job virtual service extrapolated to sim_->now() without mutating.
  double VirtualTimeNow() const;

  // Interned ids for this resource's track, resolved once per
  // observability install (epoch compare per traced Add).
  struct TraceCache {
    uint64_t epoch = 0;
    obs::StrId track = 0;
    obs::StrId default_name = 0;
    obs::StrId work_key = 0;
  };

  sim::Simulator* sim_;
  std::string name_;
  double capacity_;
  double max_per_job_;
  obs::SpanCategory trace_category_ = obs::SpanCategory::kTask;
  TraceCache trace_;
  double speed_factor_ = 1.0;
  double congestion_ = 1.0;
  std::map<JobId, Job> jobs_;
  std::vector<HeapEntry> heap_;
  size_t stale_entries_ = 0;
  double virtual_time_ = 0.0;
  JobId next_id_ = 1;
  sim::Time last_update_;
  sim::EventHandle pending_;
  double total_delivered_ = 0.0;
  double busy_integral_ = 0.0;

  static constexpr double kWorkEpsilon = 1e-9;
  // Jobs whose residual service time falls below this are complete (their
  // completion delay is unrepresentable in double virtual time).
  static constexpr double kTimeEpsilon = 1e-6;
};

}  // namespace cluster
}  // namespace ff

#endif  // FF_CLUSTER_PS_RESOURCE_H_
