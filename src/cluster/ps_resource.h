// Egalitarian processor-sharing resource — the execution model the paper's
// ForeMan assumes ("if three forecasts run concurrently on a node with two
// CPUs ... each forecast gets 2/3 of the available CPU cycles").
//
// A PsResource has a capacity (CPUs for machines, bytes/s for links) and a
// per-job rate cap (1 CPU for serial forecast codes; the full bandwidth for
// transfers). K active jobs each progress at
//     rate = speed_factor * min(max_per_job, capacity / K).
// Completion events are recomputed whenever membership or speed changes.

#ifndef FF_CLUSTER_PS_RESOURCE_H_
#define FF_CLUSTER_PS_RESOURCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/simulator.h"
#include "util/statusor.h"

namespace ff {
namespace cluster {

/// Identifier of a job admitted to a PsResource.
using JobId = uint64_t;

/// Processor-sharing resource on a discrete-event simulator.
class PsResource {
 public:
  /// `capacity` — total service rate available (e.g. number of CPUs);
  /// `max_per_job` — cap on a single job's service rate (e.g. 1.0 CPU).
  PsResource(sim::Simulator* sim, std::string name, double capacity,
             double max_per_job);

  PsResource(const PsResource&) = delete;
  PsResource& operator=(const PsResource&) = delete;

  /// Admits a job with `work` units of demand (capacity-units × seconds;
  /// CPU-seconds for machines, bytes for links). `on_done` fires exactly
  /// once, at the simulated completion instant. Zero/negative work
  /// completes at the current time (event still dispatched via the queue).
  JobId Add(double work, std::function<void()> on_done);

  /// Removes a job before completion; returns its remaining work.
  /// NotFound if the job is unknown or already completed.
  util::StatusOr<double> Remove(JobId id);

  /// Scales all service (0 = down / failed). Takes effect immediately.
  void SetSpeedFactor(double factor);
  double speed_factor() const { return speed_factor_; }

  /// Additional multiplicative slowdown in (0,1], orthogonal to the speed
  /// factor — used by Machine to model memory thrashing when the working
  /// sets of concurrent tasks exceed RAM.
  void SetCongestionFactor(double factor);
  double congestion_factor() const { return congestion_; }

  /// Remaining work of an active job (advanced to the current instant).
  util::StatusOr<double> RemainingWork(JobId id) const;

  size_t active_jobs() const { return jobs_.size(); }
  double capacity() const { return capacity_; }
  double max_per_job() const { return max_per_job_; }
  const std::string& name() const { return name_; }

  /// Per-job service rate right now (0 when idle or down).
  double CurrentRatePerJob() const;

  /// Total work units delivered so far (for utilization accounting).
  double total_delivered() const;

  /// Integral of busy capacity over time so far; divide by
  /// (capacity * elapsed) for average utilization.
  double busy_capacity_integral() const;

 private:
  struct Job {
    double remaining;
    std::function<void()> on_done;
  };

  // Advances all jobs' remaining work to sim_->now().
  void Advance();
  // Cancels and reschedules the next-completion event.
  void Reschedule();
  // Fires completions due at the current instant.
  void OnCompletionEvent();

  sim::Simulator* sim_;
  std::string name_;
  double capacity_;
  double max_per_job_;
  double speed_factor_ = 1.0;
  double congestion_ = 1.0;
  std::map<JobId, Job> jobs_;
  JobId next_id_ = 1;
  sim::Time last_update_;
  sim::EventHandle pending_;
  double total_delivered_ = 0.0;
  double busy_integral_ = 0.0;

  static constexpr double kWorkEpsilon = 1e-9;
  // Jobs whose residual service time falls below this are complete (their
  // completion delay is unrepresentable in double virtual time).
  static constexpr double kTimeEpsilon = 1e-6;
};

}  // namespace cluster
}  // namespace ff

#endif  // FF_CLUSTER_PS_RESOURCE_H_
