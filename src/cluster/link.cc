#include "cluster/link.h"

#include "util/logging.h"

namespace ff {
namespace cluster {

Link::Link(sim::Simulator* sim, std::string name, double bytes_per_second)
    : res_(sim, std::move(name), bytes_per_second,
           /*max_per_job=*/bytes_per_second),
      bps_(bytes_per_second) {
  FF_CHECK(bytes_per_second > 0.0) << "link bandwidth must be positive";
}

TransferId Link::StartTransfer(double bytes,
                               std::function<void()> on_done) {
  return res_.Add(bytes, std::move(on_done));
}

util::StatusOr<double> Link::CancelTransfer(TransferId id) {
  return res_.Remove(id);
}

void Link::SetUp(bool up) {
  up_ = up;
  res_.SetSpeedFactor(up ? 1.0 : 0.0);
}

}  // namespace cluster
}  // namespace ff
