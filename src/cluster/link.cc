#include "cluster/link.h"

#include "util/logging.h"

namespace ff {
namespace cluster {

Link::Link(sim::Simulator* sim, std::string name, double bytes_per_second)
    : res_(sim, std::move(name), bytes_per_second,
           /*max_per_job=*/bytes_per_second),
      bps_(bytes_per_second) {
  FF_CHECK(bytes_per_second > 0.0) << "link bandwidth must be positive";
  res_.set_trace_category(obs::SpanCategory::kTransfer);
}

TransferId Link::StartTransfer(double bytes, std::function<void()> on_done,
                               std::string_view label, obs::SpanId parent) {
  if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
    bytes_counter_.Get(m, "link.transfer_bytes")
        ->Add(static_cast<uint64_t>(bytes > 0.0 ? bytes : 0.0));
  }
  return res_.AddTraced(bytes, std::move(on_done), label, parent);
}

util::StatusOr<double> Link::CancelTransfer(TransferId id) {
  return res_.Remove(id);
}

void Link::ApplySpeed() {
  // The PS resource's speed factor is the single source of truth for
  // progress; down always wins, and recovery restores the degraded rate
  // rather than blindly the nominal one (the pre-degradation bug was
  // SetUp(true) resetting the factor to 1.0).
  res_.SetSpeedFactor(up_ ? degrade_ : 0.0);
}

void Link::SetUp(bool up) {
  up_ = up;
  ApplySpeed();
}

void Link::SetDegrade(double factor) {
  FF_CHECK(factor > 0.0 && factor <= 1.0)
      << name() << ": degrade factor must be in (0,1], got " << factor;
  degrade_ = factor;
  ApplySpeed();
}

}  // namespace cluster
}  // namespace ff
