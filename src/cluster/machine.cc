#include "cluster/machine.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"

namespace ff {
namespace cluster {

Machine::Machine(sim::Simulator* sim, std::string name, int num_cpus,
                 double speed, double ram_bytes)
    : sim_(sim),
      res_(sim, std::move(name), static_cast<double>(num_cpus),
           /*max_per_job=*/1.0),
      num_cpus_(num_cpus),
      speed_(speed),
      ram_bytes_(ram_bytes) {
  FF_CHECK(num_cpus >= 1) << "machine needs at least one CPU";
  FF_CHECK(speed > 0.0) << "machine speed must be positive";
  FF_CHECK(ram_bytes > 0.0) << "machine RAM must be positive";
  res_.SetSpeedFactor(speed);
}

void Machine::UpdateCongestion() {
  double factor = 1.0;
  if (resident_bytes_ > ram_bytes_) {
    factor = ram_bytes_ / resident_bytes_;
  }
  res_.SetCongestionFactor(factor);
}

TaskId Machine::StartTask(double cpu_seconds, std::function<void()> on_done,
                          double mem_bytes, std::string_view label,
                          obs::SpanId parent) {
  FF_CHECK(mem_bytes >= 0.0) << "negative task memory";
  // Completion fires through the event queue, strictly after Add returns,
  // so the id holder is always populated by the time the wrapper runs.
  auto id_holder = std::make_shared<TaskId>(0);
  resident_bytes_ += mem_bytes;
  TaskId id = res_.AddTraced(
      cpu_seconds,
      [this, id_holder, cb = std::move(on_done)]() {
        auto it = task_mem_.find(*id_holder);
        if (it != task_mem_.end()) {
          resident_bytes_ -= it->second;
          task_mem_.erase(it);
          UpdateCongestion();
        }
        if (cb) cb();
      },
      label, parent);
  *id_holder = id;
  task_mem_[id] = mem_bytes;
  UpdateCongestion();
  return id;
}

util::StatusOr<double> Machine::RemoveTask(TaskId id) {
  FF_ASSIGN_OR_RETURN(double remaining, res_.Remove(id));
  auto it = task_mem_.find(id);
  if (it != task_mem_.end()) {
    resident_bytes_ -= it->second;
    task_mem_.erase(it);
    UpdateCongestion();
  }
  return remaining;
}

void Machine::SetUp(bool up) {
  up_ = up;
  res_.SetSpeedFactor(up ? speed_ : 0.0);
}

double Machine::AverageUtilization(sim::Time t0) const {
  double elapsed = sim_->now() - t0;
  if (elapsed <= 0.0) return 0.0;
  // busy_capacity_integral counts reference-speed work; normalize by the
  // machine's own deliverable capacity.
  double deliverable = speed_ * static_cast<double>(num_cpus_) * elapsed;
  double utilization = res_.busy_capacity_integral() / deliverable;
  // A value above 1 (beyond accumulated rounding) means the capacity
  // accounting delivered more work than the machine can physically serve —
  // a kernel bug that the former std::min(1.0, ...) clamp silently hid.
  FF_DCHECK(utilization <= 1.0 + kUtilizationSlack)
      << name() << ": utilization " << utilization
      << " exceeds deliverable capacity (integral="
      << res_.busy_capacity_integral() << " deliverable=" << deliverable
      << ")";
  return utilization;
}

}  // namespace cluster
}  // namespace ff
