#include "cluster/ps_resource.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace ff {
namespace cluster {

PsResource::PsResource(sim::Simulator* sim, std::string name,
                       double capacity, double max_per_job)
    : sim_(sim),
      name_(std::move(name)),
      capacity_(capacity),
      max_per_job_(max_per_job),
      last_update_(sim->now()) {
  FF_CHECK(capacity > 0.0) << name_ << ": capacity must be positive";
  FF_CHECK(max_per_job > 0.0) << name_ << ": max_per_job must be positive";
}

double PsResource::CurrentRatePerJob() const {
  if (jobs_.empty() || speed_factor_ <= 0.0 || congestion_ <= 0.0) {
    return 0.0;
  }
  double share = capacity_ / static_cast<double>(jobs_.size());
  return speed_factor_ * congestion_ * std::min(max_per_job_, share);
}

double PsResource::VirtualTimeNow() const {
  double dt = sim_->now() - last_update_;
  return virtual_time_ + CurrentRatePerJob() * dt;
}

void PsResource::Advance() {
  sim::Time now = sim_->now();
  double dt = now - last_update_;
  if (dt > 0.0) {
    double rate = CurrentRatePerJob();
    if (rate > 0.0) {
      double delivered = rate * static_cast<double>(jobs_.size()) * dt;
      virtual_time_ += rate * dt;
      total_delivered_ += delivered;
      busy_integral_ += delivered;
    }
  }
  last_update_ = now;
}

void PsResource::PruneHeapTop() {
  while (!heap_.empty() && jobs_.find(heap_.front().id) == jobs_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), CreditLater{});
    heap_.pop_back();
    --stale_entries_;
  }
}

void PsResource::MaybeCompactHeap() {
  if (stale_entries_ * 2 <= heap_.size()) return;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapEntry& e) {
                               return jobs_.find(e.id) == jobs_.end();
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), CreditLater{});
  stale_entries_ = 0;
}

void PsResource::Reschedule() {
  if (pending_.pending()) sim_->Cancel(pending_);
  if (jobs_.empty()) {
    // Idle: rebase the accumulator so credits never grow without bound
    // over a long simulation (precision hygiene).
    heap_.clear();
    stale_entries_ = 0;
    virtual_time_ = 0.0;
    return;
  }
  double rate = CurrentRatePerJob();
  if (rate <= 0.0) return;
  PruneHeapTop();
  FF_DCHECK(!heap_.empty()) << name_ << ": live jobs missing from heap";
  double min_remaining = heap_.front().credit - virtual_time_;
  double delay = std::max(0.0, min_remaining) / rate;
  pending_ = sim_->ScheduleAfter(delay, [this] { OnCompletionEvent(); });
}

void PsResource::OnCompletionEvent() {
  Advance();
  // Collect everything that is done at this instant. The threshold scales
  // with the service rate: below it, the residual work would complete in
  // less simulated time than a double can resolve, and leaving the job
  // active would re-fire this event at an identical timestamp forever.
  double threshold =
      std::max(kWorkEpsilon, CurrentRatePerJob() * kTimeEpsilon);
  std::vector<std::pair<JobId, std::function<void()>>> done;
  while (!heap_.empty()) {
    auto it = jobs_.find(heap_.front().id);
    if (it == jobs_.end()) {  // removed earlier; lazy deletion
      std::pop_heap(heap_.begin(), heap_.end(), CreditLater{});
      heap_.pop_back();
      --stale_entries_;
      continue;
    }
    if (heap_.front().credit - virtual_time_ > threshold) break;
    if (it->second.span != 0) {
      if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
        tr->EndSpan(it->second.span, sim_->now());
      }
    }
    done.emplace_back(it->first, std::move(it->second.on_done));
    jobs_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), CreditLater{});
    heap_.pop_back();
  }
  // Fire in ascending job id, matching the historical completion order for
  // jobs finishing at the same instant (the map sweep this replaces).
  std::sort(done.begin(), done.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Reschedule();
  for (auto& [id, fn] : done) {
    if (fn) fn();
  }
}

JobId PsResource::AddTraced(double work, std::function<void()> on_done,
                            std::string_view label, obs::SpanId parent) {
  Advance();
  JobId id = next_id_++;
  double credit = virtual_time_ + std::max(work, 0.0);
  obs::SpanId span = 0;
  if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
    uint64_t e = obs::ObsEpoch();
    if (e != trace_.epoch) {
      trace_.epoch = e;
      trace_.track = tr->Intern(name_);
      trace_.default_name = tr->Intern(obs::SpanCategoryName(trace_category_));
      trace_.work_key = tr->Intern("work");
    }
    obs::StrId span_name =
        label.empty() ? trace_.default_name : tr->Intern(label);
    span = tr->BeginSpan(sim_->now(), trace_category_, span_name,
                         trace_.track, parent, trace_.work_key, work);
  }
  jobs_.emplace(id, Job{credit, std::move(on_done), span});
  heap_.push_back(HeapEntry{credit, id});
  std::push_heap(heap_.begin(), heap_.end(), CreditLater{});
  Reschedule();
  return id;
}

util::StatusOr<double> PsResource::Remove(JobId id) {
  Advance();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return util::Status::NotFound(name_ + ": job " + std::to_string(id));
  }
  double remaining = std::max(0.0, it->second.finish_credit - virtual_time_);
  if (it->second.span != 0) {
    if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
      tr->EndSpanRemoved(it->second.span, sim_->now());
    }
  }
  jobs_.erase(it);
  ++stale_entries_;
  MaybeCompactHeap();
  Reschedule();
  return remaining;
}

void PsResource::SetSpeedFactor(double factor) {
  FF_CHECK(factor >= 0.0) << name_ << ": negative speed factor";
  Advance();
  speed_factor_ = factor;
  Reschedule();
}

void PsResource::SetCongestionFactor(double factor) {
  FF_CHECK(factor > 0.0 && factor <= 1.0)
      << name_ << ": congestion factor must be in (0,1], got " << factor;
  Advance();
  congestion_ = factor;
  Reschedule();
}

obs::SpanId PsResource::span_of(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? 0 : it->second.span;
}

util::StatusOr<double> PsResource::RemainingWork(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return util::Status::NotFound(name_ + ": job " + std::to_string(id));
  }
  // Account for progress since last_update_ without mutating state.
  return std::max(0.0, it->second.finish_credit - VirtualTimeNow());
}

double PsResource::total_delivered() const {
  double dt = sim_->now() - last_update_;
  double rate = CurrentRatePerJob();
  return total_delivered_ + rate * static_cast<double>(jobs_.size()) * dt;
}

double PsResource::busy_capacity_integral() const {
  double dt = sim_->now() - last_update_;
  double rate = CurrentRatePerJob();
  return busy_integral_ + rate * static_cast<double>(jobs_.size()) * dt;
}

}  // namespace cluster
}  // namespace ff
