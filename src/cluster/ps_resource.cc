#include "cluster/ps_resource.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/logging.h"

namespace ff {
namespace cluster {

PsResource::PsResource(sim::Simulator* sim, std::string name,
                       double capacity, double max_per_job)
    : sim_(sim),
      name_(std::move(name)),
      capacity_(capacity),
      max_per_job_(max_per_job),
      last_update_(sim->now()) {
  FF_CHECK(capacity > 0.0) << name_ << ": capacity must be positive";
  FF_CHECK(max_per_job > 0.0) << name_ << ": max_per_job must be positive";
}

double PsResource::CurrentRatePerJob() const {
  if (jobs_.empty() || speed_factor_ <= 0.0 || congestion_ <= 0.0) {
    return 0.0;
  }
  double share = capacity_ / static_cast<double>(jobs_.size());
  return speed_factor_ * congestion_ * std::min(max_per_job_, share);
}

void PsResource::Advance() {
  sim::Time now = sim_->now();
  double dt = now - last_update_;
  if (dt > 0.0) {
    double rate = CurrentRatePerJob();
    if (rate > 0.0) {
      for (auto& [id, job] : jobs_) {
        job.remaining -= rate * dt;
        total_delivered_ += rate * dt;
      }
      busy_integral_ += rate * static_cast<double>(jobs_.size()) * dt;
    }
  }
  last_update_ = now;
}

void PsResource::Reschedule() {
  if (pending_.pending()) sim_->Cancel(pending_);
  double rate = CurrentRatePerJob();
  if (jobs_.empty() || rate <= 0.0) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, job] : jobs_) {
    min_remaining = std::min(min_remaining, job.remaining);
  }
  double delay = std::max(0.0, min_remaining) / rate;
  pending_ = sim_->ScheduleAfter(delay, [this] { OnCompletionEvent(); });
}

void PsResource::OnCompletionEvent() {
  Advance();
  // Collect everything that is done at this instant. The threshold scales
  // with the service rate: below it, the residual work would complete in
  // less simulated time than a double can resolve, and leaving the job
  // active would re-fire this event at an identical timestamp forever.
  double threshold =
      std::max(kWorkEpsilon, CurrentRatePerJob() * kTimeEpsilon);
  std::vector<std::function<void()>> done;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining <= threshold) {
      done.push_back(std::move(it->second.on_done));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  Reschedule();
  for (auto& fn : done) {
    if (fn) fn();
  }
}

JobId PsResource::Add(double work, std::function<void()> on_done) {
  Advance();
  JobId id = next_id_++;
  jobs_.emplace(id, Job{std::max(work, 0.0), std::move(on_done)});
  Reschedule();
  return id;
}

util::StatusOr<double> PsResource::Remove(JobId id) {
  Advance();
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return util::Status::NotFound(name_ + ": job " + std::to_string(id));
  }
  double remaining = std::max(0.0, it->second.remaining);
  jobs_.erase(it);
  Reschedule();
  return remaining;
}

void PsResource::SetSpeedFactor(double factor) {
  FF_CHECK(factor >= 0.0) << name_ << ": negative speed factor";
  Advance();
  speed_factor_ = factor;
  Reschedule();
}

void PsResource::SetCongestionFactor(double factor) {
  FF_CHECK(factor > 0.0 && factor <= 1.0)
      << name_ << ": congestion factor must be in (0,1], got " << factor;
  Advance();
  congestion_ = factor;
  Reschedule();
}

util::StatusOr<double> PsResource::RemainingWork(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return util::Status::NotFound(name_ + ": job " + std::to_string(id));
  }
  // Account for progress since last_update_ without mutating state.
  double dt = sim_->now() - last_update_;
  double rate = CurrentRatePerJob();
  return std::max(0.0, it->second.remaining - rate * dt);
}

double PsResource::total_delivered() const {
  double dt = sim_->now() - last_update_;
  double rate = CurrentRatePerJob();
  return total_delivered_ + rate * static_cast<double>(jobs_.size()) * dt;
}

double PsResource::busy_capacity_integral() const {
  double dt = sim_->now() - last_update_;
  double rate = CurrentRatePerJob();
  return busy_integral_ + rate * static_cast<double>(jobs_.size()) * dt;
}

}  // namespace cluster
}  // namespace ff
