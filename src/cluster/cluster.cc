#include "cluster/cluster.h"

namespace ff {
namespace cluster {

Cluster::Cluster(sim::Simulator* sim, int server_cpus, double server_speed,
                 double server_ram_bytes)
    : sim_(sim),
      server_(std::make_unique<Machine>(sim, "server", server_cpus,
                                        server_speed, server_ram_bytes)) {}

util::Status Cluster::AddNode(const NodeSpec& spec) {
  if (spec.name == "server") {
    return util::Status::InvalidArgument("'server' is a reserved node name");
  }
  if (nodes_.count(spec.name)) {
    return util::Status::AlreadyExists("node " + spec.name);
  }
  NodeEntry entry;
  entry.machine = std::make_unique<Machine>(sim_, spec.name, spec.num_cpus,
                                            spec.speed, spec.ram_bytes);
  entry.uplink = std::make_unique<Link>(sim_, spec.name + "->server",
                                        spec.uplink_bps);
  nodes_.emplace(spec.name, std::move(entry));
  order_.push_back(spec.name);
  return util::Status::OK();
}

util::StatusOr<Machine*> Cluster::node(const std::string& name) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return util::Status::NotFound("node " + name);
  return it->second.machine.get();
}

util::StatusOr<Link*> Cluster::uplink(const std::string& name) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return util::Status::NotFound("node " + name);
  return it->second.uplink.get();
}

std::vector<std::string> Cluster::NodeNames() const { return order_; }

util::Status Cluster::SetNodeUp(const std::string& name, bool up) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return util::Status::NotFound("node " + name);
  it->second.machine->SetUp(up);
  it->second.uplink->SetUp(up);
  return util::Status::OK();
}

}  // namespace cluster
}  // namespace ff
