// Machine: a compute node with N CPUs, a relative speed factor and finite
// RAM, running serial tasks under egalitarian processor sharing (the
// paper's stated execution model for forecast nodes). When the combined
// working set of active tasks exceeds RAM, all tasks slow proportionally
// (memory thrashing) — the paper's §4.2 observation that simulation and
// product generation "both consume considerable amounts of memory and CPU
// cycles, so running them concurrently may increase the running times of
// both". Supports failure injection (down/up) and task migration
// (remove-with-remaining-work).

#ifndef FF_CLUSTER_MACHINE_H_
#define FF_CLUSTER_MACHINE_H_

#include <functional>
#include <limits>
#include <map>
#include <string>

#include "cluster/ps_resource.h"

namespace ff {
namespace cluster {

/// Identifier of a CPU task on a Machine.
using TaskId = JobId;

/// A dual-CPU-style forecast node.
class Machine {
 public:
  /// `speed` is the node's relative CPU speed (1.0 = reference node); the
  /// paper's ForeMan "will scale the expected running time of the forecast
  /// by the relative node speed". `ram_bytes` bounds the combined working
  /// set before thrashing sets in (default: effectively unlimited).
  Machine(sim::Simulator* sim, std::string name, int num_cpus,
          double speed = 1.0,
          double ram_bytes = std::numeric_limits<double>::infinity());

  /// Starts a serial task needing `cpu_seconds` of reference-speed CPU
  /// time and holding `mem_bytes` of resident memory while it runs.
  /// `on_done` fires at completion. When a trace recorder is active the
  /// task gets a kTask span on this machine's track, named `label` and
  /// parented under `parent` (e.g. the owning run's span).
  TaskId StartTask(double cpu_seconds, std::function<void()> on_done,
                   double mem_bytes = 0.0, std::string_view label = {},
                   obs::SpanId parent = 0);

  /// Span of an active task (0 when untraced).
  obs::SpanId TaskSpan(TaskId id) const { return res_.span_of(id); }

  /// Kills or migrates a task; returns remaining reference-speed
  /// CPU-seconds.
  util::StatusOr<double> RemoveTask(TaskId id);

  util::StatusOr<double> RemainingWork(TaskId id) const {
    return res_.RemainingWork(id);
  }

  /// Failure injection. A down machine makes no progress but keeps task
  /// state (callers usually migrate tasks off instead).
  void SetUp(bool up);
  bool up() const { return up_; }

  const std::string& name() const { return res_.name(); }
  int num_cpus() const { return num_cpus_; }
  double speed() const { return speed_; }
  double ram_bytes() const { return ram_bytes_; }
  size_t active_tasks() const { return res_.active_jobs(); }
  double resident_bytes() const { return resident_bytes_; }

  /// Current thrash multiplier in (0,1]; 1 when the working set fits RAM.
  double thrash_factor() const { return res_.congestion_factor(); }

  /// Per-task CPU fraction delivered right now, in reference-speed units.
  double CurrentRatePerTask() const { return res_.CurrentRatePerJob(); }

  /// Total reference-speed CPU-seconds delivered.
  double total_cpu_seconds() const { return res_.total_delivered(); }

  /// Average utilization since the machine was created (pass the creation
  /// time as t0). Mathematically bounded by 1; the value is returned
  /// unclamped and checked against `kUtilizationSlack` so capacity-
  /// accounting drift surfaces as a failed invariant instead of being
  /// silently truncated.
  double AverageUtilization(sim::Time t0) const;

  /// Tolerance on the utilization <= 1 invariant (floating-point
  /// accumulation over long simulations).
  static constexpr double kUtilizationSlack = 1e-6;

 private:
  void UpdateCongestion();

  sim::Simulator* sim_;
  PsResource res_;
  int num_cpus_;
  double speed_;
  double ram_bytes_;
  double resident_bytes_ = 0.0;
  std::map<TaskId, double> task_mem_;
  bool up_ = true;
};

}  // namespace cluster
}  // namespace ff

#endif  // FF_CLUSTER_MACHINE_H_
