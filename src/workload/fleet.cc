#include "workload/fleet.h"

#include <algorithm>

#include "util/strings.h"

namespace ff {
namespace workload {

namespace {

// Output files of a 2-day ELCIRC-style run: per-day salinity, temperature
// and (heavier, vector-valued) horizontal-velocity files.
std::vector<OutputFileSpec> MakeElcircOutputFiles(double scale) {
  return {
      {"1_salt.63", 0.0, 0.5, 250e6 * scale},
      {"2_salt.63", 0.5, 1.0, 250e6 * scale},
      {"1_temp.63", 0.0, 0.5, 200e6 * scale},
      {"2_temp.63", 0.5, 1.0, 200e6 * scale},
      {"1_hvel.64", 0.0, 0.5, 400e6 * scale},
      {"2_hvel.64", 0.5, 1.0, 400e6 * scale},
  };
}

}  // namespace

std::vector<ProductSpec> MakeStandardProducts(double scale) {
  // Input-file indices refer to MakeElcircOutputFiles order:
  // 0/1 salt, 2/3 temp, 4/5 hvel.
  std::vector<ProductSpec> products = {
      {"isosal_far_surface", ProductClass::kIsolines, 6.0, 1.0e6, {0, 1}},
      {"isosal_near_surface", ProductClass::kIsolines, 6.0, 1.0e6, {0, 1}},
      {"process", ProductClass::kPlots, 5.0, 0.8e6, {0, 1, 2, 3, 4, 5}},
      {"transect_estuary", ProductClass::kTransects, 4.0, 0.6e6,
       {0, 1, 2, 3}},
      {"xsect_channel", ProductClass::kCrossSections, 3.0, 0.4e6, {0, 1}},
      {"anim_plume", ProductClass::kAnimations, 5.0, 1.0e6, {4, 5}},
  };
  for (auto& p : products) {
    p.cpu_per_increment *= scale;
    p.bytes_per_increment *= scale;
  }
  return products;
}

ForecastSpec MakeElcircEstuaryForecast() {
  ForecastSpec spec;
  spec.name = "forecast-estuary";
  spec.region = "estuary";
  spec.forecast_days = 2;
  spec.timesteps = 5760;     // 2 days at 30-second steps
  spec.mesh_sides = 6500;    // small estuary mesh => ~10,400 CPU-s
  spec.code_version = "elcirc-5.01";
  spec.increments = 96;      // half-hourly output over 2 days
  spec.output_files = MakeElcircOutputFiles(1.0);
  spec.products = MakeStandardProducts(1.0);
  return spec;
}

ForecastSpec MakeTillamookForecast() {
  ForecastSpec spec;
  spec.name = "forecast-tillamook";
  spec.region = "tillamook";
  spec.forecast_days = 2;
  spec.timesteps = 5760;
  spec.mesh_sides = 25000;   // ~40,000 CPU-s at the calibrated alpha
  spec.code_version = "elcirc-5.01";
  spec.increments = 96;
  spec.output_files = MakeElcircOutputFiles(1.5);
  spec.products = MakeStandardProducts(0.5);
  return spec;
}

ForecastSpec MakeDevForecast() {
  ForecastSpec spec;
  spec.name = "forecasts-dev";
  spec.region = "columbia";
  spec.forecast_days = 2;
  spec.timesteps = 8640;     // 2 days at 20-second steps
  spec.mesh_sides = 29000;
  spec.code_version = "dev-1.0";
  spec.increments = 96;
  spec.output_files = MakeElcircOutputFiles(1.5);
  spec.products = MakeStandardProducts(0.5);
  return spec;
}

std::vector<ForecastSpec> MakeCorieFleet(int n, util::Rng* rng) {
  static const char* kRegions[] = {
      "columbia",  "tillamook", "yaquina",  "nehalem",  "coos",
      "umpqua",    "siuslaw",   "alsea",    "nestucca", "salmon",
      "willapa",   "grays",     "chehalis", "klamath",  "eel",
      "russian",   "sanfran",   "monterey", "morro",    "santaclara",
  };
  constexpr int kNumRegions = sizeof(kRegions) / sizeof(kRegions[0]);
  std::vector<ForecastSpec> fleet;
  fleet.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ForecastSpec spec;
    std::string region = kRegions[i % kNumRegions];
    if (i >= kNumRegions) {
      region += util::StrFormat("-%d", i / kNumRegions + 1);
    }
    spec.name = "forecast-" + region;
    spec.region = region;
    spec.forecast_days = 2;
    // 30- or 60-second timesteps.
    spec.timesteps = rng->Bernoulli(0.5) ? 5760 : 2880;
    spec.mesh_sides = rng->UniformInt(5, 30) * 1000;
    spec.code_version = rng->Bernoulli(0.8) ? "elcirc-5.01" : "elcirc-5.02";
    spec.code_factor = spec.code_version == "elcirc-5.02" ? 0.95 : 1.0;
    spec.increments = 96;
    spec.priority = static_cast<int>(rng->UniformInt(1, 3));
    spec.earliest_start = 3600.0 * static_cast<double>(rng->UniformInt(0, 2));
    double scale = rng->Uniform(0.8, 1.6);
    spec.output_files = MakeElcircOutputFiles(scale);
    spec.products = MakeStandardProducts(rng->Uniform(0.4, 1.0));
    // Deadline: a serial run must be able to make it with ~50% slack —
    // forecasts "have the most value when they complete well before the
    // time period they are forecasting", but an impossible deadline is a
    // specification bug, not a workload.
    double serial_time =
        40000.0 / (5760.0 * 25.0) * static_cast<double>(spec.timesteps) *
        (static_cast<double>(spec.mesh_sides) / 1000.0);
    double earliest_ok = spec.earliest_start + 1.5 * serial_time;
    double preferred = 3600.0 * static_cast<double>(rng->UniformInt(8, 16));
    spec.deadline = std::min(86400.0, std::max(preferred, earliest_ok));
    fleet.push_back(std::move(spec));
  }
  return fleet;
}

}  // namespace workload
}  // namespace ff
