#include "workload/forecast_spec.h"

namespace ff {
namespace workload {

const char* ProductClassName(ProductClass c) {
  switch (c) {
    case ProductClass::kIsolines:
      return "isolines";
    case ProductClass::kTransects:
      return "transects";
    case ProductClass::kCrossSections:
      return "cross_sections";
    case ProductClass::kAnimations:
      return "animations";
    case ProductClass::kPlots:
      return "plots";
  }
  return "?";
}

double ForecastSpec::TotalModelBytes() const {
  double total = 0.0;
  for (const auto& f : output_files) total += f.total_bytes;
  return total;
}

double ForecastSpec::TotalProductBytes() const {
  double total = 0.0;
  for (const auto& p : products) {
    total += p.bytes_per_increment * static_cast<double>(increments);
  }
  return total;
}

double ForecastSpec::TotalProductCpuSeconds() const {
  double total = 0.0;
  for (const auto& p : products) {
    total += p.cpu_per_increment * static_cast<double>(increments);
  }
  return total;
}

}  // namespace workload
}  // namespace ff
