#include "workload/cost_model.h"

namespace ff {
namespace workload {

double CostModel::SimulationCpuSeconds(const ForecastSpec& spec) const {
  return alpha * static_cast<double>(spec.timesteps) *
         (static_cast<double>(spec.mesh_sides) / 1000.0) * spec.code_factor;
}

double CostModel::TotalCpuSeconds(const ForecastSpec& spec) const {
  return SimulationCpuSeconds(spec) + spec.TotalProductCpuSeconds();
}

}  // namespace workload
}  // namespace ff
