// Forecast specifications: the static description of one daily forecast
// run — region, simulated period, timestep count, mesh, code version,
// priority, output files and derived data products (§2 of the paper).

#ifndef FF_WORKLOAD_FORECAST_SPEC_H_
#define FF_WORKLOAD_FORECAST_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ff {
namespace workload {

/// Classification of data products, following the paper's Figure 2.
enum class ProductClass {
  kIsolines,       // e.g. isosal_far_surface, isosal_near_surface
  kTransects,      // estuary / plume transects
  kCrossSections,
  kAnimations,
  kPlots,          // e.g. the "process" directory
};

const char* ProductClassName(ProductClass c);

/// One derived data product (a directory of files generated incrementally
/// from model outputs, tens to hundreds of instances per forecast).
struct ProductSpec {
  std::string name;           // e.g. "isosal_far_surface"
  ProductClass product_class = ProductClass::kPlots;
  /// CPU-seconds (reference node) to process one model-output increment.
  double cpu_per_increment = 15.0;
  /// Bytes this product emits per model-output increment.
  double bytes_per_increment = 2.0e6;
  /// Indices into ForecastSpec::output_files consumed by this product
  /// (many products read several model outputs simultaneously).
  std::vector<int> input_files;
};

/// One model output file (e.g. "1_salt.63": day-1 salinity), appended to
/// incrementally as the simulation progresses.
struct OutputFileSpec {
  std::string name;
  /// Fraction of simulation progress at which this file starts growing
  /// (day-2 files only grow during the second half of a 2-day forecast).
  double start_progress = 0.0;
  /// ... and stops growing.
  double end_progress = 1.0;
  /// Total bytes when complete.
  double total_bytes = 200.0e6;
};

/// The full static description of a forecast.
struct ForecastSpec {
  std::string name;          // e.g. "forecast-tillamook"
  std::string region;        // e.g. "tillamook"
  int forecast_days = 2;     // simulated period (paper: "typically two days")
  int64_t timesteps = 5760;  // number of model timesteps for the period
  int64_t mesh_sides = 25000;  // number of sides in the mesh
  std::string code_version = "elcirc-5.01";
  /// Relative cost multiplier of the code version (1.0 = baseline);
  /// version changes in Fig. 9 move this by ±10-60%.
  double code_factor = 1.0;
  /// Number of model-output increments written over the run (the paper's
  /// products are "incrementally computed as additional model data is
  /// appended"; half-hourly output over 2 days = 96).
  int increments = 96;
  /// Priority: lower value = more important. ForeMan "allows users to
  /// prioritize forecasts, and may automatically delay or drop lower
  /// priority forecasts if needed".
  int priority = 1;
  /// Seconds after midnight when inputs (atmospheric forcings, river
  /// flows) arrive and the run may start.
  double earliest_start = 3600.0;  // 01:00
  /// Seconds after midnight by which products should be complete (e.g.
  /// 06:00 for a fishing-boat captain's morning).
  double deadline = 86400.0;

  std::vector<OutputFileSpec> output_files;
  std::vector<ProductSpec> products;

  /// Total bytes of all model outputs.
  double TotalModelBytes() const;
  /// Total bytes of all products over a full run.
  double TotalProductBytes() const;
  /// Total product CPU-seconds over a full run (reference node).
  double TotalProductCpuSeconds() const;
};

}  // namespace workload
}  // namespace ff

#endif  // FF_WORKLOAD_FORECAST_SPEC_H_
