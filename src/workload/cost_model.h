// The simulation cost model: walltime drivers the paper documents in
// §4.3.2 — "forecast running times appear linearly proportional to the
// number of timesteps" and "a near-linear relationship of run time with
// the number of sides in a mesh" — plus per-version code factors and
// node-speed scaling.

#ifndef FF_WORKLOAD_COST_MODEL_H_
#define FF_WORKLOAD_COST_MODEL_H_

#include "workload/forecast_spec.h"

namespace ff {
namespace workload {

/// Coefficients of the cost law
///   cpu_seconds = alpha * timesteps * (mesh_sides / 1000) * code_factor.
/// alpha is calibrated so the Tillamook forecast (5760 timesteps, 25k
/// sides) needs ~40,000 CPU-seconds, matching Fig. 8's pre-change level.
struct CostModel {
  double alpha = 40000.0 / (5760.0 * 25.0);

  /// Reference-node CPU-seconds for the simulation part of a run.
  double SimulationCpuSeconds(const ForecastSpec& spec) const;

  /// Reference-node CPU-seconds for the whole run (simulation + products).
  double TotalCpuSeconds(const ForecastSpec& spec) const;
};

}  // namespace workload
}  // namespace ff

#endif  // FF_WORKLOAD_COST_MODEL_H_
