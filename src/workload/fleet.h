// Canned forecasts and fleet generators.
//
// MakeElcircEstuaryForecast reproduces the workload of the paper's §4.2
// experiment (the ELCIRC run whose staging behaviour is plotted in
// Figs. 6-7, with output files 1_salt.63 / 2_salt.63 and product
// directories isosal_far_surface / isosal_near_surface / process).
// MakeTillamookForecast and MakeDevForecast parameterize the campaigns of
// Figs. 8-9. MakeCorieFleet generates the production-style fleet (10 runs
// growing toward the expected 50-100).

#ifndef FF_WORKLOAD_FLEET_H_
#define FF_WORKLOAD_FLEET_H_

#include <vector>

#include "util/rng.h"
#include "workload/forecast_spec.h"

namespace ff {
namespace workload {

/// The §4.2 data-flow experiment forecast (~10,400 CPU-s of simulation,
/// ~5,000 CPU-s of products, ~20% of bytes in products).
ForecastSpec MakeElcircEstuaryForecast();

/// The Tillamook forecast of Fig. 8 (5760 timesteps, ~40,000 s walltime).
ForecastSpec MakeTillamookForecast();

/// The developmental forecast of Fig. 9 (frequent code/mesh changes).
ForecastSpec MakeDevForecast();

/// A CORIE-like fleet of `n` forecasts over coastal regions, with varied
/// timestep counts, mesh sizes and priorities. Deterministic given `rng`.
std::vector<ForecastSpec> MakeCorieFleet(int n, util::Rng* rng);

/// Standard product set for a region (one product per Figure-2 class,
/// scaled by `scale`).
std::vector<ProductSpec> MakeStandardProducts(double scale = 1.0);

}  // namespace workload
}  // namespace ff

#endif  // FF_WORKLOAD_FLEET_H_
