#include "factory/campaign.h"

#include <algorithm>
#include <cmath>

#include "core/share_model.h"
#include "logdata/loader.h"
#include "logdata/log_store.h"
#include "util/logging.h"
#include "util/time_util.h"

namespace ff {
namespace factory {

namespace {
constexpr double kDay = util::kSecondsPerDay;
}

Campaign::Campaign(CampaignConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

Campaign::~Campaign() = default;

util::Status Campaign::AddNode(const std::string& name, int num_cpus,
                               double speed) {
  if (machines_.count(name)) {
    return util::Status::AlreadyExists("node " + name);
  }
  machines_.emplace(name, std::make_unique<cluster::Machine>(
                              &sim_, name, num_cpus, speed));
  node_order_.push_back(name);
  return util::Status::OK();
}

util::Status Campaign::AddForecast(const workload::ForecastSpec& spec,
                                   const std::string& node, int added_day) {
  if (forecasts_.count(spec.name)) {
    return util::Status::AlreadyExists("forecast " + spec.name);
  }
  if (!machines_.count(node)) {
    return util::Status::NotFound("node " + node);
  }
  ForecastEntry entry;
  entry.spec = spec;
  entry.node = node;
  entry.added_day = added_day;
  forecasts_.emplace(spec.name, std::move(entry));
  return util::Status::OK();
}

void Campaign::AddEvent(ChangeEvent event) {
  events_.push_back(std::move(event));
}

cluster::Machine* Campaign::MachineOrDie(const std::string& name) {
  auto it = machines_.find(name);
  FF_CHECK(it != machines_.end()) << "unknown node " << name;
  return it->second.get();
}

std::string Campaign::LeastLoadedNode(const std::string& excluded) const {
  std::string best;
  double best_rel = 0.0;
  for (const auto& name : node_order_) {
    const auto& m = machines_.at(name);
    if (name == excluded || !m->up()) continue;
    auto it = pending_work_.find(name);
    double load = it == pending_work_.end() ? 0.0 : it->second;
    double rel = load / (static_cast<double>(m->num_cpus()) * m->speed());
    if (best.empty() || rel < best_rel) {
      best = name;
      best_rel = rel;
    }
  }
  return best;
}

void Campaign::ScheduleDay(int day_index) {
  double t = day_index * kDay + config_.start_hour * 3600.0;
  sim_.ScheduleAt(t, [this, day_index] { LaunchDay(day_index); });
}

void Campaign::ApplyEvents(int day_index) {
  for (const auto& ev : events_) {
    if (ev.day != day_index) continue;
    switch (ev.kind) {
      case ChangeEvent::Kind::kSetTimesteps: {
        auto it = forecasts_.find(ev.forecast);
        if (it != forecasts_.end()) it->second.spec.timesteps = ev.int_value;
        break;
      }
      case ChangeEvent::Kind::kSetMeshSides: {
        auto it = forecasts_.find(ev.forecast);
        if (it != forecasts_.end()) {
          it->second.spec.mesh_sides = ev.int_value;
        }
        break;
      }
      case ChangeEvent::Kind::kSetCodeVersion: {
        auto it = forecasts_.find(ev.forecast);
        if (it != forecasts_.end()) {
          it->second.spec.code_version = ev.str_value;
          it->second.spec.code_factor = ev.factor;
        }
        break;
      }
      case ChangeEvent::Kind::kAddForecast: {
        AddForecast(ev.new_forecast, ev.str_value, day_index).ok();
        break;
      }
      case ChangeEvent::Kind::kRemoveForecast: {
        auto it = forecasts_.find(ev.forecast);
        if (it != forecasts_.end()) it->second.removed_day = day_index;
        break;
      }
      case ChangeEvent::Kind::kReassign: {
        auto it = forecasts_.find(ev.forecast);
        if (it != forecasts_.end() && machines_.count(ev.str_value)) {
          it->second.node = ev.str_value;
        }
        break;
      }
      case ChangeEvent::Kind::kNodeDown: {
        if (machines_.count(ev.str_value)) {
          if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
            tr->Instant(sim_.now(), obs::SpanCategory::kPlan,
                        "node_down:" + ev.str_value, "campaign");
          }
          MachineOrDie(ev.str_value)->SetUp(false);
          HandleNodeDown(ev.str_value);
        }
        break;
      }
      case ChangeEvent::Kind::kNodeUp: {
        if (machines_.count(ev.str_value)) {
          if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
            tr->Instant(sim_.now(), obs::SpanCategory::kPlan,
                        "node_up:" + ev.str_value, "campaign");
          }
          MachineOrDie(ev.str_value)->SetUp(true);
        }
        break;
      }
      case ChangeEvent::Kind::kGuestLoad: {
        if (machines_.count(ev.str_value)) {
          // One-day guest work; not logged as a forecast run.
          std::string node = ev.str_value;
          pending_work_[node] += ev.factor;
          MachineOrDie(node)->StartTask(
              ev.factor, [this, node, w = ev.factor] {
                pending_work_[node] -= w;
              });
        }
        break;
      }
    }
  }
}

void Campaign::DisplaceRun(size_t run_index, const std::string& node) {
  ActiveRun& run = active_runs_[run_index];
  auto remaining = MachineOrDie(node)->RemoveTask(run.task);
  if (!remaining.ok()) return;
  pending_work_[node] -= *remaining;
  std::string target = LeastLoadedNode(node);
  if (target.empty()) {
    // Nowhere to go; record as failed.
    run.task = 0;
    run.retired = true;
    result_.records.push_back(MakeRecord(run, logdata::RunStatus::kFailed));
    if (run.span != 0) {
      if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
        tr->SpanArg(run.span, "failed", 1.0);
        tr->EndSpan(run.span, sim_.now());
      }
    }
    return;
  }
  run.node = target;
  pending_work_[target] += *remaining;
  run.task = MachineOrDie(target)->StartTask(
      *remaining, [this, run_index] { OnRunComplete(run_index); }, 0.0,
      run.forecast, run.span);
  ++result_.failure_migrations;
  if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
    m->counter("campaign.failure_migrations")->Increment();
  }
}

void Campaign::HandleNodeDown(const std::string& node) {
  using core::ReschedulePolicy;
  if (config_.failure_policy == ReschedulePolicy::kNone) return;

  // Displace the failed node's in-flight runs.
  for (size_t i = 0; i < active_runs_.size(); ++i) {
    ActiveRun& run = active_runs_[i];
    if (run.task == 0 || run.node != node) continue;
    DisplaceRun(i, node);
  }
  // Reassign the forecasts themselves so tomorrow's launches avoid the
  // dead node.
  for (auto& [name, entry] : forecasts_) {
    if (entry.node == node) {
      std::string target = LeastLoadedNode(node);
      if (!target.empty()) entry.node = target;
    }
  }
  if (config_.failure_policy == ReschedulePolicy::kFullReplan) {
    // Spread ALL forecasts over healthy nodes by estimated work (LPT).
    std::vector<std::pair<double, std::string>> items;
    for (const auto& [name, entry] : forecasts_) {
      items.emplace_back(config_.cost_model.TotalCpuSeconds(entry.spec),
                         name);
    }
    std::sort(items.rbegin(), items.rend());
    std::map<std::string, double> load;
    for (const auto& [w, name] : items) {
      std::string best;
      double best_rel = 0.0;
      for (const auto& n : node_order_) {
        const auto& m = machines_.at(n);
        if (!m->up()) continue;
        double rel = load[n] /
                     (static_cast<double>(m->num_cpus()) * m->speed());
        if (best.empty() || rel < best_rel) {
          best = n;
          best_rel = rel;
        }
      }
      if (best.empty()) break;
      forecasts_.at(name).node = best;
      load[best] += w;
    }
  }
}

void Campaign::RetireRun(size_t run_index, logdata::RunStatus status) {
  ActiveRun& run = active_runs_[run_index];
  run.task = 0;
  run.retired = true;
  result_.records.push_back(MakeRecord(run, status));
  if (run.span != 0) {
    if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
      tr->SpanArg(run.span,
                  status == logdata::RunStatus::kDropped ? "dropped"
                                                         : "failed",
                  1.0);
      tr->EndSpan(run.span, sim_.now());
    }
  }
}

void Campaign::OnFault(const fault::FaultNotice& notice) {
  if (notice.repair) return;  // the injector already restored the machine
  const fault::FaultEvent& ev = *notice.event;
  switch (ev.kind) {
    case fault::FaultKind::kNodeCrash:
      HandleNodeCrash(ev);
      break;
    case fault::FaultKind::kTaskTransient:
      HandleTaskTransient(ev);
      break;
    default:
      FF_CHECK(false) << "campaign fault plans support machine faults "
                         "only, got "
                      << fault::FaultKindName(ev.kind);
  }
}

void Campaign::HandleNodeCrash(const fault::FaultEvent& ev) {
  const std::string& node = ev.target;
  if (!config_.graceful_degradation) {
    // Plain path: exactly what a kNodeDown change event does after
    // SetUp(false) (which the injector already applied).
    HandleNodeDown(node);
    return;
  }
  cluster::Machine* machine = MachineOrDie(node);
  const double repair_eta = sim_.now() + ev.duration;
  for (size_t i = 0; i < active_runs_.size(); ++i) {
    ActiveRun& run = active_runs_[i];
    if (run.task == 0 || run.retired || run.node != node) continue;
    const ForecastEntry& entry = forecasts_.at(run.forecast);
    auto remaining = machine->RemainingWork(run.task);
    if (!remaining.ok()) continue;
    // Optimistic post-repair finish: the run alone on one CPU.
    double finish_eta = repair_eta + *remaining / machine->speed();
    double deadline = run.day_index * kDay + entry.spec.deadline +
                      config_.degrade_deadline_slack;
    if (finish_eta <= deadline) {
      // Delay rung: ride out the outage in place (the machine keeps the
      // task's progress; §2.1's "willing to wait").
      ++result_.runs_delayed;
      if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
        tr->Instant(sim_.now(), obs::SpanCategory::kPlan,
                    "degrade.delay:" + run.forecast, "campaign");
      }
      if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
        m->counter("campaign.runs_delayed")->Increment();
      }
      continue;
    }
    if (entry.spec.priority >= config_.drop_priority_threshold) {
      // Drop rung: shed the low-priority run outright.
      auto removed = machine->RemoveTask(run.task);
      if (removed.ok()) pending_work_[node] -= *removed;
      ++result_.runs_dropped;
      if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
        tr->Instant(sim_.now(), obs::SpanCategory::kPlan,
                    "degrade.drop:" + run.forecast, "campaign");
      }
      if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
        m->counter("campaign.runs_dropped")->Increment();
      }
      RetireRun(i, logdata::RunStatus::kDropped);
      continue;
    }
    // Migrate rung: the run is important and waiting blows the deadline.
    if (config_.failure_policy != core::ReschedulePolicy::kNone) {
      DisplaceRun(i, node);
    }
  }
  // Tomorrow's launches avoid the node only when the repair estimate says
  // it will still be down then (unlike HandleNodeDown, which reassigns
  // unconditionally because a change-event outage has no repair ETA).
  double next_launch =
      (std::floor((sim_.now() - config_.start_hour * 3600.0) / kDay) +
       1.0) *
          kDay +
      config_.start_hour * 3600.0;
  if (repair_eta > next_launch) {
    for (auto& [name, entry] : forecasts_) {
      if (entry.node == node) {
        std::string target = LeastLoadedNode(node);
        if (!target.empty()) entry.node = target;
      }
    }
  }
}

void Campaign::HandleTaskTransient(const fault::FaultEvent& ev) {
  cluster::Machine* machine = MachineOrDie(ev.target);
  for (size_t i = 0; i < active_runs_.size(); ++i) {
    ActiveRun& run = active_runs_[i];
    if (run.task == 0 || run.retired || run.node != ev.target) continue;
    if (!rng_.Bernoulli(ev.magnitude)) continue;
    auto remaining = machine->RemoveTask(run.task);
    if (!remaining.ok()) continue;
    run.task = 0;
    ++run.failures;
    if (!config_.task_retry.AllowsRetry(run.failures)) {
      pending_work_[run.node] -= run.work;
      RetireRun(i, logdata::RunStatus::kFailed);
      continue;
    }
    ++result_.task_retries;
    if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
      m->counter("campaign.task_retries")->Increment();
    }
    double delay = config_.task_retry.NextDelay(run.failures, &rng_);
    // Restart from the checkpoint (remaining work) after the backoff.
    sim_.ScheduleAfter(delay, [this, i, rem = *remaining] {
      ActiveRun& r = active_runs_[i];
      if (r.retired || r.task != 0) return;
      r.task = MachineOrDie(r.node)->StartTask(
          rem, [this, i] { OnRunComplete(i); }, 0.0, r.forecast, r.span);
    });
  }
}

void Campaign::RebalanceIfNeeded(int day_index) {
  if (!config_.foreman_rebalance) return;
  // ForeMan's check: predict today's completions per node under the CPU-
  // sharing model (carryover work from still-running prior days included);
  // a node whose runs would still be executing when tomorrow launches is
  // overloaded — that is exactly the condition that snowballs into the
  // Fig. 8 cascade.
  std::map<std::string, std::vector<ForecastEntry*>> node_forecasts;
  std::map<std::string, std::vector<core::ShareJob>> node_jobs;
  for (const auto& run : active_runs_) {
    if (run.task == 0) continue;
    auto remaining = machines_.at(run.node)->RemainingWork(run.task);
    if (!remaining.ok()) continue;
    node_jobs[run.node].push_back(core::ShareJob{
        run.forecast + "#wip" + std::to_string(run.day_index), run.node,
        0.0, *remaining});
  }
  for (auto& [name, entry] : forecasts_) {
    if (day_index < entry.added_day || day_index >= entry.removed_day) {
      continue;
    }
    node_forecasts[entry.node].push_back(&entry);
    node_jobs[entry.node].push_back(core::ShareJob{
        name, entry.node, 0.0,
        config_.cost_model.TotalCpuSeconds(entry.spec)});
  }
  for (auto& [node, fcs] : node_forecasts) {
    const auto& m = machines_.at(node);
    core::NodeInfo info{node, m->num_cpus(), m->speed()};
    auto pred = core::PredictCompletions({info}, node_jobs[node]);
    bool overloaded =
        pred.ok() && pred->makespan > kDay - config_.start_hour * 3600.0;
    if (!overloaded) {
      for (auto* f : fcs) f->overload_streak = 0;
      continue;
    }
    bool acted = false;
    for (auto* f : fcs) {
      f->overload_streak += 1;
    }
    // Move the lowest-priority, most recently added forecast once the
    // overload has persisted (the paper's operators reacted after a
    // couple of days of inflated walltimes).
    std::vector<ForecastEntry*> sorted = fcs;
    std::sort(sorted.begin(), sorted.end(),
              [](const ForecastEntry* a, const ForecastEntry* b) {
                if (a->spec.priority != b->spec.priority) {
                  return a->spec.priority > b->spec.priority;
                }
                return a->added_day > b->added_day;
              });
    for (auto* victim : sorted) {
      if (acted) break;
      if (victim->overload_streak < config_.rebalance_patience) continue;
      if (sorted.size() < 2) break;  // nothing else to keep here
      std::string target = LeastLoadedNode(node);
      if (target.empty() || target == node) break;
      victim->node = target;
      victim->overload_streak = 0;
      ++result_.foreman_moves;
      if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
        tr->Instant(sim_.now(), obs::SpanCategory::kPlan,
                    "foreman.move:" + victim->spec.name, "campaign");
      }
      if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
        m->counter("campaign.foreman_moves")->Increment();
      }
      acted = true;
    }
  }
}

void Campaign::LiveDbUpsert(const logdata::LogRecord& rec) {
  if (config_.live_db == nullptr) return;
  if (!config_.live_db->HasTable(logdata::kRunsTable)) {
    auto table = config_.live_db->CreateTable(logdata::kRunsTable,
                                              logdata::RunsSchema());
    if (!table.ok()) return;
    (*table)->CreateIndex("forecast").ok();
  }
  auto table = config_.live_db->table(logdata::kRunsTable);
  if (!table.ok()) return;
  logdata::UpsertRun(*table, rec).ok();
}

logdata::LogRecord Campaign::MakeRecord(const ActiveRun& run,
                                        logdata::RunStatus status) const {
  const ForecastEntry& entry = forecasts_.at(run.forecast);
  logdata::LogRecord rec;
  rec.forecast = run.forecast;
  rec.region = entry.spec.region;
  rec.day = config_.first_day + run.day_index;
  rec.node = run.node;
  rec.code_version = entry.spec.code_version;
  rec.mesh_sides = entry.spec.mesh_sides;
  rec.timesteps = entry.spec.timesteps;
  rec.start_time = run.start_time;
  if (status == logdata::RunStatus::kCompleted) {
    rec.end_time = sim_.now();
    rec.walltime = sim_.now() - run.start_time;
  }
  rec.status = status;
  return rec;
}

void Campaign::LaunchRun(ForecastEntry* entry, int day_index) {
  double work = config_.cost_model.TotalCpuSeconds(entry->spec);
  if (config_.noise_sigma > 0.0) {
    work = rng_.LogNormalMedian(work, config_.noise_sigma);
  }
  ActiveRun run;
  run.forecast = entry->spec.name;
  run.day_index = day_index;
  run.node = entry->node;
  run.start_time = sim_.now();
  run.work = work;
  if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
    run.span = tr->BeginSpan(sim_.now(), obs::SpanCategory::kRun,
                             run.forecast, "runs");
    tr->SpanArg(run.span, "day",
                static_cast<double>(config_.first_day + day_index));
    tr->SpanArg(run.span, "node", entry->node);
    tr->SpanArg(run.span, "work", work);
  }
  size_t index = active_runs_.size();
  pending_work_[entry->node] += work;
  active_runs_.push_back(run);
  active_runs_[index].task = MachineOrDie(entry->node)->StartTask(
      work, [this, index] { OnRunComplete(index); }, 0.0, run.forecast,
      run.span);
  LiveDbUpsert(MakeRecord(active_runs_[index], logdata::RunStatus::kRunning));
}

void Campaign::OnRunComplete(size_t run_index) {
  ActiveRun& run = active_runs_[run_index];
  run.task = 0;
  run.retired = true;
  pending_work_[run.node] -= run.work;
  double walltime = sim_.now() - run.start_time;
  int day = config_.first_day + run.day_index;
  result_.walltimes[run.forecast].push_back(DaySample{day, walltime});

  if (run.span != 0) {
    if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
      tr->EndSpan(run.span, sim_.now());
    }
  }
  if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
    m->counter("campaign.runs_completed")->Increment();
    m->histogram("campaign.walltime",
                 {3600.0, 7200.0, 14400.0, 28800.0, 43200.0, 86400.0,
                  172800.0})
        ->Observe(walltime);
    m->Record(sim_.now(), "campaign.walltime." + run.forecast, walltime);
  }
  SpcCheck(run.forecast, walltime);

  logdata::LogRecord rec =
      MakeRecord(run, logdata::RunStatus::kCompleted);
  LiveDbUpsert(rec);
  result_.records.push_back(std::move(rec));
}

void Campaign::SpcCheck(const std::string& forecast, double walltime) {
  if (!config_.spc_replan) return;
  SpcState& st = spc_[forecast];
  st.history.push_back(walltime);
  if (!st.fitted) {
    if (st.history.size() >=
        static_cast<size_t>(std::max(config_.spc_baseline_days, 5))) {
      auto chart = logdata::FitControlChart(st.history);
      if (chart.ok()) {
        st.chart = *chart;
        st.fitted = true;
        st.history.clear();
      }
    }
    return;
  }
  // Only the newest sample can fire; earlier signals were already seen.
  bool fire = false;
  for (const auto& s : logdata::Monitor(st.chart, st.history)) {
    if (s.index == st.history.size() - 1 && s.above) {
      fire = true;
      break;
    }
  }
  if (!fire) return;
  ++result_.spc_signals;
  if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
    m->counter("campaign.spc_signals")->Increment();
  }
  if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
    tr->Instant(sim_.now(), obs::SpanCategory::kSpc,
                "spc.signal:" + forecast, "spc");
  }
  // Re-plan: move the forecast to the least-loaded node and refit the
  // chart under the new placement (old limits no longer apply).
  auto it = forecasts_.find(forecast);
  if (it == forecasts_.end()) return;
  std::string target = LeastLoadedNode(it->second.node);
  st.fitted = false;
  st.history.clear();
  if (target.empty() || target == it->second.node) return;
  it->second.node = target;
  ++result_.spc_replans;
  if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
    m->counter("campaign.spc_replans")->Increment();
  }
  if (obs::TraceRecorder* tr = obs::ActiveTrace()) {
    tr->Instant(sim_.now(), obs::SpanCategory::kPlan,
                "spc.replan:" + forecast + "->" + target, "campaign");
  }
}

void Campaign::MetricsTick(double period, double t_end) {
  obs::MetricsRegistry* m = obs::ActiveMetrics();
  if (m == nullptr) return;
  for (const auto& name : node_order_) {
    const auto& mach = machines_.at(name);
    m->gauge("node.util." + name)->Set(mach->AverageUtilization(0.0));
    m->gauge("node.tasks." + name)
        ->Set(static_cast<double>(mach->active_tasks()));
  }
  m->SampleAll(sim_.now());
  double next = sim_.now() + period;
  if (next <= t_end) {
    sim_.ScheduleAt(next, [this, period, t_end] {
      MetricsTick(period, t_end);
    });
  }
}

void Campaign::LaunchDay(int day_index) {
  ApplyEvents(day_index);
  RebalanceIfNeeded(day_index);
  for (auto& [name, entry] : forecasts_) {
    if (day_index < entry.added_day || day_index >= entry.removed_day) {
      continue;
    }
    LaunchRun(&entry, day_index);
  }
}

util::StatusOr<CampaignResult> Campaign::Run() {
  if (ran_) {
    return util::Status::FailedPrecondition("campaign already ran");
  }
  ran_ = true;
  if (machines_.empty()) {
    return util::Status::FailedPrecondition("no nodes");
  }
  if (!config_.fault_plan.empty()) {
    injector_ =
        std::make_unique<fault::FaultInjector>(&sim_, config_.fault_plan);
    for (const auto& name : node_order_) {
      injector_->RegisterMachine(machines_.at(name).get());
    }
    injector_->AddListener(
        [this](const fault::FaultNotice& n) { OnFault(n); });
    // Priority -1: a crash at a launch instant lands before LaunchDay.
    injector_->Arm(/*priority=*/-1);
  }
  for (int d = 0; d < config_.num_days; ++d) ScheduleDay(d);
  obs::TraceRecorder* tr = obs::ActiveTrace();
  if (tr != nullptr) {
    tr->SetClock([this] { return sim_.now(); });
  }
  if (obs::ActiveMetrics() != nullptr && config_.metrics_sample_period > 0) {
    double t_end = config_.num_days * kDay;
    double first = std::min(config_.metrics_sample_period, t_end);
    sim_.ScheduleAt(first, [this, t_end] {
      MetricsTick(config_.metrics_sample_period, t_end);
    });
  }
  sim_.Run();
  if (injector_ != nullptr) {
    result_.faults_injected = injector_->faults_injected();
  }
  if (obs::MetricsRegistry* m = obs::ActiveMetrics()) {
    m->SampleAll(sim_.now());
  }
  // Drop the clock before the campaign (and its simulator) can outlive
  // this call's caller-owned recorder usage.
  if (tr != nullptr) tr->SetClock(nullptr);

  // Anything still active stalled on a dead node: record as running.
  for (const auto& run : active_runs_) {
    if (run.task == 0) continue;
    logdata::LogRecord rec;
    const ForecastEntry& entry = forecasts_.at(run.forecast);
    rec.forecast = run.forecast;
    rec.region = entry.spec.region;
    rec.day = config_.first_day + run.day_index;
    rec.node = run.node;
    rec.code_version = entry.spec.code_version;
    rec.mesh_sides = entry.spec.mesh_sides;
    rec.timesteps = entry.spec.timesteps;
    rec.start_time = run.start_time;
    rec.status = logdata::RunStatus::kRunning;
    result_.records.push_back(rec);
  }

  // Keep per-forecast samples sorted by day (completions can interleave).
  for (auto& [name, samples] : result_.walltimes) {
    std::sort(samples.begin(), samples.end(),
              [](const DaySample& a, const DaySample& b) {
                return a.day < b.day;
              });
  }
  std::sort(result_.records.begin(), result_.records.end(),
            [](const logdata::LogRecord& a, const logdata::LogRecord& b) {
              if (a.forecast != b.forecast) return a.forecast < b.forecast;
              return a.day < b.day;
            });

  if (!config_.log_dir.empty()) {
    logdata::LogStore store(config_.log_dir);
    for (const auto& rec : result_.records) {
      FF_RETURN_IF_ERROR(store.Write(rec));
    }
  }
  return std::move(result_);
}

}  // namespace factory
}  // namespace ff
