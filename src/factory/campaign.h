// Campaign: multi-day factory production. Each day at the configured
// hour every active forecast launches on its assigned node — whether or
// not yesterday's run finished (the paper: "forecasts generally start at
// the same time each day", so a late run competes with its successor for
// CPU cycles; that work-in-progress coupling is the mechanism behind the
// Fig. 8 cascading-delay hump). A schedule of change events re-enacts the
// documented history: timestep doubling, mesh changes, code-version
// changes, forecast additions, node failures. Completed runs emit log
// records (optionally to disk in the §4.3.2 directory layout) and per-day
// walltime series — the data of Figs. 8 and 9.

#ifndef FF_FACTORY_CAMPAIGN_H_
#define FF_FACTORY_CAMPAIGN_H_

#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "core/rescheduler.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/retry.h"
#include "logdata/log_record.h"
#include "logdata/spc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "statsdb/database.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/cost_model.h"
#include "workload/forecast_spec.h"

namespace ff {
namespace factory {

/// A change applied to the factory at the start of a given day.
struct ChangeEvent {
  enum class Kind {
    kSetTimesteps,    // forecast, int_value
    kSetMeshSides,    // forecast, int_value
    kSetCodeVersion,  // forecast, str_value = version, factor = code_factor
    kAddForecast,     // new_forecast + str_value = node
    kRemoveForecast,  // forecast
    kReassign,        // forecast, str_value = target node
    kNodeDown,        // str_value = node
    kNodeUp,          // str_value = node
    kGuestLoad,       // str_value = node, factor = CPU-seconds of one-day
                      // guest work (models contention spikes, Fig. 9)
  };
  int day = 0;
  Kind kind;
  std::string forecast;
  int64_t int_value = 0;
  double factor = 1.0;
  std::string str_value;
  workload::ForecastSpec new_forecast;
};

/// Campaign configuration.
struct CampaignConfig {
  int num_days = 76;
  int first_day = 1;             // day-of-year of day index 0
  double start_hour = 1.0;       // daily launch hour
  double noise_sigma = 0.015;    // lognormal walltime noise
  uint64_t seed = 42;
  std::string log_dir;           // when non-empty, write run.log files
  workload::CostModel cost_model;

  /// ForeMan-in-the-loop: at each day's start, if a node's runs were
  /// predicted to overrun the day for `rebalance_patience` consecutive
  /// days, move its lowest-priority forecast to the least-loaded node.
  bool foreman_rebalance = false;
  int rebalance_patience = 2;

  /// What happens to runs on a failed node.
  core::ReschedulePolicy failure_policy = core::ReschedulePolicy::kMinimal;

  /// Optional live statistics database (not owned). When set, each run
  /// upserts a status='running' row into its "runs" table at launch and
  /// patches it to 'completed' when it finishes — the paper's §4.3.2
  /// "insert commands into the run scripts to update the database"
  /// alternative to periodic crawling. The table is created when absent.
  statsdb::Database* live_db = nullptr;

  /// Virtual-time period of the metrics ticker (per-node utilization and
  /// task-count gauges plus a SampleAll snapshot). Only runs while a
  /// MetricsRegistry is installed; 0 disables it.
  double metrics_sample_period = 3600.0;

  /// SPC monitor -> replan loop (§1: control charts on run times). Per
  /// forecast, the first `spc_baseline_days` completed walltimes fit an
  /// X-mR chart; a subsequent out-of-control signal above the center line
  /// moves the forecast to the least-loaded node and refits the chart
  /// under the new placement.
  bool spc_replan = false;
  int spc_baseline_days = 14;

  /// Machine faults to inject (kNodeCrash with repair, kTaskTransient;
  /// link faults are not valid here — campaign runs model no transfers).
  /// Armed at simulator priority -1, so a fault at a launch instant lands
  /// before that day's launches.
  fault::FaultPlan fault_plan;

  /// Graceful degradation for crashed nodes (§2.1: a degraded plant is
  /// worth waiting for — up to a point). Off: every crash takes the plain
  /// failure_policy path (HandleNodeDown), exactly as a kNodeDown change
  /// event would. On, per displaced run the ladder is:
  ///   delay — if finishing after the estimated repair still meets the
  ///           forecast's deadline (+ slack), the run stays put and rides
  ///           out the outage;
  ///   drop  — else, if the forecast's priority is at or beyond
  ///           drop_priority_threshold (higher = less important), the run
  ///           is shed with a kDropped record;
  ///   migrate — else it moves per failure_policy.
  bool graceful_degradation = false;
  int drop_priority_threshold = std::numeric_limits<int>::max();
  double degrade_deadline_slack = 0.0;

  /// Retry/backoff for runs killed by kTaskTransient faults: the run
  /// restarts from its checkpoint (remaining work) after a backoff drawn
  /// from the campaign RNG; exhausting the budget records kFailed.
  fault::RetryPolicy task_retry;
};

/// One walltime sample.
struct DaySample {
  int day;            // day-of-year
  double walltime;    // seconds
};

/// Campaign output.
struct CampaignResult {
  /// Per-forecast per-day walltimes (completed runs only).
  std::map<std::string, std::vector<DaySample>> walltimes;
  /// Every run's log record (completed, running at campaign end, failed).
  std::vector<logdata::LogRecord> records;
  int foreman_moves = 0;
  int failure_migrations = 0;
  /// SPC monitor outcomes (only when CampaignConfig::spc_replan).
  int spc_signals = 0;
  int spc_replans = 0;
  /// Fault-plan outcomes (only when CampaignConfig::fault_plan is set).
  int runs_delayed = 0;   // rode out a crash in place (degradation ladder)
  int runs_dropped = 0;   // shed by the ladder's drop rung
  int task_retries = 0;   // transient-fault restarts
  uint64_t faults_injected = 0;
};

/// The campaign driver.
class Campaign {
 public:
  explicit Campaign(CampaignConfig config);
  ~Campaign();

  /// Adds a compute node (before Run).
  util::Status AddNode(const std::string& name, int num_cpus = 2,
                       double speed = 1.0);

  /// Registers a forecast active from day index `added_day`, assigned to
  /// `node`.
  util::Status AddForecast(const workload::ForecastSpec& spec,
                           const std::string& node, int added_day = 0);

  /// Schedules a change event.
  void AddEvent(ChangeEvent event);

  /// Runs the whole campaign and collects results. Call once.
  util::StatusOr<CampaignResult> Run();

 private:
  struct ForecastEntry {
    workload::ForecastSpec spec;
    std::string node;
    int added_day;
    int removed_day = std::numeric_limits<int>::max();
    int overload_streak = 0;  // consecutive predicted-overrun days
  };
  struct ActiveRun {
    std::string forecast;
    int day_index;
    std::string node;
    cluster::TaskId task;
    double start_time;
    double work;
    obs::SpanId span = 0;  // kRun span; open until completion
    int failures = 0;      // transient-fault kills of this run
    bool retired = false;  // completed, dropped or failed — never restart
  };
  struct SpcState {
    std::vector<double> history;  // pre-fit baseline, then monitored tail
    logdata::ControlChart chart;
    bool fitted = false;
  };

  void ScheduleDay(int day_index);
  void LaunchDay(int day_index);
  void ApplyEvents(int day_index);
  void RebalanceIfNeeded(int day_index);
  void LaunchRun(ForecastEntry* entry, int day_index);
  void LiveDbUpsert(const logdata::LogRecord& rec);
  logdata::LogRecord MakeRecord(const ActiveRun& run,
                                logdata::RunStatus status) const;
  void OnRunComplete(size_t run_index);
  void HandleNodeDown(const std::string& node);
  void DisplaceRun(size_t run_index, const std::string& node);
  void RetireRun(size_t run_index, logdata::RunStatus status);
  void OnFault(const fault::FaultNotice& notice);
  void HandleNodeCrash(const fault::FaultEvent& event);
  void HandleTaskTransient(const fault::FaultEvent& event);
  void MetricsTick(double period, double t_end);
  void SpcCheck(const std::string& forecast, double walltime);
  cluster::Machine* MachineOrDie(const std::string& name);
  std::string LeastLoadedNode(const std::string& excluded) const;

  CampaignConfig config_;
  sim::Simulator sim_;
  util::Rng rng_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::map<std::string, std::unique_ptr<cluster::Machine>> machines_;
  std::vector<std::string> node_order_;
  std::map<std::string, ForecastEntry> forecasts_;
  std::vector<ChangeEvent> events_;
  std::vector<ActiveRun> active_runs_;  // stable storage; entries retire
  std::map<std::string, double> pending_work_;  // node -> queued+running
  std::map<std::string, SpcState> spc_;
  CampaignResult result_;
  bool ran_ = false;
};

}  // namespace factory
}  // namespace ff

#endif  // FF_FACTORY_CAMPAIGN_H_
