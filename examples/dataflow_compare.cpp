// Data-flow architecture comparison (§4.2): run the same forecast under
// Architecture 1 (products generated at the compute node) and
// Architecture 2 (products generated at the server) and print an ASCII
// timeline of the fraction of data resident at the public server — the
// live view of Figures 6 and 7.

#include <cstdio>

#include "bench/bench_common.h"

using namespace ff;

namespace {

void PrintTimeline(bench::Testbed* tb, double finish) {
  static const char* kTracked[] = {"1_salt.63", "2_salt.63",
                                   "isosal_far_surface", "process"};
  const int kCols = 60;
  for (const char* name : kTracked) {
    auto pts = tb->recorder.Get(name);
    if (!pts.ok()) continue;
    std::string bar(kCols, '.');
    for (int c = 0; c < kCols; ++c) {
      double t = finish * (c + 1) / kCols;
      double v = 0.0;
      for (const auto& p : *pts) {
        if (p.time <= t) v = p.value;
        else break;
      }
      if (v >= 0.999) bar[static_cast<size_t>(c)] = '#';
      else if (v > 0.0) {
        bar[static_cast<size_t>(c)] =
            static_cast<char>('0' + static_cast<int>(v * 10.0));
      }
    }
    std::printf("  %-20s |%s|\n", name, bar.c_str());
  }
  std::printf("  %-20s  0%*s%.0f s\n", "", kCols - 1, "", finish);
}

}  // namespace

int main() {
  auto spec = workload::MakeElcircEstuaryForecast();
  std::printf("forecast: %s (%lld timesteps, %lld mesh sides, %d products, "
              "%.1f GB of outputs)\n\n",
              spec.name.c_str(), static_cast<long long>(spec.timesteps),
              static_cast<long long>(spec.mesh_sides),
              static_cast<int>(spec.products.size()),
              spec.TotalModelBytes() / 1e9);

  double finish[2];
  int i = 0;
  for (auto arch : {dataflow::Architecture::kProductsAtNode,
                    dataflow::Architecture::kProductsAtServer}) {
    bench::Testbed tb;
    auto run = bench::RunDataflow(&tb, arch, spec);
    if (!run->done()) {
      std::printf("run failed to complete!\n");
      return 1;
    }
    finish[i++] = run->finish_time();
    std::printf("%s:\n", dataflow::ArchitectureName(arch));
    std::printf("  simulation finished   %8.0f s\n",
                run->sim_finish_time());
    std::printf("  everything at server  %8.0f s\n", run->finish_time());
    std::printf("  bytes over the LAN    %8.1f MB\n",
                run->bytes_transferred() / 1e6);
    std::printf("  timeline (digits = fraction at server, # = complete):\n");
    PrintTimeline(&tb, run->finish_time());
    std::printf("\n");
  }
  std::printf("Architecture 2 end-to-end speedup: %.2fx (paper: ~1.6x, "
              "18,000 -> 11,000 s)\n",
              finish[0] / finish[1]);
  return 0;
}
