// Quickstart: plan a day of the forecast factory with ForeMan.
//
// Builds the paper's plant (6 dual-CPU nodes), a 10-forecast CORIE-style
// fleet, loads a week of synthetic history into the statistics database,
// asks ForeMan for tomorrow's plan, prints the Gantt "big picture", moves
// one run by hand (what the Figure 3 UI does with a drag), and finally
// "clicks accept" to generate per-node launch scripts.

#include <cstdio>
#include <iostream>

#include "core/foreman.h"
#include "factory/campaign.h"
#include "logdata/loader.h"
#include "workload/fleet.h"

using namespace ff;

int main() {
  // --- The plant: 6 dedicated dual-CPU forecast nodes (§2.2). ---
  std::vector<core::NodeInfo> nodes;
  for (int i = 1; i <= 6; ++i) {
    nodes.push_back(core::NodeInfo{"f" + std::to_string(i), 2, 1.0});
  }

  // --- The fleet: 10 daily forecasts over coastal regions. ---
  util::Rng rng(2006);
  auto fleet = workload::MakeCorieFleet(10, &rng);

  // --- A week of history, so estimates come from logs, not the model. ---
  factory::CampaignConfig history_cfg;
  history_cfg.num_days = 7;
  factory::Campaign history(history_cfg);
  for (const auto& n : nodes) {
    if (!history.AddNode(n.name, n.num_cpus, n.speed).ok()) return 1;
  }
  for (size_t i = 0; i < fleet.size(); ++i) {
    if (!history.AddForecast(fleet[i], nodes[i % nodes.size()].name)
             .ok()) {
      return 1;
    }
  }
  auto past = history.Run();
  if (!past.ok()) {
    std::cerr << past.status() << "\n";
    return 1;
  }
  statsdb::Database db;
  if (!logdata::LoadRuns(&db, past->records).ok()) return 1;
  std::printf("history: %zu run records loaded into statsdb\n\n",
              past->records.size());

  // --- ForeMan plans tomorrow. ---
  core::ForeMan foreman(nodes, &db);
  auto plan = foreman.PlanDay(fleet);
  if (!plan.ok()) {
    std::cerr << plan.status() << "\n";
    return 1;
  }
  std::printf("%s\n", foreman.RenderTable(*plan).c_str());
  std::printf("%s\n", foreman.RenderGantt(*plan, /*now=*/6 * 3600.0).c_str());

  // --- The user drags one run to another node; ForeMan recomputes. ---
  const std::string victim = plan->runs[0].name;
  const std::string target =
      plan->runs[0].node == "f6" ? "f5" : "f6";
  auto moved = foreman.MoveRun(*plan, victim, target);
  if (!moved.ok()) {
    std::cerr << moved.status() << "\n";
    return 1;
  }
  std::printf("after moving %s to %s: makespan %.0f s, misses %d\n\n",
              victim.c_str(), target.c_str(), moved->makespan,
              moved->deadline_misses);

  // --- Accept: the back end generates launch scripts per node. ---
  auto scripts = foreman.Accept(*moved);
  for (const auto& [node, script] : scripts) {
    std::printf("----- script for %s -----\n%s\n", node.c_str(),
                script.c_str());
    break;  // one node is enough for the demo
  }
  std::printf("(%zu node scripts generated)\n", scripts.size());
  return 0;
}
