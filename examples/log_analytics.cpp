// Log analytics (§4.3): run a 60-day campaign that writes real run.log
// directories (the paper's flat per-forecast layout), crawl them, load
// the relational statistics database, and ask it the paper's questions —
// including SQL typed at a prompt-style loop and the change-point /
// spike report that explains Figs. 8-9.
//
// Usage: log_analytics [log_dir]   (default: ./forecast_logs)

#include <cstdio>
#include <iostream>

#include "factory/campaign.h"
#include "logdata/loader.h"
#include "logdata/log_store.h"
#include "logdata/spc.h"
#include "logdata/timeseries.h"
#include "workload/fleet.h"

using namespace ff;

int main(int argc, char** argv) {
  std::string log_dir = argc > 1 ? argv[1] : "./forecast_logs";

  // --- A 60-day campaign with a mid-campaign code change & a failure. ---
  factory::CampaignConfig cfg;
  cfg.num_days = 60;
  cfg.log_dir = log_dir;
  cfg.noise_sigma = 0.02;
  factory::Campaign campaign(cfg);
  for (int i = 1; i <= 4; ++i) {
    if (!campaign.AddNode("f" + std::to_string(i)).ok()) return 1;
  }
  auto till = workload::MakeTillamookForecast();
  till.mesh_sides = 23400;
  if (!campaign.AddForecast(till, "f1").ok()) return 1;
  util::Rng rng(60);
  auto fleet = workload::MakeCorieFleet(5, &rng);
  for (auto& f : fleet) f.name += "-p";
  for (size_t i = 0; i < fleet.size(); ++i) {
    if (!campaign
             .AddForecast(fleet[i], "f" + std::to_string(i % 4 + 1))
             .ok()) {
      return 1;
    }
  }
  factory::ChangeEvent code;
  code.day = 30;
  code.kind = factory::ChangeEvent::Kind::kSetCodeVersion;
  code.forecast = till.name;
  code.str_value = "elcirc-5.10";
  code.factor = 0.85;  // 15% faster code drop
  campaign.AddEvent(code);
  auto result = campaign.Run();
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::printf("campaign wrote %zu run.log files under %s\n",
              result->records.size(), log_dir.c_str());

  // --- Crawl the directories, exactly like the paper's Perl scripts. ---
  logdata::Crawler crawler(log_dir);
  auto records = crawler.CrawlAll();
  if (!records.ok()) {
    std::cerr << records.status() << "\n";
    return 1;
  }
  std::printf("crawler: %zu files seen, %zu skipped\n\n",
              crawler.files_seen(), crawler.files_skipped());

  statsdb::Database db;
  if (!logdata::LoadRuns(&db, *records).ok()) return 1;

  // --- The paper's queries. ---
  const char* queries[] = {
      // "find all forecasts that use code version X" (§4.3.2)
      "SELECT DISTINCT forecast FROM runs WHERE code_version = "
      "'elcirc-5.10'",
      // estimation aggregate (§4.1)
      "SELECT forecast, COUNT(*) AS days, AVG(walltime) AS avg_s, "
      "MIN(walltime) AS min_s, MAX(walltime) AS max_s FROM runs "
      "WHERE status = 'completed' GROUP BY forecast ORDER BY avg_s DESC",
      // node occupancy view (the ForeMan monitoring pane's backing query)
      "SELECT node, COUNT(*) AS runs, AVG(walltime) AS avg_s FROM runs "
      "GROUP BY node ORDER BY node",
      // recent history window for one forecast
      "SELECT day, walltime FROM runs WHERE forecast = "
      "'forecast-tillamook' ORDER BY day DESC LIMIT 7",
  };
  for (const char* q : queries) {
    std::printf("sql> %s\n", q);
    auto rs = db.Sql(q);
    if (!rs.ok()) {
      std::printf("error: %s\n\n", rs.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", rs->ToPrettyString().c_str());
  }

  // --- Trend analysis: what changed, when, by how much. ---
  std::vector<double> walltimes;
  for (const auto& s : result->walltimes.at(till.name)) {
    walltimes.push_back(s.walltime);
  }
  std::printf("trend analysis for %s:\n%s", till.name.c_str(),
              logdata::AnalyzeSeries(walltimes, /*first_day=*/1,
                                     /*window=*/5, /*min_shift=*/3000.0,
                                     /*z_threshold=*/6.0)
                  .c_str());

  // --- Statistical process control (§1's MRP toolbox). ---
  auto spc = logdata::SpcReport(walltimes, /*baseline_n=*/20,
                                /*first_day=*/1);
  if (spc.ok()) {
    std::printf("\nstatistical process control for %s:\n%s",
                till.name.c_str(), spc->c_str());
  }
  return 0;
}
