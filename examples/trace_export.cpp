// Observability end to end: run a fixed-seed campaign, a §4.2 dataflow
// run, and a ForeMan planning pass with the tracing layer installed;
// export the virtual-time telemetry as a Chrome trace (load it at
// ui.perfetto.dev or chrome://tracing) plus CSVs; then ingest the same
// telemetry into statsdb and answer SQL over it — p95 task duration per
// node straight off the live spans.
//
// Usage: trace_export [output-prefix]   (default "trace_export")
// Writes <prefix>.json, <prefix>_spans.csv, <prefix>_metrics.csv.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/foreman.h"
#include "dataflow/forecast_run.h"
#include "factory/campaign.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/statsdb_bridge.h"
#include "obs/trace.h"
#include "statsdb/database.h"
#include "statsdb/sql.h"
#include "workload/fleet.h"

using namespace ff;

namespace {

int Fail(const util::Status& s) {
  std::cerr << s << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "trace_export";
  if (!obs::kTracingCompiledIn) {
    std::printf("tracing compiled out (FF_TRACING=OFF); nothing to export\n");
    return 0;
  }

  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  obs::ScopedObservability scope(&trace, &metrics);

  // --- 1. Fixed-seed campaign: run + task spans, node-failure instants,
  //        foreman-move decisions, counters and per-node gauges. ---
  util::Rng rng(2006);
  auto fleet = workload::MakeCorieFleet(6, &rng);
  {
    factory::CampaignConfig cfg;
    cfg.num_days = 7;
    cfg.seed = 2006;
    cfg.foreman_rebalance = true;
    factory::Campaign campaign(cfg);
    for (const char* n : {"f1", "f2", "f3"}) {
      if (auto s = campaign.AddNode(n); !s.ok()) return Fail(s);
    }
    for (size_t i = 0; i < fleet.size(); ++i) {
      std::string node = "f" + std::to_string(i % 3 + 1);
      if (auto s = campaign.AddForecast(fleet[i], node); !s.ok()) {
        return Fail(s);
      }
    }
    factory::ChangeEvent down;
    down.day = 3;
    down.kind = factory::ChangeEvent::Kind::kNodeDown;
    down.str_value = "f2";
    campaign.AddEvent(down);
    factory::ChangeEvent up;
    up.day = 5;
    up.kind = factory::ChangeEvent::Kind::kNodeUp;
    up.str_value = "f2";
    campaign.AddEvent(up);
    auto result = campaign.Run();
    if (!result.ok()) return Fail(result.status());
    std::printf("campaign: %zu forecasts x 7 days, %d migrations, "
                "%d foreman moves\n",
                fleet.size(), result->failure_migrations,
                result->foreman_moves);
  }

  // --- 2. §4.2 dataflow run: rsync transfer spans on the uplink. ---
  {
    sim::Simulator sim;
    cluster::Cluster plant(&sim, /*server_cpus=*/2,
                           /*server_speed=*/2.6 / 2.8,
                           /*server_ram_bytes=*/1.0e9);
    cluster::NodeSpec spec;
    spec.name = "client";
    spec.num_cpus = 2;
    spec.speed = 1.0;
    spec.ram_bytes = 1.0e9;
    spec.uplink_bps = 12.5e6;
    if (auto s = plant.AddNode(spec); !s.ok()) return Fail(s);
    trace.SetClock([&sim] { return sim.now(); });
    dataflow::RunConfig rcfg;
    rcfg.arch = dataflow::Architecture::kProductsAtServer;
    rcfg.record_series = false;
    dataflow::ForecastRun run(&sim, *plant.node("client"),
                              *plant.uplink("client"), plant.server(),
                              /*recorder=*/nullptr, fleet[0], rcfg);
    run.Start();
    sim.Run();
    trace.SetClock(nullptr);
    std::printf("dataflow: %s under Architecture 2 (%zu transfer spans)\n",
                fleet[0].name.c_str(),
                trace.CountSpans(obs::SpanCategory::kTransfer));
  }

  // --- 3. Planning pass: the foreman's decision as a plan span. ---
  {
    std::vector<core::NodeInfo> nodes;
    for (int i = 1; i <= 3; ++i) {
      nodes.push_back(core::NodeInfo{"f" + std::to_string(i), 2, 1.0});
    }
    core::ForeMan foreman(nodes, nullptr);
    auto plan = foreman.PlanDay(fleet);
    if (!plan.ok()) return Fail(plan.status());
    std::printf("planner: %zu runs placed, makespan %.0fs\n",
                plan->runs.size(), plan->makespan);
  }

  // --- Exports. ---
  std::printf("\nspan counts: run=%zu task=%zu transfer=%zu plan=%zu "
              "spc=%zu (open=%zu)\n",
              trace.CountSpans(obs::SpanCategory::kRun),
              trace.CountSpans(obs::SpanCategory::kTask),
              trace.CountSpans(obs::SpanCategory::kTransfer),
              trace.CountSpans(obs::SpanCategory::kPlan),
              trace.CountSpans(obs::SpanCategory::kSpc), trace.OpenSpans());

  if (auto s = obs::WriteChromeTraceFile(prefix + ".json", trace, &metrics);
      !s.ok()) {
    return Fail(s);
  }
  {
    std::ofstream spans(prefix + "_spans.csv");
    obs::WriteSpansCsv(trace, &spans);
    std::ofstream samples(prefix + "_metrics.csv");
    obs::WriteMetricSamplesCsv(metrics, &samples);
  }
  std::printf("wrote %s.json (open in ui.perfetto.dev), %s_spans.csv, "
              "%s_metrics.csv\n",
              prefix.c_str(), prefix.c_str(), prefix.c_str());

  // --- statsdb bridge: SQL over the live telemetry. ---
  statsdb::Database db;
  if (auto t = obs::LoadSpans(trace, &db); !t.ok()) return Fail(t.status());
  if (auto t = obs::LoadInstants(trace, &db); !t.ok()) {
    return Fail(t.status());
  }
  if (auto t = obs::LoadMetricSamples(metrics, &db); !t.ok()) {
    return Fail(t.status());
  }

  const char* kQueries[] = {
      "SELECT category, COUNT(*) AS n, SUM(duration_s) AS total_s "
      "FROM spans GROUP BY category ORDER BY category",
      "SELECT track, COUNT(*) AS n, P95(duration_s) AS p95_s "
      "FROM spans WHERE category = 'task' GROUP BY track ORDER BY track",
  };
  for (const char* q : kQueries) {
    std::printf("\nsql> %s\n", q);
    auto rs = statsdb::ExecuteSql(&db, q);
    if (!rs.ok()) return Fail(rs.status());
    std::printf("%s", rs->ToPrettyString().c_str());
  }
  return 0;
}
