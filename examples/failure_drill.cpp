// Failure drill (§2.1/§4.1): a node dies mid-morning with forecasts in
// flight. Compare what happens under each rescheduling policy, both at
// the planning level (ForeMan's predicted plans) and executed end to end
// in the campaign simulator. A third drill closes the paper's §1 loop on
// live telemetry: control charts on run times catch a contended node and
// trigger a re-plan, no operator in the loop.

#include <cstdio>
#include <iostream>

#include "core/foreman.h"
#include "factory/campaign.h"
#include "logdata/spc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/fleet.h"

using namespace ff;

int main() {
  std::vector<core::NodeInfo> nodes;
  for (int i = 1; i <= 4; ++i) {
    nodes.push_back(core::NodeInfo{"f" + std::to_string(i), 2, 1.0});
  }
  util::Rng rng(13);
  auto fleet = workload::MakeCorieFleet(8, &rng);

  // --- Planning view: ForeMan's what-if for each policy. ---
  core::ForeMan foreman(nodes, nullptr);
  auto plan = foreman.PlanDay(fleet);
  if (!plan.ok()) {
    std::cerr << plan.status() << "\n";
    return 1;
  }
  std::string failed = plan->runs[0].node;
  std::printf("plan: %zu runs on 4 nodes; node %s fails at 03:00\n\n",
              plan->runs.size(), failed.c_str());
  std::printf("%-12s %8s %8s %10s %8s\n", "policy", "moved", "waiting",
              "makespan", "misses");
  for (auto policy :
       {core::ReschedulePolicy::kNone, core::ReschedulePolicy::kMinimal,
        core::ReschedulePolicy::kCascading,
        core::ReschedulePolicy::kFullReplan}) {
    auto result =
        foreman.HandleNodeFailure(*plan, failed, 3 * 3600.0, policy);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::printf("%-12s %8d %8d %10.0f %8d\n",
                core::ReschedulePolicyName(policy), result->runs_moved,
                result->runs_waiting, result->plan.makespan,
                result->plan.deadline_misses);
  }

  // --- Executed view: the campaign's day with the failure injected. ---
  std::printf("\nexecuted outcome over 5 days (failure day 2, recovery "
              "day 4):\n");
  std::printf("%-12s %10s %10s %14s\n", "policy", "completed", "stalled",
              "worst_walltime");
  for (auto policy :
       {core::ReschedulePolicy::kNone, core::ReschedulePolicy::kMinimal,
        core::ReschedulePolicy::kFullReplan}) {
    factory::CampaignConfig cfg;
    cfg.num_days = 5;
    cfg.failure_policy = policy;
    factory::Campaign campaign(cfg);
    for (const auto& n : nodes) {
      if (!campaign.AddNode(n.name, n.num_cpus, n.speed).ok()) return 1;
    }
    for (size_t i = 0; i < fleet.size(); ++i) {
      if (!campaign.AddForecast(fleet[i], nodes[i % 4].name).ok()) {
        return 1;
      }
    }
    factory::ChangeEvent down;
    down.day = 2;
    down.kind = factory::ChangeEvent::Kind::kNodeDown;
    down.str_value = "f1";
    campaign.AddEvent(down);
    factory::ChangeEvent up;
    up.day = 4;
    up.kind = factory::ChangeEvent::Kind::kNodeUp;
    up.str_value = "f1";
    campaign.AddEvent(up);
    auto result = campaign.Run();
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    int completed = 0, stalled = 0;
    double worst = 0.0;
    for (const auto& rec : result->records) {
      if (rec.status == logdata::RunStatus::kCompleted) {
        ++completed;
        worst = std::max(worst, rec.walltime);
      } else if (rec.status == logdata::RunStatus::kRunning) {
        ++stalled;
      }
    }
    std::printf("%-12s %10d %10d %13.0fs\n",
                core::ReschedulePolicyName(policy), completed, stalled,
                worst);
  }

  // --- SPC drill: the monitor->replan loop over live telemetry. A guest
  //     process lands on f1 from day 10 on; the X-mR chart fitted on the
  //     first 7 days flags the walltime shift and the factory moves the
  //     signalling forecast to the least-loaded node. ---
  std::printf("\nspc drill: guest load on f1 from day 10 (28 days, "
              "baseline 7)\n");
  for (bool replan : {false, true}) {
    obs::MetricsRegistry metrics;
    obs::ScopedObservability scope(nullptr, &metrics);
    factory::CampaignConfig cfg;
    cfg.num_days = 28;
    cfg.spc_replan = replan;
    cfg.spc_baseline_days = 7;
    factory::Campaign campaign(cfg);
    for (const auto& n : nodes) {
      if (!campaign.AddNode(n.name, n.num_cpus, n.speed).ok()) return 1;
    }
    for (size_t i = 0; i < fleet.size(); ++i) {
      if (!campaign.AddForecast(fleet[i], nodes[i % 4].name).ok()) {
        return 1;
      }
    }
    for (int day = 10; day < 28; ++day) {
      factory::ChangeEvent guest;
      guest.day = day;
      guest.kind = factory::ChangeEvent::Kind::kGuestLoad;
      guest.str_value = "f1";
      guest.factor = 2.5e5;  // CPU-seconds of squatting guest work
      campaign.AddEvent(guest);
    }
    auto result = campaign.Run();
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    // Mean walltime over the contended tail, averaged across forecasts.
    double tail_sum = 0.0;
    int tail_n = 0;
    for (const auto& [forecast, days] : result->walltimes) {
      for (const auto& s : days) {
        if (s.day >= cfg.first_day + 10) {
          tail_sum += s.walltime;
          ++tail_n;
        }
      }
    }
    std::printf("  %-14s signals=%d replans=%d mean_tail_walltime=%.0fs\n",
                replan ? "spc_replan=on" : "monitor-only", result->spc_signals,
                result->spc_replans,
                tail_n > 0 ? tail_sum / tail_n : 0.0);
    if (replan) {
      // Post-hoc chart over the same telemetry the monitor saw, for one
      // forecast that lived on the contended node.
      const std::string series_name =
          "campaign.walltime." + fleet[0].name;
      auto report = logdata::SpcReport(metrics.SeriesValues(series_name), 7,
                                       cfg.first_day);
      if (report.ok()) {
        std::printf("\n%s chart (fit on days 1-7):\n%s", fleet[0].name.c_str(),
                    report->c_str());
      }
    }
  }
  return 0;
}
