// Failure drill (§2.1/§4.1): a node dies mid-morning with forecasts in
// flight. Compare what happens under each rescheduling policy, both at
// the planning level (ForeMan's predicted plans) and executed end to end
// in the campaign simulator.

#include <cstdio>
#include <iostream>

#include "core/foreman.h"
#include "factory/campaign.h"
#include "workload/fleet.h"

using namespace ff;

int main() {
  std::vector<core::NodeInfo> nodes;
  for (int i = 1; i <= 4; ++i) {
    nodes.push_back(core::NodeInfo{"f" + std::to_string(i), 2, 1.0});
  }
  util::Rng rng(13);
  auto fleet = workload::MakeCorieFleet(8, &rng);

  // --- Planning view: ForeMan's what-if for each policy. ---
  core::ForeMan foreman(nodes, nullptr);
  auto plan = foreman.PlanDay(fleet);
  if (!plan.ok()) {
    std::cerr << plan.status() << "\n";
    return 1;
  }
  std::string failed = plan->runs[0].node;
  std::printf("plan: %zu runs on 4 nodes; node %s fails at 03:00\n\n",
              plan->runs.size(), failed.c_str());
  std::printf("%-12s %8s %8s %10s %8s\n", "policy", "moved", "waiting",
              "makespan", "misses");
  for (auto policy :
       {core::ReschedulePolicy::kNone, core::ReschedulePolicy::kMinimal,
        core::ReschedulePolicy::kCascading,
        core::ReschedulePolicy::kFullReplan}) {
    auto result =
        foreman.HandleNodeFailure(*plan, failed, 3 * 3600.0, policy);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::printf("%-12s %8d %8d %10.0f %8d\n",
                core::ReschedulePolicyName(policy), result->runs_moved,
                result->runs_waiting, result->plan.makespan,
                result->plan.deadline_misses);
  }

  // --- Executed view: the campaign's day with the failure injected. ---
  std::printf("\nexecuted outcome over 5 days (failure day 2, recovery "
              "day 4):\n");
  std::printf("%-12s %10s %10s %14s\n", "policy", "completed", "stalled",
              "worst_walltime");
  for (auto policy :
       {core::ReschedulePolicy::kNone, core::ReschedulePolicy::kMinimal,
        core::ReschedulePolicy::kFullReplan}) {
    factory::CampaignConfig cfg;
    cfg.num_days = 5;
    cfg.failure_policy = policy;
    factory::Campaign campaign(cfg);
    for (const auto& n : nodes) {
      if (!campaign.AddNode(n.name, n.num_cpus, n.speed).ok()) return 1;
    }
    for (size_t i = 0; i < fleet.size(); ++i) {
      if (!campaign.AddForecast(fleet[i], nodes[i % 4].name).ok()) {
        return 1;
      }
    }
    factory::ChangeEvent down;
    down.day = 2;
    down.kind = factory::ChangeEvent::Kind::kNodeDown;
    down.str_value = "f1";
    campaign.AddEvent(down);
    factory::ChangeEvent up;
    up.day = 4;
    up.kind = factory::ChangeEvent::Kind::kNodeUp;
    up.str_value = "f1";
    campaign.AddEvent(up);
    auto result = campaign.Run();
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    int completed = 0, stalled = 0;
    double worst = 0.0;
    for (const auto& rec : result->records) {
      if (rec.status == logdata::RunStatus::kCompleted) {
        ++completed;
        worst = std::max(worst, rec.walltime);
      } else if (rec.status == logdata::RunStatus::kRunning) {
        ++stalled;
      }
    }
    std::printf("%-12s %10d %10d %13.0fs\n",
                core::ReschedulePolicyName(policy), completed, stalled,
                worst);
  }
  return 0;
}
