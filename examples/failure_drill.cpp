// Failure drill (§2.1/§4.1): a node dies mid-morning with forecasts in
// flight. Compare what happens under each rescheduling policy, both at
// the planning level (ForeMan's predicted plans) and executed end to end
// in the campaign simulator. A third drill closes the paper's §1 loop on
// live telemetry: control charts on run times catch a contended node and
// trigger a re-plan, no operator in the loop.

#include <cstdio>
#include <iostream>

#include "core/foreman.h"
#include "factory/campaign.h"
#include "fault/fault_plan.h"
#include "logdata/spc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/sweep.h"
#include "workload/fleet.h"

using namespace ff;

int main() {
  std::vector<core::NodeInfo> nodes;
  for (int i = 1; i <= 4; ++i) {
    nodes.push_back(core::NodeInfo{"f" + std::to_string(i), 2, 1.0});
  }
  util::Rng rng(13);
  auto fleet = workload::MakeCorieFleet(8, &rng);

  // --- Planning view: ForeMan's what-if for each policy. ---
  core::ForeMan foreman(nodes, nullptr);
  auto plan = foreman.PlanDay(fleet);
  if (!plan.ok()) {
    std::cerr << plan.status() << "\n";
    return 1;
  }
  std::string failed = plan->runs[0].node;
  std::printf("plan: %zu runs on 4 nodes; node %s fails at 03:00\n\n",
              plan->runs.size(), failed.c_str());
  std::printf("%-12s %8s %8s %10s %8s\n", "policy", "moved", "waiting",
              "makespan", "misses");
  for (auto policy :
       {core::ReschedulePolicy::kNone, core::ReschedulePolicy::kMinimal,
        core::ReschedulePolicy::kCascading,
        core::ReschedulePolicy::kFullReplan}) {
    auto result =
        foreman.HandleNodeFailure(*plan, failed, 3 * 3600.0, policy);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::printf("%-12s %8d %8d %10.0f %8d\n",
                core::ReschedulePolicyName(policy), result->runs_moved,
                result->runs_waiting, result->plan.makespan,
                result->plan.deadline_misses);
  }

  // --- Executed view: the campaign's day with the failure injected.
  //     One policy per sweep replica (parallel/sweep.h); outcomes print
  //     in policy order whatever the worker schedule. Recording stays
  //     off so the event stream matches a bare campaign. The failure is
  //     a scripted FaultPlan (fault/fault_plan.h): one kNodeCrash at the
  //     day-2 launch instant whose repair window ends at the day-4
  //     launch — the injector fires at priority -1, so the crash lands
  //     just before the day's launches, exactly where a kNodeDown
  //     change event would. ---
  std::printf("\nexecuted outcome over 5 days (failure day 2, recovery "
              "day 4):\n");
  std::printf("%-12s %10s %10s %14s\n", "policy", "completed", "stalled",
              "worst_walltime");
  const std::vector<core::ReschedulePolicy> kExecPolicies = {
      core::ReschedulePolicy::kNone, core::ReschedulePolicy::kMinimal,
      core::ReschedulePolicy::kFullReplan};
  struct ExecOutcome {
    bool ok = false;
    std::string error;
    int completed = 0;
    int stalled = 0;
    double worst = 0.0;
  };
  std::vector<ExecOutcome> exec(kExecPolicies.size());
  parallel::SweepOptions exec_opt;
  exec_opt.record_traces = false;
  exec_opt.record_metrics = false;
  parallel::SweepRunner exec_runner(exec_opt);
  exec_runner.Run(kExecPolicies.size(), [&](parallel::ReplicaContext& ctx) {
    ExecOutcome& out = exec[ctx.replica];
    factory::CampaignConfig cfg;
    cfg.num_days = 5;
    cfg.failure_policy = kExecPolicies[ctx.replica];
    fault::FaultEvent crash;
    crash.time = 2 * 86400.0 + cfg.start_hour * 3600.0;  // day-2 launch
    crash.kind = fault::FaultKind::kNodeCrash;
    crash.target = "f1";
    crash.duration = 2 * 86400.0;  // repaired at the day-4 launch
    cfg.fault_plan.Add(crash);
    factory::Campaign campaign(cfg);
    for (const auto& n : nodes) {
      if (!campaign.AddNode(n.name, n.num_cpus, n.speed).ok()) return;
    }
    for (size_t i = 0; i < fleet.size(); ++i) {
      if (!campaign.AddForecast(fleet[i], nodes[i % 4].name).ok()) return;
    }
    auto result = campaign.Run();
    if (!result.ok()) {
      out.error = result.status().ToString();
      return;
    }
    for (const auto& rec : result->records) {
      if (rec.status == logdata::RunStatus::kCompleted) {
        ++out.completed;
        out.worst = std::max(out.worst, rec.walltime);
      } else if (rec.status == logdata::RunStatus::kRunning) {
        ++out.stalled;
      }
    }
    out.ok = true;
  });
  for (size_t i = 0; i < kExecPolicies.size(); ++i) {
    if (!exec[i].ok) {
      std::cerr << exec[i].error << "\n";
      return 1;
    }
    std::printf("%-12s %10d %10d %13.0fs\n",
                core::ReschedulePolicyName(kExecPolicies[i]),
                exec[i].completed, exec[i].stalled, exec[i].worst);
  }

  // --- SPC drill: the monitor->replan loop over live telemetry. A guest
  //     process lands on f1 from day 10 on; the X-mR chart fitted on the
  //     first 7 days flags the walltime shift and the factory moves the
  //     signalling forecast to the least-loaded node. ---
  std::printf("\nspc drill: guest load on f1 from day 10 (28 days, "
              "baseline 7)\n");
  // Monitor-only and replan-enabled variants run as two sweep replicas.
  // The runner hands each its own metrics registry (same install the
  // hand-rolled loop did), and the replan chart reads replica 1's
  // registry from the sweep outputs after the barrier.
  struct SpcOutcome {
    bool ok = false;
    std::string error;
    int signals = 0;
    int replans = 0;
    double mean_tail = 0.0;
    int first_day = 0;
  };
  std::vector<SpcOutcome> spc(2);
  parallel::SweepOptions spc_opt;
  spc_opt.record_traces = false;
  spc_opt.record_metrics = true;
  parallel::SweepRunner spc_runner(spc_opt);
  auto spc_out = spc_runner.Run(2, [&](parallel::ReplicaContext& ctx) {
    SpcOutcome& out = spc[ctx.replica];
    bool replan = ctx.replica == 1;
    factory::CampaignConfig cfg;
    cfg.num_days = 28;
    cfg.spc_replan = replan;
    cfg.spc_baseline_days = 7;
    out.first_day = cfg.first_day;
    factory::Campaign campaign(cfg);
    for (const auto& n : nodes) {
      if (!campaign.AddNode(n.name, n.num_cpus, n.speed).ok()) return;
    }
    for (size_t i = 0; i < fleet.size(); ++i) {
      if (!campaign.AddForecast(fleet[i], nodes[i % 4].name).ok()) return;
    }
    for (int day = 10; day < 28; ++day) {
      factory::ChangeEvent guest;
      guest.day = day;
      guest.kind = factory::ChangeEvent::Kind::kGuestLoad;
      guest.str_value = "f1";
      guest.factor = 2.5e5;  // CPU-seconds of squatting guest work
      campaign.AddEvent(guest);
    }
    auto result = campaign.Run();
    if (!result.ok()) {
      out.error = result.status().ToString();
      return;
    }
    // Mean walltime over the contended tail, averaged across forecasts.
    double tail_sum = 0.0;
    int tail_n = 0;
    for (const auto& [forecast, days] : result->walltimes) {
      for (const auto& s : days) {
        if (s.day >= cfg.first_day + 10) {
          tail_sum += s.walltime;
          ++tail_n;
        }
      }
    }
    out.signals = result->spc_signals;
    out.replans = result->spc_replans;
    out.mean_tail = tail_n > 0 ? tail_sum / tail_n : 0.0;
    out.ok = true;
  });
  for (size_t i = 0; i < spc.size(); ++i) {
    if (!spc[i].ok) {
      std::cerr << spc[i].error << "\n";
      return 1;
    }
    bool replan = i == 1;
    std::printf("  %-14s signals=%d replans=%d mean_tail_walltime=%.0fs\n",
                replan ? "spc_replan=on" : "monitor-only", spc[i].signals,
                spc[i].replans, spc[i].mean_tail);
    if (replan) {
      // Post-hoc chart over the same telemetry the monitor saw, for one
      // forecast that lived on the contended node.
      const std::string series_name =
          "campaign.walltime." + fleet[0].name;
      auto report = logdata::SpcReport(
          spc_out.replica_metrics[i]->SeriesValues(series_name), 7,
          spc[i].first_day);
      if (report.ok()) {
        std::printf("\n%s chart (fit on days 1-7):\n%s", fleet[0].name.c_str(),
                    report->c_str());
      }
    }
  }
  return 0;
}
