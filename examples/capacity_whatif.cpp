// Capacity what-if (§4.1): "Seeing the big picture is also useful to
// evaluate hypothetical scenarios, e.g., anticipating hardware needs as
// the number of forecasts grows." The paper expects CORIE to grow from
// 10 forecasts on 6 nodes to 50-100 forecasts.
//
// For each fleet size, find the smallest plant (dual-CPU nodes) where
// ForeMan can place every forecast without deadline misses or drops —
// the rough-cut capacity planning table a plant manager would want.

#include <cstdio>
#include <iostream>

#include "core/foreman.h"
#include "workload/fleet.h"

using namespace ff;

namespace {

std::vector<core::NodeInfo> Plant(int n) {
  std::vector<core::NodeInfo> nodes;
  for (int i = 1; i <= n; ++i) {
    nodes.push_back(core::NodeInfo{"f" + std::to_string(i), 2, 1.0});
  }
  return nodes;
}

}  // namespace

int main() {
  std::printf("%-10s %12s %14s %12s %12s\n", "forecasts", "nodes_needed",
              "makespan_s", "max_load", "headroom");
  core::ForeMan probe(Plant(6), nullptr);
  for (int fleet_size : {10, 20, 30, 50, 75, 100}) {
    util::Rng rng(static_cast<uint64_t>(fleet_size) * 31);
    auto fleet = workload::MakeCorieFleet(fleet_size, &rng);
    int needed = -1;
    core::DayPlan best;
    for (int n = 2; n <= 64; ++n) {
      auto plan = probe.WhatIf(fleet, Plant(n));
      if (!plan.ok()) {
        std::cerr << plan.status() << "\n";
        return 1;
      }
      if (plan->deadline_misses == 0 && plan->dropped == 0) {
        needed = n;
        best = *plan;
        break;
      }
    }
    if (needed < 0) {
      std::printf("%-10d %12s\n", fleet_size, ">64");
      continue;
    }
    std::printf("%-10d %12d %14.0f %12.2f %11.0f%%\n", fleet_size, needed,
                best.makespan, best.max_relative_load,
                100.0 * (1.0 - best.max_relative_load));
  }
  std::printf(
      "\n(The paper's 6-node plant carries the current 10 forecasts; the "
      "table shows the\nhardware the projected 50-100 forecast fleet "
      "would demand.)\n");
  return 0;
}
